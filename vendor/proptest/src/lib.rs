//! Offline vendored stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no network access, so this crate reimplements
//! the slice of proptest the storm workspace actually uses:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! - [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_recursive`, `boxed`,
//! - range / tuple / [`strategy::Just`] / regex-pattern (`&str`) strategies,
//! - [`collection::vec`] and [`collection::btree_map`],
//! - [`arbitrary::any`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`], [`prop_assume!`].
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! shim: no shrinking (a failing case reports its generated inputs instead
//! of a minimised counterexample), and generation is fully deterministic per
//! test name, so failures always reproduce exactly.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `prop::` namespace alias (`prop::collection::vec(..)`), mirroring the
/// real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Defines property tests: each `fn` runs its body for `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)
     $(
         $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempt: u64 = 0;
                let __max_attempts: u64 = u64::from(__config.cases) * 16 + 256;
                while __accepted < __config.cases {
                    __attempt += 1;
                    assert!(
                        __attempt <= __max_attempts,
                        "proptest: too many rejected cases in {} \
                         ({} accepted of {} wanted)",
                        __test_name, __accepted, __config.cases,
                    );
                    let mut __rng =
                        $crate::test_runner::rng_for(__test_name, __attempt);
                    let mut __case_desc = ::std::string::String::new();
                    $(
                        let $pat = {
                            let __value = $crate::strategy::Strategy::generate(
                                &($strat), &mut __rng,
                            );
                            if !__case_desc.is_empty() {
                                __case_desc.push_str(", ");
                            }
                            __case_desc.push_str(&format!(
                                "{} = {:?}", stringify!($pat), &__value,
                            ));
                            __value
                        };
                    )*
                    let __result: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        Ok(()) => __accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case failed: {}\n  inputs: {}",
                                __msg, __case_desc,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!(
            $cond,
            concat!("assertion failed: ", stringify!($cond))
        )
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r,
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
                    __l, __r, format!($($fmt)+),
                )),
            );
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                __l,
            )));
        }
    }};
}

/// Skips the current case (without counting it) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).into(),
            ));
        }
    };
}

/// Chooses among several strategies producing the same value type,
/// optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
