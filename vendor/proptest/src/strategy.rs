//! The [`Strategy`] trait and combinators.

use std::fmt::Debug;
use std::rc::Rc;

use crate::test_runner::TestRng;
use rand::RngExt;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing the predicate (regenerating, with
    /// a retry cap).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for the next one, applied
    /// `depth` times on top of `self` (the leaf strategy).
    ///
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// signature compatibility; depth alone bounds recursion here.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat.clone()).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// Weighted choice among same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof: no positive-weight arms");
        Union { arms, total_weight }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.random_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if roll < weight {
                return strat.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("roll exceeded total weight");
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Regex-like pattern strategies: a `&str` literal is a strategy producing
/// `String`s matching the (subset) pattern. See [`crate::string`].
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples!(
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6),
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7),
);
