//! `any::<T>()` — whole-domain strategies for primitives.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngExt};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias towards boundary values an eighth of the time: most
                // integer bugs live at 0 / ±1 / MIN / MAX.
                if rng.random_range(0u32..8) == 0 {
                    const EDGES: [$t; 5] =
                        [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX.wrapping_add(<$t>::MIN)];
                    EDGES[rng.random_range(0..EDGES.len())]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly finite uniform over a wide exponent range; occasionally a
        // boundary value.
        match rng.random_range(0u32..16) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            _ => {
                let magnitude = 10f64.powi(rng.random_range(-12i32..12));
                rng.random_range(-1.0f64..1.0) * magnitude
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.random_bool(0.8) {
            rng.random_range(0x20u32..0x7F)
        } else {
            // Skip the surrogate block.
            let v = rng.random_range(0xA0u32..0xD800);
            v
        }
        .try_into()
        .unwrap_or('\u{FFFD}')
    }
}
