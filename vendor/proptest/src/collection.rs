//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// A range of collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..self.max)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with a target size drawn
/// from `size` (duplicate keys may make the result smaller, as in real
/// proptest).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.pick(rng);
        let mut map = BTreeMap::new();
        for _ in 0..target {
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}
