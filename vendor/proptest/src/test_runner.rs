//! Config, case outcome, and the deterministic per-test RNG.

use rand::SeedableRng;

/// The RNG handed to strategies. Deterministic per (test name, attempt).
pub type TestRng = rand::rngs::StdRng;

/// Run configuration for one `proptest!` test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case without counting it.
    Reject(String),
    /// An assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor for a failing case.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Convenience constructor for a rejected case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Result type the generated test bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Derives the RNG for one attempt of one test, deterministically: FNV-1a
/// over the fully qualified test name, mixed with the attempt counter.
pub fn rng_for(test_name: &str, attempt: u64) -> TestRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
