//! Tiny regex-subset string generator backing the `&str` strategy.
//!
//! Supported syntax — the subset the workspace's tests use, plus the obvious
//! neighbours:
//!
//! - literal characters
//! - character classes `[a-z_]`, `[ -~]` (ranges and singletons)
//! - `.` (any printable ASCII), `\d`, `\w`, `\PC` (any non-control unicode
//!   scalar), `\n`, `\t`, `\\` and other escaped literals
//! - quantifiers `{m,n}`, `{n}`, `?`, `*`, `+` (`*`/`+` cap at 8 repeats)
//!
//! Anything else panics loudly so a test author immediately sees the shim's
//! boundary instead of silently getting wrong strings.

use crate::test_runner::TestRng;
use rand::RngExt;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive char ranges; a singleton is `(c, c)`.
    Class(Vec<(char, char)>),
    /// Any unicode scalar that is not a control character (`\PC`).
    NonControl,
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for (atom, min, max) in &atoms {
        let count = rng.random_range(*min..=*max);
        for _ in 0..count {
            out.push(gen_char(atom, rng));
        }
    }
    out
}

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            // Weight ranges by their size for uniformity over the class.
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut roll = rng.random_range(0..total);
            for (lo, hi) in ranges {
                let size = *hi as u32 - *lo as u32 + 1;
                if roll < size {
                    return char::try_from(*lo as u32 + roll).unwrap_or('\u{FFFD}');
                }
                roll -= size;
            }
            unreachable!("roll exceeded class size")
        }
        Atom::NonControl => {
            // Mostly printable ASCII, sometimes wider unicode: Latin
            // supplement, CJK, and emoji, all control-free ranges.
            const POOLS: [(u32, u32); 4] = [
                (0x20, 0x7E),
                (0xA0, 0x24F),
                (0x4E00, 0x4FFF),
                (0x1F300, 0x1F5FF),
            ];
            let pool = if rng.random_bool(0.7) {
                POOLS[0]
            } else {
                POOLS[rng.random_range(1..POOLS.len())]
            };
            char::try_from(rng.random_range(pool.0..=pool.1)).unwrap_or('\u{FFFD}')
        }
    }
}

/// Parses into `(atom, min_repeats, max_repeats)` triples.
fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                // Find the closing `]`, skipping escaped characters.
                let mut close = i + 1;
                loop {
                    match chars.get(close) {
                        Some(']') => break,
                        Some('\\') => close += 2,
                        Some(_) => close += 1,
                        None => panic!("unclosed [ in pattern {pattern:?}"),
                    }
                }
                let atom = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                atom
            }
            '\\' => {
                let (atom, consumed) = parse_escape(&chars[i + 1..], pattern);
                i += 1 + consumed;
                atom
            }
            '.' => {
                i += 1;
                Atom::Class(vec![(' ', '~')])
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '^' | '$' | '{' | '}' | '*' | '+' | '?'),
                    "unsupported regex syntax {c:?} in pattern {pattern:?} \
                     (vendored proptest shim supports a subset; see vendor/proptest)"
                );
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} lower bound"),
                        hi.trim().parse().expect("bad {m,n} upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad {n} count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "empty quantifier range in pattern {pattern:?}");
        out.push((atom, min, max));
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Atom {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    // Decode into (char, was_escaped) first so `\-` is never read as a
    // range operator.
    let mut tokens: Vec<(char, bool)> = Vec::with_capacity(body.len());
    let mut i = 0;
    while i < body.len() {
        if body[i] == '\\' {
            let next = body
                .get(i + 1)
                .unwrap_or_else(|| panic!("dangling backslash in class in pattern {pattern:?}"));
            tokens.push((escape_literal(*next, pattern), true));
            i += 2;
        } else {
            tokens.push((body[i], false));
            i += 1;
        }
    }
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (lo, _) = tokens[i];
        if i + 2 < tokens.len() && tokens[i + 1] == ('-', false) {
            let (hi, _) = tokens[i + 2];
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    Atom::Class(ranges)
}

/// Parses the escape following a backslash; returns the atom and how many
/// chars were consumed.
fn parse_escape(rest: &[char], pattern: &str) -> (Atom, usize) {
    match rest.first() {
        Some('P') => {
            // `\PC`: any non-control scalar (complement of category C).
            assert_eq!(
                rest.get(1),
                Some(&'C'),
                "only the \\PC category is supported in pattern {pattern:?}"
            );
            (Atom::NonControl, 2)
        }
        Some('d') => (Atom::Class(vec![('0', '9')]), 1),
        Some('w') => (
            Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            1,
        ),
        Some(&c) => (Atom::Literal(escape_literal(c, pattern)), 1),
        None => panic!("dangling backslash in pattern {pattern:?}"),
    }
}

fn escape_literal(c: char, pattern: &str) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        '\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '|' | '^' | '$' | '*' | '+' | '?'
        | '-' | ' ' | '_' | '"' | '\'' | '/' => c,
        other => panic!("unsupported escape \\{other} in pattern {pattern:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_matching_strings() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = generate_matching("[a-z_]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars().all(|c| c == '_' || c.is_ascii_lowercase()),
                "{s:?}"
            );

            let s = generate_matching("[ -~]{0,20}", &mut rng);
            assert!(s.chars().count() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");

            let s = generate_matching("\\PC{0,8}", &mut rng);
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::seed_from_u64(12);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        let s = generate_matching("x{3}", &mut rng);
        assert_eq!(s, "xxx");
        let s = generate_matching("\\d?", &mut rng);
        assert!(s.len() <= 1);
    }
}
