/root/repo/vendor/criterion/target/debug/deps/criterion-aba3a3d216342502.d: src/lib.rs

/root/repo/vendor/criterion/target/debug/deps/libcriterion-aba3a3d216342502.rlib: src/lib.rs

/root/repo/vendor/criterion/target/debug/deps/libcriterion-aba3a3d216342502.rmeta: src/lib.rs

src/lib.rs:
