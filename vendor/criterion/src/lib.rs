//! Offline vendored stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! A deliberately small wall-clock harness: each benchmark warms up briefly,
//! auto-calibrates an iteration count to roughly `MEASURE_TARGET`, runs
//! `sample_size` samples, and prints median / mean / min per-iteration
//! times. No statistical regression analysis, plots, or saved baselines —
//! numbers print to stdout and the `results/` workflow captures them.

use std::hint;
use std::time::{Duration, Instant};

const WARMUP_TARGET: Duration = Duration::from_millis(300);
const MEASURE_TARGET: Duration = Duration::from_millis(120);

/// Opaque-to-the-optimizer value barrier.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\ngroup: {name}");
        BenchmarkGroup { sample_size: 30 }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, body: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 30, body);
    }
}

/// A named benchmark id with a parameter, e.g. `RS-tree/512`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, body);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.full, self.sample_size, |b| body(b, input));
        self
    }

    /// Ends the group (printing is incremental; nothing further to do).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, sample_size: usize, mut body: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up & calibration: find an iteration count that takes roughly
    // MEASURE_TARGET per sample.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warmup_start = Instant::now();
    loop {
        body(&mut bencher);
        if warmup_start.elapsed() >= WARMUP_TARGET {
            break;
        }
        if bencher.elapsed < Duration::from_millis(1) {
            bencher.iters = bencher.iters.saturating_mul(8);
        } else {
            break;
        }
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let iters = if per_iter > 0.0 {
        ((MEASURE_TARGET.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 1_000_000_000)
    } else {
        1_000_000
    };

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        body(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "  {name}: median {} mean {} min {} ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(samples[0]),
        samples.len(),
        iters,
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3}s")
    } else if seconds >= 1e-3 {
        format!("{:.3}ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3}us", seconds * 1e6)
    } else {
        format!("{:.1}ns", seconds * 1e9)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
