/root/repo/vendor/crossbeam/target/debug/deps/crossbeam-b7f7160a582a2fc2.d: src/lib.rs

/root/repo/vendor/crossbeam/target/debug/deps/crossbeam-b7f7160a582a2fc2: src/lib.rs

src/lib.rs:
