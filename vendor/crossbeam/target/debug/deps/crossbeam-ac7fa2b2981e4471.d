/root/repo/vendor/crossbeam/target/debug/deps/crossbeam-ac7fa2b2981e4471.d: src/lib.rs

/root/repo/vendor/crossbeam/target/debug/deps/libcrossbeam-ac7fa2b2981e4471.rlib: src/lib.rs

/root/repo/vendor/crossbeam/target/debug/deps/libcrossbeam-ac7fa2b2981e4471.rmeta: src/lib.rs

src/lib.rs:
