//! Offline vendored stand-in for the
//! [`crossbeam`](https://crates.io/crates/crossbeam) crate.
//!
//! Only the `channel` subset the storm engine uses is provided: unbounded
//! multi-producer single-consumer channels with `send`/`recv`/`try_recv`/
//! blocking iteration. Backed by `std::sync::mpsc`, which covers every
//! current call site (the interactive session runner has exactly one
//! consumer per channel). If a future PR needs `select!` or multi-consumer
//! channels, this shim is the place to grow.

pub mod channel {
    //! Unbounded channels with the `crossbeam_channel` API shape.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half; clonable across threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    // Manual impl: like real crossbeam (and the inner `mpsc::Sender`),
    // cloning the handle must not require `T: Clone`.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half. Clonable like crossbeam's: every clone drains the
    /// same queue and each message is delivered to exactly one caller.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    // Like real crossbeam, Debug does not require `T: Debug`.
    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        ///
        /// Note: a blocking `recv` on one clone holds the shared queue lock,
        /// so concurrent clones wait behind it — fine for the engine's
        /// single-consumer-at-a-time usage.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner).recv()
        }

        /// Blocks until a message arrives, all senders are gone, or
        /// `timeout` elapses. Same lock caveat as [`Receiver::recv`].
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .try_recv()
        }

        /// Blocking iterator over messages until all senders are gone.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            let d = std::time::Duration::from_millis(10);
            assert_eq!(rx.recv_timeout(d), Err(RecvTimeoutError::Timeout));
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(d), Ok(7));
            drop(tx);
            assert_eq!(rx.recv_timeout(d), Err(RecvTimeoutError::Disconnected));
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || {
                for i in 0..5 {
                    tx.send(i).unwrap();
                }
            });
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        }
    }
}
