//! Sequence helpers (`SliceRandom`).

use crate::{Rng, RngExt};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1u8, 2, 3, 4];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert_eq!(&seen[1..], &[true; 4]);
    }
}
