//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment for this repository has no network access and no
//! registry cache, so the workspace vendors the *exact* API surface it uses.
//! Design notes:
//!
//! - [`Rng`] is the dyn-safe core trait (`next_u64`/`next_u32` only), because
//!   STORM's samplers take `&mut dyn Rng` (see `storm_core::SpatialSampler`).
//! - [`RngExt`] carries the generic conveniences (`random_range`,
//!   `random_bool`, …) and is blanket-implemented for every `Rng`, sized or
//!   not — so both `&mut StdRng` and `&mut dyn Rng` call sites work.
//! - [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64. It is fully
//!   deterministic for a given `seed_from_u64` input, which is what STORM's
//!   reproducibility story (and storm-lint rule R2) relies on. There is
//!   deliberately **no** `thread_rng`/`from_entropy`/ambient `random()`:
//!   every RNG in the workspace must be constructed from an explicit seed.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Dyn-safe random-number-generator core: a source of uniform `u64`s.
///
/// Mirrors `rand_core::RngCore` but stays object-safe so samplers can take
/// `&mut dyn Rng`.
pub trait Rng {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

impl<T: Rng + ?Sized> Rng for Box<T> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from an explicit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generic conveniences on top of [`Rng`]; blanket-implemented for all
/// generators including trait objects.
pub trait RngExt: Rng {
    /// Draws a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(&mut bits_fn(self))
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p out of [0,1]: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value of a primitive type uniformly over its whole domain
    /// (for floats: uniform in `[0, 1)`).
    fn random<T: RandomValue>(&mut self) -> T {
        T::random_from(&mut bits_fn(self))
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Borrows any `Rng` as a monomorphic bit source, so the generic sampling
/// code below is compiled once instead of per generator type.
fn bits_fn<R: Rng + ?Sized>(rng: &mut R) -> impl FnMut() -> u64 + '_ {
    move || rng.next_u64()
}

/// `u64` in `[0, 1)` as an `f64` with 53 random mantissa bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, n)` via widening multiply (Lemire). The modulo bias
/// is below 2^-64 per draw, far under anything STORM's statistical tests can
/// observe, and it is branch-free and deterministic.
#[inline]
fn uniform_u64(bits: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(bits) * u128::from(n)) >> 64) as u64
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open(bits: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive(bits: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(bits: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64(bits(), span) as $t)
            }

            #[inline]
            fn sample_inclusive(bits: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return bits() as $t;
                }
                lo.wrapping_add(uniform_u64(bits(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(bits: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let u = unit_f64(bits()) as $t;
                let v = lo + (hi - lo) * u;
                // Floating rounding can land exactly on `hi`; clamp back
                // inside the half-open interval.
                if v >= hi { lo.max(<$t>::from_bits(hi.to_bits() - 1)) } else { v }
            }

            #[inline]
            fn sample_inclusive(bits: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                lo + (hi - lo) * (unit_f64(bits()) as $t)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws uniformly from `self`.
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(bits, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from(self, bits: &mut dyn FnMut() -> u64) -> T {
        T::sample_inclusive(bits, *self.start(), *self.end())
    }
}

/// Types producible by [`RngExt::random`].
pub trait RandomValue {
    /// Draws one value.
    fn random_from(bits: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_random_value_int {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            #[inline]
            fn random_from(bits: &mut dyn FnMut() -> u64) -> Self {
                bits() as $t
            }
        }
    )*};
}

impl_random_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandomValue for bool {
    #[inline]
    fn random_from(bits: &mut dyn FnMut() -> u64) -> Self {
        bits() & 1 == 1
    }
}

impl RandomValue for f64 {
    #[inline]
    fn random_from(bits: &mut dyn FnMut() -> u64) -> Self {
        unit_f64(bits())
    }
}

impl RandomValue for f32 {
    #[inline]
    fn random_from(bits: &mut dyn FnMut() -> u64) -> Self {
        unit_f64(bits()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.random_range(-8i64..=8);
            assert!((-8..=8).contains(&i));
        }
    }

    #[test]
    fn random_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow ±5 sigma (~±470).
            assert!((9_500..10_500).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn works_through_dyn_rng() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let v = dyn_rng.random_range(0u64..100);
        assert!(v < 100);
    }

    #[test]
    fn float_half_open_never_hits_upper_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100_000 {
            let v = rng.random_range(0.0f64..1e-300);
            assert!(v < 1e-300);
        }
    }
}
