/root/repo/vendor/rand/target/debug/deps/rand-504864e310b23ec4.d: src/lib.rs src/rngs.rs src/seq.rs

/root/repo/vendor/rand/target/debug/deps/rand-504864e310b23ec4: src/lib.rs src/rngs.rs src/seq.rs

src/lib.rs:
src/rngs.rs:
src/seq.rs:
