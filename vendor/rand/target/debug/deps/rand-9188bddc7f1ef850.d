/root/repo/vendor/rand/target/debug/deps/rand-9188bddc7f1ef850.d: src/lib.rs src/rngs.rs src/seq.rs

/root/repo/vendor/rand/target/debug/deps/librand-9188bddc7f1ef850.rlib: src/lib.rs src/rngs.rs src/seq.rs

/root/repo/vendor/rand/target/debug/deps/librand-9188bddc7f1ef850.rmeta: src/lib.rs src/rngs.rs src/seq.rs

src/lib.rs:
src/rngs.rs:
src/seq.rs:
