//! Offline vendored stand-in for the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate.
//!
//! Exposes `parking_lot`'s lock API — `lock()`/`read()`/`write()` returning
//! guards directly, no poisoning — implemented over `std::sync`. Poison
//! errors are unwound into the inner guard: a panic while holding a lock
//! does not permanently wedge it, matching `parking_lot` semantics.
//!
//! This crate is the one sanctioned home of `std::sync::{Mutex, RwLock}` in
//! the repository; storm-lint rule R4 bans them everywhere else so the
//! workspace has a single lock vocabulary.

use std::sync::PoisonError;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock only if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Shared read access only if immediately available.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive write access only if immediately available.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
