//! # STORM — Spatio-Temporal Online Reasoning and Management
//!
//! A from-scratch Rust implementation of the STORM system
//! (Christensen, Wang, Li, Yi, Tang, Villa — SIGMOD 2015): **online
//! aggregation and analytics over large spatio-temporal data**, powered by
//! **spatial online sampling**.
//!
//! Instead of waiting for an exact answer over millions of points, a STORM
//! query returns an estimate with a confidence interval within
//! milliseconds and keeps refining it until the user stops it, a quality
//! target is met, or a time budget runs out:
//!
//! ```
//! use storm::engine::{DatasetConfig, StormEngine};
//! use storm::connector::StRecord;
//! use storm::geo::StPoint;
//! use storm::store::Value;
//!
//! // 10 000 temperature readings on a grid.
//! let records: Vec<StRecord> = (0..10_000)
//!     .map(|i| StRecord {
//!         point: StPoint::new((i % 100) as f64, (i / 100) as f64, i as i64),
//!         body: Value::object([("temp".into(), Value::Float(20.0 + (i % 10) as f64))]),
//!     })
//!     .collect();
//!
//! let mut engine = StormEngine::new(42);
//! engine.create_dataset("weather", records, DatasetConfig::default()).unwrap();
//!
//! // Online AVG with a 1%-relative-error stopping rule at 95% confidence.
//! let outcome = engine
//!     .execute("ESTIMATE AVG(temp) FROM weather RANGE 10 10 90 90 CONFIDENCE 0.95 ERROR 0.01")
//!     .unwrap();
//! let est = outcome.estimate().unwrap();
//! assert!((est.value - 24.5).abs() < 1.0);
//! assert!(est.relative_error(0.95) <= 0.011);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geo`] | `storm-geo` | points, rectangles, Hilbert/Z-order curves, spatio-temporal queries |
//! | [`rtree`] | `storm-rtree` | the R-tree substrate with counts, canonical sets, simulated I/O |
//! | [`sampling`] | `storm-core` | **the paper's contribution**: QueryFirst, SampleFirst, RandomPath, LS-tree, RS-tree + the optimizer cost model |
//! | [`estimators`] | `storm-estimators` | online mean/sum with CIs, KDE, k-means, heavy hitters, trajectories |
//! | [`store`] | `storm-store` | JSON document storage, blocks, sharding |
//! | [`connector`] | `storm-connector` | CSV/JSON-lines import, schema discovery, field mapping |
//! | [`query`] | `storm-query` | STORM-QL parser and the query optimizer |
//! | [`engine`] | `storm-engine` | the engine facade, sessions, updates, visualizer |
//! | [`workload`] | `storm-workload` | seeded OSM/Twitter/MesoWest-like generators |
//!
//! See `DESIGN.md` for the architecture and the experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use storm_connector as connector;
pub use storm_core as sampling;
pub use storm_engine as engine;
pub use storm_estimators as estimators;
pub use storm_geo as geo;
pub use storm_query as query;
pub use storm_rtree as rtree;
pub use storm_store as store;
pub use storm_workload as workload;

/// Commonly-used items, one `use` away.
pub mod prelude {
    pub use storm_connector::{CsvSource, DataSource, FieldMapping, JsonLinesSource, StRecord};
    pub use storm_core::{
        LsTree, QueryFirst, RandomPath, RsTree, RsTreeConfig, SampleFirst, SampleMode, SamplerKind,
        SpatialSampler,
    };
    pub use storm_engine::{
        Dataset, DatasetConfig, Progress, QueryOutcome, StopReason, StormEngine, TaskResult,
    };
    pub use storm_estimators::{Estimate, OnlineStat};
    pub use storm_geo::{Point2, Point3, Rect2, Rect3, StPoint, StQuery, TimeRange};
    pub use storm_rtree::{Item, RTree, RTreeConfig};
    pub use storm_store::{DocId, Value};
}
