//! `storm-cli` — an interactive STORM-QL shell over synthetic or imported
//! data, the closest in-terminal analogue of the paper's demo UI.
//!
//! ```text
//! cargo run --release --bin storm-cli
//! storm> \load osm 200000
//! storm> EXPLAIN ESTIMATE AVG(altitude) FROM osm RANGE -120 30 -100 45
//! storm> ESTIMATE AVG(altitude) FROM osm RANGE -120 30 -100 45 ERROR 0.005
//! storm> DENSITY FROM osm GRID 48 20 SAMPLES 2000
//! storm> \quit
//! ```
//!
//! Meta commands:
//!
//! * `\load osm|tweets|weather N` — generate and index a synthetic data set
//! * `\import NAME FILE X-FIELD Y-FIELD [T-FIELD]` — import a CSV file
//! * `\save NAME FILE` / `\restore NAME FILE` — persist / reload a data set
//! * `\datasets` — list registered data sets
//! * `\seed S` — restart the engine with a new RNG seed (drops data!)
//! * `\help`, `\quit`
//!
//! Anything else is parsed as STORM-QL (prefix with `EXPLAIN` to see the
//! optimizer's plan instead of running).

use std::io::{BufRead, Write};

use storm::connector::{CsvSource, FieldMapping};
use storm::engine::session::CancelToken;
use storm::engine::viz;
use storm::prelude::*;
use storm::workload::{osm, tweets, weather};

fn main() {
    let mut engine = StormEngine::new(2015);
    println!("STORM interactive shell — \\help for commands, \\quit to exit.");
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("storm> ");
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            if !meta(&mut engine, rest) {
                break;
            }
            continue;
        }
        if let Some(rest) = line
            .strip_prefix("EXPLAIN ")
            .or_else(|| line.strip_prefix("explain "))
        {
            match engine.explain(rest) {
                Ok(text) => println!("{text}"),
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        run_query(&mut engine, line);
    }
    println!("bye.");
}

/// Handles a meta command; returns `false` on quit.
fn meta(engine: &mut StormEngine, command: &str) -> bool {
    let parts: Vec<&str> = command.split_whitespace().collect();
    match parts.as_slice() {
        ["quit"] | ["q"] | ["exit"] => return false,
        ["help"] | ["h"] => {
            println!(
                "\\load osm|tweets|weather N   generate a synthetic data set\n\
                 \\import NAME FILE X Y [T]    import a CSV file\n\
                 \\save NAME FILE              persist a data set as JSON-lines\n\
                 \\restore NAME FILE           reload a persisted data set\n\
                 \\datasets                    list data sets\n\
                 \\seed S                      restart with a new seed (drops data)\n\
                 \\quit                        exit\n\
                 anything else                 STORM-QL (prefix EXPLAIN for the plan)"
            );
        }
        ["datasets"] => {
            for name in engine.dataset_names() {
                let ds = engine.dataset(name).expect("listed name exists");
                println!("  {name}: {} records, bounds {}", ds.len(), ds.bounds2());
            }
        }
        ["seed", s] => match s.parse::<u64>() {
            Ok(seed) => {
                *engine = StormEngine::new(seed);
                println!("engine restarted with seed {seed} (all data sets dropped)");
            }
            Err(_) => eprintln!("error: seed must be an integer"),
        },
        ["load", kind, n] => {
            let Ok(n) = n.parse::<usize>() else {
                eprintln!("error: N must be an integer");
                return true;
            };
            let started = std::time::Instant::now();
            let (name, records) = match *kind {
                "osm" => ("osm", osm::records(n, 42)),
                "tweets" => (
                    "tweets",
                    tweets::generate(&tweets::TweetConfig {
                        tweets: n,
                        ..Default::default()
                    }),
                ),
                "weather" => (
                    "weather",
                    weather::generate(&weather::WeatherConfig {
                        stations: (n / 50).max(1),
                        readings_per_station: 50,
                        ..Default::default()
                    }),
                ),
                other => {
                    eprintln!("error: unknown generator '{other}' (osm|tweets|weather)");
                    return true;
                }
            };
            let count = records.len();
            match engine.create_dataset(name, records, DatasetConfig::default()) {
                Ok(_) => println!(
                    "loaded {count} records into '{name}' in {:.2}s",
                    started.elapsed().as_secs_f64()
                ),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        ["import", name, file, x, y, rest @ ..] => {
            let mapping = FieldMapping::new(*x, *y, rest.first().copied()).lenient();
            match std::fs::File::open(file) {
                Err(e) => eprintln!("error: cannot open {file}: {e}"),
                Ok(f) => {
                    let mut source = CsvSource::new(f);
                    match engine.import(name, &mut source, &mapping, DatasetConfig::default()) {
                        Ok(report) => println!(
                            "imported {} records ({} skipped) into '{name}'",
                            report.imported, report.skipped
                        ),
                        Err(e) => eprintln!("error: {e}"),
                    }
                }
            }
        }
        ["save", name, file] => match engine.save_dataset(name, std::path::Path::new(file)) {
            Ok(()) => println!("saved '{name}' to {file}"),
            Err(e) => eprintln!("error: {e}"),
        },
        ["restore", name, file] => {
            match engine.load_dataset(name, std::path::Path::new(file), DatasetConfig::default()) {
                Ok(n) => println!("restored {n} records into '{name}'"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        _ => eprintln!("error: unknown meta command (\\help)"),
    }
    true
}

fn run_query(engine: &mut StormEngine, ql: &str) {
    let mut last_line_len = 0usize;
    let result = engine.execute_with(ql, &CancelToken::new(), &mut |p| {
        // Live status line for aggregates.
        if let TaskResult::Aggregate {
            estimate,
            confidence,
        } = &p.result
        {
            let line = format!(
                "  {} samples: {:.4} ± {:.4} ({:.0}%)",
                p.samples,
                estimate.value,
                estimate.half_width(*confidence),
                confidence * 100.0
            );
            print!(
                "\r{line}{}",
                " ".repeat(last_line_len.saturating_sub(line.len()))
            );
            last_line_len = line.len();
            std::io::stdout().flush().ok();
        }
    });
    if last_line_len > 0 {
        println!();
    }
    match result {
        Err(e) => eprintln!("error: {e}"),
        Ok(outcome) => print_outcome(&outcome),
    }
}

fn print_outcome(outcome: &QueryOutcome) {
    match &outcome.result {
        TaskResult::Aggregate {
            estimate,
            confidence,
        } => {
            println!(
                "=> {:.6} ± {:.6} ({:.0}% confidence, {} samples of q={})",
                estimate.value,
                estimate.half_width(*confidence),
                confidence * 100.0,
                outcome.samples,
                outcome.q.unwrap_or(0),
            );
        }
        TaskResult::Groups { groups, confidence } => {
            for (key, est) in groups {
                println!(
                    "  {:<16} {:.4} ± {:.4} ({} samples)",
                    key,
                    est.value,
                    est.half_width(*confidence),
                    est.n
                );
            }
            println!("=> {} groups", groups.len());
        }
        TaskResult::Count { q } => println!("=> COUNT = {q} (exact)"),
        TaskResult::Density { grid, map, mean_ci } => {
            print!("{}", viz::ascii_heatmap(map, grid.0, grid.1));
            println!("=> density map, mean relative CI {mean_ci:.4}");
        }
        TaskResult::Cluster { centers, inertia } => {
            for (i, c) in centers.iter().enumerate() {
                println!("  center {i}: {c}");
            }
            println!("=> {} clusters, mean inertia {inertia:.4}", centers.len());
        }
        TaskResult::Trajectory { waypoints } => {
            print!("{}", viz::ascii_trajectory(waypoints, 72, 18));
            println!("=> {} waypoints", waypoints.len());
        }
        TaskResult::Terms { top } => {
            for h in top {
                println!("  {:<14} ~{}", h.term, h.count);
            }
            println!("=> {} terms", top.len());
        }
    }
    println!(
        "   [{} | {:.2} ms | {} simulated reads | stopped: {:?}]",
        outcome.sampler,
        outcome.elapsed.as_secs_f64() * 1e3,
        outcome.io_reads,
        outcome.reason
    );
}
