//! The paper's §1 walk-through: exploring electricity usage in NYC.
//!
//! "Assume that after 1 second into the execution of the first query, the
//! system reports that the average electricity usage is 973 kWh with a
//! standard deviation of 25 kWh and 95% confidence […] the user can
//! immediately change the query condition to stop the first query and
//! start the second query."
//!
//! This example reproduces that interaction: a long online query over one
//! neighbourhood/time window is pre-empted mid-flight by a refined query —
//! no waiting for the first to finish.
//!
//! ```text
//! cargo run --release --example nyc_energy
//! ```

use rand::{rngs::StdRng, RngExt, SeedableRng};
use storm::engine::interactive::{Event, InteractiveSession};
use storm::prelude::*;
use storm::store::Value;

/// Rough NYC bounding box (lon, lat).
const NYC: ((f64, f64), (f64, f64)) = ((-74.26, 40.49), (-73.70, 40.92));
/// Q1 2014 epoch bounds.
const JAN1: i64 = 1_388_534_400;
const DAY: i64 = 86_400;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic smart-meter data: 300 000 readings across NYC in Q1.
    // Usage is higher in Manhattan-ish longitudes and during cold weeks.
    let mut rng = StdRng::seed_from_u64(97);
    let records: Vec<StRecord> = (0..300_000)
        .map(|_| {
            let lon = rng.random_range(NYC.0 .0..NYC.1 .0);
            let lat = rng.random_range(NYC.0 .1..NYC.1 .1);
            let t = JAN1 + rng.random_range(0..90 * DAY);
            let manhattan_boost = if lon > -74.02 && lon < -73.93 {
                120.0
            } else {
                0.0
            };
            let winter_boost = 60.0 * (1.0 - ((t - JAN1) as f64 / (90 * DAY) as f64));
            let kwh = 850.0 + manhattan_boost + winter_boost + rng.random_range(-180.0..180.0);
            StRecord {
                point: StPoint::new(lon, lat, t),
                body: Value::object([("kwh".into(), Value::Float(kwh))]),
            }
        })
        .collect();

    let mut engine = StormEngine::new(1);
    engine.create_dataset("nyc_energy", records, DatasetConfig::default())?;
    let mut session = InteractiveSession::start(engine);

    // Query 1: midtown-ish area, Jan 5 – Mar 5 — run with NO stopping rule
    // (the interactive mode: it would refine until exact).
    let q1 = format!(
        "ESTIMATE AVG(kwh) FROM nyc_energy RANGE -74.02 40.70 -73.93 40.80 TIME {} {}",
        JAN1 + 4 * DAY,
        JAN1 + 63 * DAY
    );
    println!("user issues query 1 (midtown, Jan 5 – Mar 5):\n  {q1}");
    let first = session.submit(&q1);

    // Watch the estimate tick; after a couple of refinements the user is
    // satisfied and immediately issues a refined query — without waiting.
    let mut ticks = 0;
    let mut second = None;
    let mut printed_switch = false;
    loop {
        match session.events().recv()? {
            Event::Progress { query_id, progress } if query_id == first => {
                if let TaskResult::Aggregate { estimate, .. } = &progress.result {
                    println!(
                        "  q1 @ {:>7.2}ms: {:7.1} kWh ± {:5.1} (95%, {} samples)",
                        progress.elapsed.as_secs_f64() * 1e3,
                        estimate.value,
                        estimate.half_width(0.95),
                        progress.samples
                    );
                }
                ticks += 1;
                if ticks == 4 && second.is_none() {
                    // The user zooms and shifts the time window mid-flight.
                    let q2 = format!(
                        "ESTIMATE AVG(kwh) FROM nyc_energy RANGE -74.02 40.70 -73.96 40.76 \
                         TIME {} {} CONFIDENCE 0.98 ERROR 0.005",
                        JAN1 + 14 * DAY,
                        JAN1 + 70 * DAY
                    );
                    println!("user refines the query mid-flight (query 2):\n  {q2}");
                    second = Some(session.submit(&q2));
                }
            }
            Event::Finished { query_id, outcome } if query_id == first && !printed_switch => {
                println!(
                    "  q1 stopped: {:?} after {} samples — no waiting for completion",
                    outcome.reason, outcome.samples
                );
                printed_switch = true;
            }
            Event::Finished { query_id, outcome } if Some(query_id) == second => {
                let est = outcome.estimate().expect("aggregate");
                println!(
                    "  q2 final: {:.1} kWh ± {:.1} (98%) from {} samples in {:.2}ms — {:?}",
                    est.value,
                    est.half_width(0.98),
                    outcome.samples,
                    outcome.elapsed.as_secs_f64() * 1e3,
                    outcome.reason
                );
                break;
            }
            Event::Error { message, .. } => return Err(message.into()),
            _ => {}
        }
    }
    session.shutdown();
    println!("done: two exploration steps, zero waiting.");
    Ok(())
}
