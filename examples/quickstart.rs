//! Quickstart: import a small data set and watch an online estimate
//! converge.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use storm::prelude::*;
use storm::store::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Create an engine and a data set: 100 000 sensor readings laid out
    //    on a 100×1000 grid, one reading per second.
    let records: Vec<StRecord> = (0..100_000)
        .map(|i| StRecord {
            point: StPoint::new((i % 100) as f64, (i / 100) as f64, i as i64),
            body: Value::object([(
                "reading".into(),
                Value::Float(50.0 + ((i * 7919) % 100) as f64 / 10.0),
            )]),
        })
        .collect();
    let mut engine = StormEngine::new(2015);
    engine.create_dataset("sensors", records, DatasetConfig::default())?;

    // 2. Ask for an online average over a spatio-temporal window and print
    //    every progress tick: the estimate is usable long before the query
    //    would have finished scanning.
    println!("ESTIMATE AVG(reading) over x∈[20,80], y∈[100,700], t∈[10 000, 70 000)");
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "samples", "estimate", "±95% CI", "elapsed"
    );
    let outcome = engine.execute_with(
        "ESTIMATE AVG(reading) FROM sensors RANGE 20 100 80 700 TIME 10000 70000 \
         CONFIDENCE 0.95 ERROR 0.002",
        &storm::engine::session::CancelToken::new(),
        &mut |p| {
            if let TaskResult::Aggregate { estimate, .. } = &p.result {
                println!(
                    "{:>9} {:>12.4} {:>12.4} {:>10.2}ms",
                    p.samples,
                    estimate.value,
                    estimate.half_width(0.95),
                    p.elapsed.as_secs_f64() * 1e3
                );
            }
        },
    )?;

    // 3. The final report.
    let est = outcome.estimate().expect("aggregate query");
    println!("---");
    println!(
        "final: {:.4} ± {:.4} (95% conf) from {} samples of q={} in {:.2}ms — stopped: {:?}",
        est.value,
        est.half_width(0.95),
        outcome.samples,
        outcome.q.unwrap_or(0),
        outcome.elapsed.as_secs_f64() * 1e3,
        outcome.reason,
    );
    println!(
        "method chosen by the optimizer: {} | simulated block reads: {}",
        outcome.sampler, outcome.io_reads
    );

    // 4. Compare with the exact answer (what a full scan would have paid).
    let exact = engine.execute(
        "ESTIMATE AVG(reading) FROM sensors RANGE 20 100 80 700 TIME 10000 70000 \
         METHOD queryfirst",
    )?;
    println!(
        "exact (full report): {:.4} — the online estimate was within {:.4}",
        exact.estimate().expect("aggregate").value,
        (est.value - exact.estimate().expect("aggregate").value).abs()
    );
    Ok(())
}
