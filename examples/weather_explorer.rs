//! The MesoWest-style demo: import weather data through the connector
//! (with schema discovery), then compare all five sampling methods on the
//! same spatio-temporal aggregation.
//!
//! ```text
//! cargo run --release --example weather_explorer
//! ```

use storm::connector::{schema::Schema, CsvSource, DataSource, FieldMapping};
use storm::prelude::*;
use storm::workload::weather::{self, WeatherConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Materialise the synthetic station network as a CSV file — the
    //    shape a real MesoWest export would arrive in.
    let cfg = WeatherConfig {
        stations: 2_000,
        readings_per_station: 72,
        ..Default::default()
    };
    let records = weather::generate(&cfg);
    let mut csv = String::from("lon,lat,ts,temp,station\n");
    for r in &records {
        use std::fmt::Write;
        let _ = writeln!(
            csv,
            "{},{},{},{:.2},{}",
            r.point.xy.x(),
            r.point.xy.y(),
            r.point.t,
            r.body.get("temp").unwrap().as_float().unwrap(),
            r.body.get("station").unwrap().as_str().unwrap(),
        );
    }
    println!(
        "synthesised {} readings from {} stations ({} bytes of CSV)",
        records.len(),
        cfg.stations,
        csv.len()
    );

    // 2. Schema discovery over a sample of the rows.
    let mut probe = CsvSource::new(csv.as_bytes());
    let mut sample = Vec::new();
    for _ in 0..200 {
        match probe.next_record() {
            Some(row) => sample.push(row?),
            None => break,
        }
    }
    let schema = Schema::discover(&sample);
    println!(
        "\ndiscovered schema ({} records sampled):",
        schema.records()
    );
    for (name, info) in schema.fields() {
        println!(
            "  {:<8} {:?}  present {}  range [{:?}, {:?}]",
            name, info.ty, info.present, info.min, info.max
        );
    }
    println!(
        "coordinate candidates: {:?}",
        schema.coordinate_candidates()
    );
    println!("timestamp candidates:  {:?}", schema.timestamp_candidates());

    // 3. Import through the connector with an explicit mapping.
    let mut engine = StormEngine::new(9);
    let mapping = FieldMapping::new("lon", "lat", Some("ts"));
    let mut source = CsvSource::new(csv.as_bytes());
    let report = engine.import("mesowest", &mut source, &mapping, DatasetConfig::default())?;
    println!(
        "\nimported {} records ({} skipped) into 'mesowest'",
        report.imported, report.skipped
    );

    // 4. The paper's demo query: average temperature over a spatio-temporal
    //    region — run with every sampling method, 500 samples each.
    let region = "RANGE -115 35 -100 45"; // mountain west
    let window = format!("TIME {} {}", cfg.start_time, cfg.start_time + 48 * 3600);
    println!("\nESTIMATE AVG(temp) {region} {window} — 500 samples per method:");
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>10}",
        "method", "estimate", "±95% CI", "sim-reads", "ms"
    );
    for method in [
        "queryfirst",
        "samplefirst",
        "randompath",
        "lstree",
        "rstree",
    ] {
        let outcome = engine.execute(&format!(
            "ESTIMATE AVG(temp) FROM mesowest {region} {window} SAMPLES 500 METHOD {method}"
        ))?;
        let est = outcome.estimate().expect("aggregate");
        println!(
            "{:>12} {:>10.3} {:>10.3} {:>12} {:>10.2}",
            method,
            est.value,
            est.half_width(0.95),
            outcome.io_reads,
            outcome.elapsed.as_secs_f64() * 1e3
        );
    }

    // 5. And what the optimizer would have picked on its own:
    let outcome = engine.execute(&format!(
        "ESTIMATE AVG(temp) FROM mesowest {region} {window} SAMPLES 500"
    ))?;
    println!("optimizer's own choice: {}", outcome.sampler);

    // 6. Updates: fresh readings arrive; a query over the latest window
    //    sees them immediately (paper §4.2 'updates').
    let now = cfg.start_time + 100 * 3600;
    for j in 0..500 {
        engine.insert(
            "mesowest",
            StRecord {
                point: StPoint::new(-111.9 + (j as f64) * 1e-4, 40.76, now + j),
                body: storm::store::Value::object([
                    ("temp".into(), storm::store::Value::Float(35.0)),
                    ("station".into(), storm::store::Value::from("st_new")),
                ]),
            },
        )?;
    }
    let outcome = engine.execute(&format!(
        "ESTIMATE AVG(temp) FROM mesowest RANGE -112 40 -111 41 TIME {} {}",
        now,
        now + 1000
    ))?;
    let est = outcome.estimate().expect("aggregate");
    println!(
        "\nafter inserting 500 fresh readings: AVG over the newest window = {:.2} (exact: 35.00)",
        est.value
    );
    Ok(())
}
