//! The paper's Figures 5 & 6 demos on the synthetic tweet stream:
//! online KDE population density, a user trajectory, and short-text
//! understanding of the February 2014 Atlanta snowstorm.
//!
//! ```text
//! cargo run --release --example twitter_analytics
//! ```

use storm::engine::viz;
use storm::prelude::*;
use storm::workload::tweets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = tweets::TweetConfig {
        tweets: 120_000,
        users: 50,
        ..Default::default()
    };
    println!(
        "generating {} synthetic tweets from {} users (Jan–Mar 2014, with the Atlanta anomaly)…",
        cfg.tweets, cfg.users
    );
    let records = tweets::generate(&cfg);
    let mut engine = StormEngine::new(5);
    engine.create_dataset("tweets", records, DatasetConfig::default())?;

    // --- Figure 5: online KDE population density ------------------------
    println!("\n=== online population density (KDE), USA-wide, 1500 samples ===");
    let outcome = engine.execute("DENSITY FROM tweets GRID 48 20 SAMPLES 1500")?;
    if let TaskResult::Density { grid, map, mean_ci } = &outcome.result {
        print!("{}", viz::ascii_heatmap(map, grid.0, grid.1));
        println!(
            "({} samples of q={}, mean relative CI {:.3}, {} simulated reads)",
            outcome.samples,
            outcome.q.unwrap_or(0),
            mean_ci,
            outcome.io_reads
        );
    }

    println!("\n=== zoomed: Atlanta during the snowstorm window ===");
    let window = tweets::atlanta_snow_window();
    let outcome = engine.execute(&format!(
        "DENSITY FROM tweets RANGE -85.4 32.8 -83.4 34.8 TIME {} {} GRID 40 20 SAMPLES 1200",
        window.start(),
        window.end()
    ))?;
    if let TaskResult::Density { grid, map, .. } = &outcome.result {
        print!("{}", viz::ascii_heatmap(map, grid.0, grid.1));
        println!("(the hotspot is the anomaly cluster around downtown Atlanta)");
    }

    // --- Figure 6(a): online approximate trajectory ----------------------
    println!("\n=== online approximate trajectory of user_7, from 400 samples ===");
    let outcome = engine.execute("TRAJECTORY user_7 FROM tweets SAMPLES 20000")?;
    if let TaskResult::Trajectory { waypoints } = &outcome.result {
        println!(
            "{} waypoints recovered from {} samples:",
            waypoints.len(),
            outcome.samples
        );
        print!("{}", viz::ascii_trajectory(waypoints, 72, 18));
    }

    // --- Figure 6(b): spatio-temporal short-text understanding ----------
    println!("\n=== top terms, downtown Atlanta, Feb 10–13 2014 ===");
    let outcome = engine.execute(&format!(
        "TERMS 8 FROM tweets RANGE -84.6 33.5 -84.2 34.0 TIME {} {} SAMPLES 600",
        window.start(),
        window.end()
    ))?;
    if let TaskResult::Terms { top } = &outcome.result {
        for h in top {
            println!("  {:<10} ~{} occurrences (±{})", h.term, h.count, h.error);
        }
        println!("(compare the paper: 'snow, ice, outage, hell, why…')");
    }

    // Contrast: the same query over a calm week elsewhere.
    println!("\n=== top terms, same place, a calm week in January ===");
    let outcome = engine.execute(&format!(
        "TERMS 8 FROM tweets RANGE -90.0 30.0 -80.0 40.0 TIME {} {} SAMPLES 600",
        1_388_534_400i64, 1_389_139_200i64
    ))?;
    if let TaskResult::Terms { top } = &outcome.result {
        for h in top {
            println!("  {:<10} ~{} occurrences (±{})", h.term, h.count, h.error);
        }
    }
    Ok(())
}
