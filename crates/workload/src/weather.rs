//! MesoWest-like weather-station measurements.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use storm_connector::StRecord;
use storm_geo::{Point2, Rect2, StPoint};
use storm_store::Value;

use crate::tweets::us_bounds;

/// Weather-network generator parameters.
#[derive(Debug, Clone)]
pub struct WeatherConfig {
    /// Number of stations (the MesoWest network has ~40 000).
    pub stations: usize,
    /// Measurements per station.
    pub readings_per_station: usize,
    /// RNG seed.
    pub seed: u64,
    /// Timeline start (epoch seconds).
    pub start_time: i64,
    /// Seconds between consecutive readings of one station.
    pub interval: i64,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        WeatherConfig {
            stations: 500,
            readings_per_station: 50,
            seed: 0x5EA_7E3,
            start_time: 1_388_534_400, // Jan 1, 2014
            interval: 3600,
        }
    }
}

/// Generates station measurements. Temperature follows latitude (colder
/// north), a diurnal cycle, and noise — so spatial aggregates over
/// different regions genuinely differ, like the paper's "average
/// temperature reading from a spatio-temporal region" demo.
pub fn generate(cfg: &WeatherConfig) -> Vec<StRecord> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let bounds = us_bounds();
    let stations: Vec<(Point2, f64)> = (0..cfg.stations)
        .map(|_| {
            let p = Point2::xy(
                rng.random_range(bounds.lo().x()..bounds.hi().x()),
                rng.random_range(bounds.lo().y()..bounds.hi().y()),
            );
            let station_bias = rng.random_range(-2.0..2.0);
            (p, station_bias)
        })
        .collect();
    let mut records = Vec::with_capacity(cfg.stations * cfg.readings_per_station);
    for (sid, (site, bias)) in stations.iter().enumerate() {
        for k in 0..cfg.readings_per_station {
            let t = cfg.start_time + k as i64 * cfg.interval;
            let hour = (t / 3600) % 24;
            let diurnal = 6.0 * ((hour as f64 - 14.0) / 24.0 * std::f64::consts::TAU).cos();
            let latitudinal = 30.0 - (site.y() - 25.0) * 1.1;
            let temp = latitudinal + diurnal + bias + rng.random_range(-1.5..1.5);
            records.push(StRecord {
                point: StPoint::new(site.x(), site.y(), t),
                body: Value::object([
                    ("temp".into(), Value::Float(temp)),
                    ("station".into(), Value::from(format!("st_{sid}"))),
                ]),
            });
        }
    }
    records
}

/// Ground-truth mean temperature over a spatio-temporal box.
pub fn exact_avg_temp(records: &[StRecord], rect: &Rect2, t0: i64, t1: i64) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for r in records {
        if r.point.t >= t0 && r.point.t < t1 && rect.contains_point(&r.point.xy) {
            sum += r.body.get("temp")?.as_float()?;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WeatherConfig {
        WeatherConfig {
            stations: 100,
            readings_per_station: 20,
            ..Default::default()
        }
    }

    #[test]
    fn sizes_and_determinism() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.len(), 2000);
        assert_eq!(a[1234].body, b[1234].body);
    }

    #[test]
    fn south_is_warmer_than_north() {
        let recs = generate(&WeatherConfig {
            stations: 400,
            readings_per_station: 10,
            ..Default::default()
        });
        let south = Rect2::from_corners(Point2::xy(-125.0, 25.0), Point2::xy(-66.0, 32.0));
        let north = Rect2::from_corners(Point2::xy(-125.0, 42.0), Point2::xy(-66.0, 49.0));
        let (t0, t1) = (0, i64::MAX);
        let ts = exact_avg_temp(&recs, &south, t0, t1).unwrap();
        let tn = exact_avg_temp(&recs, &north, t0, t1).unwrap();
        assert!(ts > tn + 5.0, "south {ts} vs north {tn}");
    }

    #[test]
    fn stations_emit_regular_series() {
        let cfg = small();
        let recs = generate(&cfg);
        // First station's readings are interval-spaced.
        let first_station: Vec<&StRecord> = recs
            .iter()
            .filter(|r| r.body.get("station").unwrap().as_str() == Some("st_0"))
            .collect();
        assert_eq!(first_station.len(), cfg.readings_per_station);
        for pair in first_station.windows(2) {
            assert_eq!(pair[1].point.t - pair[0].point.t, cfg.interval);
        }
    }
}
