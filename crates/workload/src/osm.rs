//! OSM-like geo points: a clustered world with altitudes.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use storm_connector::StRecord;
use storm_geo::{Point2, Rect2, StPoint};
use storm_rtree::Item;
use storm_store::Value;

/// World longitude/latitude bounds.
pub fn world_bounds() -> Rect2 {
    Rect2::from_corners(Point2::xy(-180.0, -90.0), Point2::xy(180.0, 90.0))
}

/// A generated OSM-like data set: 2-D points plus a parallel altitude
/// column indexed by item id (the `avg(altitude)` attribute of
/// Figure 3(b)).
#[derive(Debug, Clone)]
pub struct OsmData {
    /// The spatial points (ids are dense `0..n`).
    pub items: Vec<Item<2>>,
    /// `altitudes[id]` is the altitude attribute of item `id`.
    pub altitudes: Vec<f64>,
}

impl OsmData {
    /// Ground-truth mean altitude over a query rectangle.
    pub fn exact_avg_altitude(&self, query: &Rect2) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for item in &self.items {
            if query.contains_point(&item.point) {
                sum += self.altitudes[item.id as usize];
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }
}

/// Generates `n` OSM-like points: 85% clustered around `sqrt(n)`-ish
/// "cities", 15% uniform background. Altitude follows a smooth terrain
/// function of location plus noise, so spatially-close points have
/// correlated altitudes — exactly the regime where online AVG estimates
/// are interesting.
pub fn generate(n: usize, seed: u64) -> OsmData {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = world_bounds();
    let cities = ((n as f64).sqrt() as usize).clamp(4, 2000);
    let centers: Vec<(f64, f64, f64)> = (0..cities)
        .map(|_| {
            (
                rng.random_range(-175.0..175.0),
                rng.random_range(-80.0..80.0),
                rng.random_range(0.2..3.0), // city radius in degrees
            )
        })
        .collect();
    let mut items = Vec::with_capacity(n);
    let mut altitudes = Vec::with_capacity(n);
    for id in 0..n {
        let (x, y) = if rng.random_range(0.0..1.0) < 0.85 {
            let (cx, cy, r) = centers[rng.random_range(0..centers.len())];
            // Box–Muller normal jitter around the city center.
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let mag = (-2.0f64 * u1.ln()).sqrt();
            let dx = mag * (2.0 * std::f64::consts::PI * u2).cos() * r;
            let dy = mag * (2.0 * std::f64::consts::PI * u2).sin() * r;
            ((cx + dx).clamp(-180.0, 180.0), (cy + dy).clamp(-90.0, 90.0))
        } else {
            (
                rng.random_range(-180.0..180.0),
                rng.random_range(-90.0..90.0),
            )
        };
        items.push(Item::new(Point2::xy(x, y), id as u64));
        altitudes.push(terrain(x, y) + rng.random_range(-30.0..30.0));
    }
    debug_assert!(items.iter().all(|it| bounds.contains_point(&it.point)));
    OsmData { items, altitudes }
}

/// Smooth synthetic terrain: a few superposed sinusoidal ridges, 0–2500 m.
fn terrain(x: f64, y: f64) -> f64 {
    let a = ((x / 37.0).sin() + (y / 23.0).cos()) * 600.0;
    let b = ((x / 11.0 + y / 7.0).sin()) * 350.0;
    1250.0 + a + b
}

/// Engine-level records with `altitude` attribute bodies (timestamps are a
/// deterministic sequence so spatio-temporal queries have a time axis).
pub fn records(n: usize, seed: u64) -> Vec<StRecord> {
    let data = generate(n, seed);
    data.items
        .iter()
        .map(|item| StRecord {
            point: StPoint::new(item.point.x(), item.point.y(), item.id as i64),
            body: Value::object([(
                "altitude".into(),
                Value::Float(data.altitudes[item.id as usize]),
            )]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(1000, 7);
        let b = generate(1000, 7);
        assert_eq!(a.items.len(), 1000);
        assert_eq!(a.items[500].point, b.items[500].point);
        assert_eq!(a.altitudes[500], b.altitudes[500]);
        let c = generate(1000, 8);
        assert_ne!(a.items[500].point, c.items[500].point);
    }

    #[test]
    fn points_stay_in_world_bounds() {
        let data = generate(5000, 1);
        let bounds = world_bounds();
        assert!(data.items.iter().all(|it| bounds.contains_point(&it.point)));
    }

    #[test]
    fn data_is_clustered_not_uniform() {
        // Concentration check: the densest 10% of coarse grid cells must
        // hold far more than 10% of the points (uniform data would give
        // ~10%; the 85%-clustered mix gives a large multiple).
        let data = generate(20_000, 2);
        let mut counts: std::collections::HashMap<(i32, i32), usize> = Default::default();
        for it in &data.items {
            let gx = ((it.point.x() + 180.0) / 9.0) as i32;
            let gy = ((it.point.y() + 90.0) / 9.0) as i32;
            *counts.entry((gx, gy)).or_default() += 1;
        }
        let mut cell_counts: Vec<usize> = counts.values().copied().collect();
        cell_counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = 40 * 20 / 10; // densest 10% of the 800 cells
        let in_top: usize = cell_counts.iter().take(top).sum();
        let frac = in_top as f64 / data.items.len() as f64;
        assert!(frac > 0.3, "top-decile cells hold only {frac:.2} of points");
    }

    #[test]
    fn altitudes_are_spatially_correlated() {
        let data = generate(20_000, 3);
        // Points within 1 degree of each other have much closer altitudes
        // than random pairs.
        let mut near_diff = 0.0;
        let mut far_diff = 0.0;
        let mut near_n = 0;
        let mut far_n = 0;
        for pair in data.items.windows(2).take(5000) {
            let d = pair[0].point.dist(&pair[1].point);
            let diff =
                (data.altitudes[pair[0].id as usize] - data.altitudes[pair[1].id as usize]).abs();
            if d < 1.0 {
                near_diff += diff;
                near_n += 1;
            } else if d > 30.0 {
                far_diff += diff;
                far_n += 1;
            }
        }
        if near_n > 20 && far_n > 20 {
            assert!(near_diff / near_n as f64 <= far_diff / far_n as f64 + 1.0);
        }
    }

    #[test]
    fn exact_avg_matches_manual_scan() {
        let data = generate(2000, 4);
        let q = Rect2::from_corners(Point2::xy(-30.0, -30.0), Point2::xy(30.0, 30.0));
        let avg = data.exact_avg_altitude(&q);
        if let Some(avg) = avg {
            assert!((0.0..3000.0).contains(&avg));
        }
        let empty = Rect2::from_corners(Point2::xy(500.0, 500.0), Point2::xy(501.0, 501.0));
        assert!(data.exact_avg_altitude(&empty).is_none());
    }

    #[test]
    fn records_carry_the_altitude_attribute() {
        let recs = records(100, 5);
        assert_eq!(recs.len(), 100);
        assert!(recs[0].body.get("altitude").unwrap().as_float().is_some());
        assert_eq!(recs[42].point.t, 42);
    }
}
