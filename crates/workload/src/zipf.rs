//! Zipf-distributed sampling (word frequencies).

use rand::{Rng, RngExt};

/// A Zipf(`s`) distribution over ranks `0..n`: rank `r` has probability
/// proportional to `1/(r+1)^s`. Sampling is `O(log n)` by binary search
/// over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank (never empty).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut dyn Rng) -> usize {
        let rng = &mut *rng;
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut zero = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        // P(rank 0) = 1/H_1000 ≈ 0.133.
        let frac = zero as f64 / draws as f64;
        assert!((0.11..0.16).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((4000..6000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn monotone_rank_frequencies() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0usize; 50];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head ranks clearly outnumber tail ranks.
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
    }
}
