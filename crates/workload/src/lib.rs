//! Synthetic spatio-temporal workloads for the STORM experiments.
//!
//! The paper evaluates on the full OpenStreetMap data set and demos on
//! live Twitter and MesoWest weather-station feeds — none of which can ship
//! with a reproduction. This crate generates seeded, deterministic
//! stand-ins that exercise the same code paths (see DESIGN.md §1 for the
//! substitution rationale):
//!
//! * [`osm`] — world-scale clustered geo points with an `altitude`
//!   attribute (the Figure 3 workload);
//! * [`tweets`] — per-user random-walk trajectories with Zipf-distributed
//!   text, including the February 2014 "Atlanta snowstorm" anomaly window
//!   (the Figure 5/6 workloads);
//! * [`weather`] — fixed stations emitting periodic temperature
//!   measurements (the MesoWest stand-in);
//! * [`synth`] — uniform and Gaussian-mixture baselines for unit-style
//!   benchmarks;
//! * [`queries`] — query-rectangle generators with target selectivity;
//! * [`zipf`] — the Zipf sampler behind the text generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod osm;
pub mod queries;
pub mod synth;
pub mod tweets;
pub mod weather;
pub mod zipf;
