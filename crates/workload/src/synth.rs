//! Uniform and Gaussian-mixture point baselines.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use storm_geo::{Point2, Rect2};
use storm_rtree::Item;

/// `n` points uniform over `bounds`.
pub fn uniform(n: usize, bounds: &Rect2, seed: u64) -> Vec<Item<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            Item::new(
                Point2::xy(
                    rng.random_range(bounds.lo().x()..=bounds.hi().x()),
                    rng.random_range(bounds.lo().y()..=bounds.hi().y()),
                ),
                id as u64,
            )
        })
        .collect()
}

/// `n` points from `k` spherical Gaussian blobs with standard deviation
/// `sigma`, centers uniform over `bounds`.
pub fn gaussian_mixture(n: usize, k: usize, sigma: f64, bounds: &Rect2, seed: u64) -> Vec<Item<2>> {
    assert!(k > 0, "need at least one component");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point2> = (0..k)
        .map(|_| {
            Point2::xy(
                rng.random_range(bounds.lo().x()..=bounds.hi().x()),
                rng.random_range(bounds.lo().y()..=bounds.hi().y()),
            )
        })
        .collect();
    (0..n)
        .map(|id| {
            let c = centers[rng.random_range(0..k)];
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let mag = sigma * (-2.0f64 * u1.ln()).sqrt();
            let p = Point2::xy(
                c.x() + mag * (std::f64::consts::TAU * u2).cos(),
                c.y() + mag * (std::f64::consts::TAU * u2).sin(),
            );
            Item::new(p, id as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect2 {
        Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(100.0, 100.0))
    }

    #[test]
    fn uniform_fills_the_box_evenly() {
        let items = uniform(10_000, &unit(), 1);
        assert_eq!(items.len(), 10_000);
        assert!(items.iter().all(|it| unit().contains_point(&it.point)));
        // Left half gets roughly half the points.
        let left = items.iter().filter(|it| it.point.x() < 50.0).count();
        assert!((4500..5500).contains(&left), "left = {left}");
    }

    #[test]
    fn mixture_concentrates_around_k_blobs() {
        let items = gaussian_mixture(5000, 3, 1.0, &unit(), 2);
        // Most points lie within 4σ of some center ⇒ total spread is far
        // from uniform: measure the mean nearest-centroid... simpler: count
        // occupied coarse cells.
        let mut occupied = std::collections::HashSet::new();
        for it in &items {
            occupied.insert(((it.point.x() / 5.0) as i32, (it.point.y() / 5.0) as i32));
        }
        assert!(occupied.len() < 100, "too spread out: {}", occupied.len());
    }

    #[test]
    fn ids_are_dense() {
        let items = uniform(100, &unit(), 3);
        for (i, it) in items.iter().enumerate() {
            assert_eq!(it.id, i as u64);
        }
    }
}
