//! Synthetic tweet streams: user trajectories + Zipf text + an anomaly.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use storm_connector::StRecord;
use storm_geo::{Point2, Rect2, StPoint, TimeRange};
use storm_store::Value;

use crate::zipf::Zipf;

/// Continental-US longitude/latitude bounds.
pub fn us_bounds() -> Rect2 {
    Rect2::from_corners(Point2::xy(-125.0, 25.0), Point2::xy(-66.0, 49.0))
}

/// Downtown Atlanta.
pub const ATLANTA: (f64, f64) = (-84.39, 33.75);

/// The February 10–13, 2014 Atlanta snowstorm window (epoch seconds) —
/// the event behind the paper's Figure 6(b) demo.
pub fn atlanta_snow_window() -> TimeRange {
    TimeRange::new(1_391_990_400, 1_392_336_000)
}

/// Vocabulary tweeted during the snowstorm, echoing the terms the paper
/// highlights ("snow, ice, outage, shit, hell, why").
pub const STORM_VOCAB: &[&str] = &[
    "snow", "ice", "outage", "cold", "stuck", "power", "traffic", "hell", "why", "closed",
    "freezing", "storm",
];

/// Everyday vocabulary head (the Zipf tail is synthetic `topicNNN` words).
const COMMON_VOCAB: &[&str] = &[
    "coffee", "morning", "work", "love", "game", "music", "food", "friday", "weekend", "movie",
    "gym", "lunch", "dinner", "sunny", "happy", "tired", "school", "home",
];

/// Tweet-stream generator parameters.
#[derive(Debug, Clone)]
pub struct TweetConfig {
    /// Number of distinct users.
    pub users: usize,
    /// Total tweets to generate.
    pub tweets: usize,
    /// RNG seed.
    pub seed: u64,
    /// Timeline (epoch seconds).
    pub time: TimeRange,
    /// Whether to script the Atlanta snowstorm anomaly.
    pub with_anomaly: bool,
}

impl Default for TweetConfig {
    fn default() -> Self {
        TweetConfig {
            users: 200,
            tweets: 20_000,
            seed: 0x7_EE7,
            // Jan 1 – Mar 1, 2014.
            time: TimeRange::new(1_388_534_400, 1_393_632_000),
            with_anomaly: true,
        }
    }
}

/// Generates a tweet stream: each user performs a bounded random walk over
/// the US; tweet times are a (sorted) uniform sample of the timeline; text
/// is Zipf-distributed. Inside the anomaly window a third of tweets
/// relocate to Atlanta and use [`STORM_VOCAB`].
pub fn generate(cfg: &TweetConfig) -> Vec<StRecord> {
    assert!(cfg.users > 0 && !cfg.time.is_empty());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let bounds = us_bounds();
    // Per-user walk state.
    let mut positions: Vec<Point2> = (0..cfg.users)
        .map(|_| {
            Point2::xy(
                rng.random_range(bounds.lo().x()..bounds.hi().x()),
                rng.random_range(bounds.lo().y()..bounds.hi().y()),
            )
        })
        .collect();
    let vocab_tail = Zipf::new(2000, 1.1);
    let anomaly_window = atlanta_snow_window();

    // Sorted tweet times across the timeline.
    let mut times: Vec<i64> = (0..cfg.tweets)
        .map(|_| rng.random_range(cfg.time.start()..cfg.time.end()))
        .collect();
    times.sort_unstable();

    let mut records = Vec::with_capacity(cfg.tweets);
    for t in times {
        let user = rng.random_range(0..cfg.users);
        // Random walk step (bounded).
        let step = 0.3;
        let p = positions[user];
        let np = Point2::xy(
            (p.x() + rng.random_range(-step..step)).clamp(bounds.lo().x(), bounds.hi().x()),
            (p.y() + rng.random_range(-step..step)).clamp(bounds.lo().y(), bounds.hi().y()),
        );
        positions[user] = np;

        let in_anomaly = cfg.with_anomaly
            && anomaly_window.contains(t)
            && cfg.time.contains(t)
            && rng.random_range(0.0..1.0) < 0.33;
        let (xy, text) = if in_anomaly {
            let xy = Point2::xy(
                ATLANTA.0 + rng.random_range(-0.15..0.15),
                ATLANTA.1 + rng.random_range(-0.15..0.15),
            );
            let words: Vec<&str> = (0..rng.random_range(4..9))
                .map(|_| STORM_VOCAB[rng.random_range(0..STORM_VOCAB.len())])
                .collect();
            (xy, words.join(" "))
        } else {
            let words: Vec<String> = (0..rng.random_range(4..9))
                .map(|_| {
                    if rng.random_range(0.0..1.0) < 0.5 {
                        COMMON_VOCAB[rng.random_range(0..COMMON_VOCAB.len())].to_owned()
                    } else {
                        format!("topic{}", vocab_tail.sample(&mut rng))
                    }
                })
                .collect();
            (np, words.join(" "))
        };

        records.push(StRecord {
            point: StPoint::new(xy.x(), xy.y(), t),
            body: Value::object([
                ("user".into(), Value::from(format!("user_{user}"))),
                ("text".into(), Value::from(text)),
            ]),
        });
    }
    records
}

/// A time-ordered tweet feed delivered in arrival batches — the live
/// Twitter-firehose stand-in for streaming-ingestion scenarios.
///
/// [`generate`] hands back the whole timeline at once, which is the right
/// shape for bulk-loading a frozen index but the wrong one for exercising
/// the LSM-style ingest tier: a live feed arrives incrementally, and the
/// index must absorb each batch *while* open sampling sessions keep
/// drawing. `TweetStream` replays the exact same deterministic timeline
/// (same `TweetConfig` ⇒ byte-identical records) as a sequence of
/// contiguous, time-ordered batches, so a streaming run and a bulk run
/// over the same config see the same data — only the arrival schedule
/// differs.
#[derive(Debug)]
pub struct TweetStream {
    feed: std::vec::IntoIter<StRecord>,
    batch: usize,
}

impl TweetStream {
    /// Opens the feed: generates the full timeline for `cfg` and serves it
    /// `batch` tweets at a time (the final batch may be shorter).
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn new(cfg: &TweetConfig, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        TweetStream {
            feed: generate(cfg).into_iter(),
            batch,
        }
    }

    /// Tweets not yet delivered.
    pub fn remaining(&self) -> usize {
        self.feed.len()
    }
}

impl Iterator for TweetStream {
    type Item = Vec<StRecord>;

    fn next(&mut self) -> Option<Vec<StRecord>> {
        let take = self.batch.min(self.feed.len());
        if take == 0 {
            return None;
        }
        Some(self.feed.by_ref().take(take).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = TweetConfig {
            tweets: 500,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), 500);
        assert_eq!(a[100].point.t, b[100].point.t);
        assert_eq!(a[100].body, b[100].body);
    }

    #[test]
    fn times_are_sorted_and_in_range() {
        let cfg = TweetConfig {
            tweets: 1000,
            ..Default::default()
        };
        let recs = generate(&cfg);
        for pair in recs.windows(2) {
            assert!(pair[0].point.t <= pair[1].point.t);
        }
        assert!(recs.iter().all(|r| cfg.time.contains(r.point.t)));
    }

    #[test]
    fn anomaly_tweets_cluster_in_atlanta_with_storm_vocab() {
        let cfg = TweetConfig {
            tweets: 20_000,
            ..Default::default()
        };
        let recs = generate(&cfg);
        let window = atlanta_snow_window();
        let atlanta = Rect2::from_corners(Point2::xy(-84.6, 33.5), Point2::xy(-84.2, 34.0));
        let storm_tweets: Vec<&StRecord> = recs
            .iter()
            .filter(|r| window.contains(r.point.t) && atlanta.contains_point(&r.point.xy))
            .collect();
        assert!(
            storm_tweets.len() > 100,
            "anomaly produced only {} tweets",
            storm_tweets.len()
        );
        let snowy = storm_tweets
            .iter()
            .filter(|r| {
                r.body
                    .get("text")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .contains("snow")
            })
            .count();
        assert!(snowy * 2 > storm_tweets.len() / 2, "storm vocab missing");
    }

    #[test]
    fn no_anomaly_when_disabled() {
        let cfg = TweetConfig {
            tweets: 10_000,
            with_anomaly: false,
            ..Default::default()
        };
        let recs = generate(&cfg);
        let window = atlanta_snow_window();
        let atlanta = Rect2::from_corners(Point2::xy(-84.6, 33.5), Point2::xy(-84.2, 34.0));
        let in_atl = recs
            .iter()
            .filter(|r| window.contains(r.point.t) && atlanta.contains_point(&r.point.xy))
            .count();
        assert!(in_atl < 50, "unexpected Atlanta cluster: {in_atl}");
    }

    #[test]
    fn stream_batches_reassemble_the_bulk_feed() {
        let cfg = TweetConfig {
            tweets: 1_003,
            ..Default::default()
        };
        let bulk = generate(&cfg);
        let mut stream = TweetStream::new(&cfg, 100);
        assert_eq!(stream.remaining(), 1_003);
        let mut streamed = Vec::new();
        let mut sizes = Vec::new();
        for batch in stream.by_ref() {
            sizes.push(batch.len());
            streamed.extend(batch);
        }
        assert_eq!(stream.remaining(), 0);
        assert_eq!(sizes.len(), 11);
        assert!(sizes[..10].iter().all(|&s| s == 100));
        assert_eq!(sizes[10], 3);
        assert_eq!(streamed.len(), bulk.len());
        for (a, b) in streamed.iter().zip(&bulk) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.body, b.body);
        }
    }

    #[test]
    fn users_have_coherent_trajectories() {
        // Consecutive tweets of one user (ignoring anomaly relocations) are
        // close: a random-walk, not a teleport.
        let cfg = TweetConfig {
            users: 5,
            tweets: 2000,
            with_anomaly: false,
            ..Default::default()
        };
        let recs = generate(&cfg);
        let mut last: std::collections::HashMap<String, Point2> = Default::default();
        let mut max_step = 0.0f64;
        for r in &recs {
            let user = r.body.get("user").unwrap().as_str().unwrap().to_owned();
            if let Some(prev) = last.get(&user) {
                max_step = max_step.max(prev.dist(&r.point.xy));
            }
            last.insert(user, r.point.xy);
        }
        assert!(max_step < 1.0, "teleporting user: step {max_step}");
    }
}
