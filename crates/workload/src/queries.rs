//! Query-workload generation: rectangles with a target selectivity.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use storm_geo::{Point2, Rect2};
use storm_rtree::Item;

/// Finds a square query rectangle containing approximately
/// `target_fraction · n` of the points (within ±25%), centered on a random
/// data point. Returns the rectangle and its exact count.
///
/// Uses exponential growth + bisection on the half-width; each probe is a
/// linear scan, so this is for experiment setup, not the hot path.
pub fn rect_with_selectivity(
    items: &[Item<2>],
    target_fraction: f64,
    seed: u64,
) -> Option<(Rect2, usize)> {
    if items.is_empty() || target_fraction <= 0.0 {
        return None;
    }
    let target = ((items.len() as f64 * target_fraction) as usize).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let center = items[rng.random_range(0..items.len())].point;

    let count_at = |half: f64| -> usize {
        let rect = square(center, half);
        items
            .iter()
            .filter(|it| rect.contains_point(&it.point))
            .count()
    };

    // Exponential search for an upper bound.
    let mut lo = 1e-9;
    let mut hi = 1e-3;
    let mut guard = 0;
    while count_at(hi) < target {
        hi *= 2.0;
        guard += 1;
        if guard > 80 {
            // Even the whole plane does not reach the target.
            let rect = square(center, hi);
            return Some((rect, count_at(hi)));
        }
    }
    // Bisection.
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if count_at(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let rect = square(center, hi);
    let q = count_at(hi);
    Some((rect, q))
}

fn square(center: Point2, half: f64) -> Rect2 {
    Rect2::from_corners(
        Point2::xy(center.x() - half, center.y() - half),
        Point2::xy(center.x() + half, center.y() + half),
    )
}

/// `count` random rectangles with extents up to `max_extent`, anchored at
/// data points (so they are rarely empty).
pub fn random_rects(items: &[Item<2>], count: usize, max_extent: f64, seed: u64) -> Vec<Rect2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let anchor = if items.is_empty() {
                Point2::xy(0.0, 0.0)
            } else {
                items[rng.random_range(0..items.len())].point
            };
            let w = rng.random_range(0.0..max_extent);
            let h = rng.random_range(0.0..max_extent);
            Rect2::from_corners(
                Point2::xy(anchor.x() - w / 2.0, anchor.y() - h / 2.0),
                Point2::xy(anchor.x() + w / 2.0, anchor.y() + h / 2.0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::uniform;

    #[test]
    fn hits_the_target_selectivity() {
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(1000.0, 1000.0));
        let items = uniform(50_000, &bounds, 1);
        for frac in [0.01, 0.1, 0.5] {
            let (rect, q) = rect_with_selectivity(&items, frac, 7).unwrap();
            let got = q as f64 / items.len() as f64;
            assert!(
                (got / frac - 1.0).abs() < 0.3,
                "target {frac}, got {got} ({q} points, rect {rect})"
            );
        }
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(rect_with_selectivity(&[], 0.1, 1).is_none());
        let items = uniform(
            10,
            &Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(1.0, 1.0)),
            2,
        );
        assert!(rect_with_selectivity(&items, 0.0, 1).is_none());
    }

    #[test]
    fn full_selectivity_covers_everything() {
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(10.0, 10.0));
        let items = uniform(1000, &bounds, 3);
        let (_, q) = rect_with_selectivity(&items, 1.0, 5).unwrap();
        assert!(q as f64 >= 0.75 * items.len() as f64);
    }

    #[test]
    fn random_rects_are_anchored() {
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(100.0, 100.0));
        let items = uniform(1000, &bounds, 4);
        let rects = random_rects(&items, 20, 10.0, 9);
        assert_eq!(rects.len(), 20);
        let nonempty = rects
            .iter()
            .filter(|r| items.iter().any(|it| r.contains_point(&it.point)))
            .count();
        assert!(nonempty >= 18);
    }
}
