//! Per-pass fixtures for storm-analyzer: each pass gets one known-bad
//! fixture proving it fires (with exact diagnostic id and span) and one
//! known-clean fixture proving it stays quiet, plus a whole-workspace run
//! mirroring `whole_workspace_is_lint_clean`.

use std::path::Path;

use xtask::analyze::{analyze_sources, apply_baseline, parse_baseline, render_baseline};
use xtask::Diagnostic;

/// Loads a fixture from `tests/fixtures/` and analyzes it under a synthetic
/// in-scope workspace path (the passes scope by path prefix, so the fixture
/// must pretend to live in a real crate).
fn analyze_fixture(fixture: &str, as_path: &str) -> Vec<Diagnostic> {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src = std::fs::read_to_string(&disk)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", disk.display()));
    analyze_sources(&[(as_path.to_string(), src)])
}

// ---------------------------------------------------------------- A1

#[test]
fn a1_fires_on_conflicting_lock_order() {
    let diags = analyze_fixture("a1_bad.rs", "crates/core/src/a1_bad.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    // Anchored at the second acquisition of the first conflicting pair:
    // `data.lock()` on line 6, column of the `lock` token.
    assert_eq!(
        (d.rule, d.path.as_str(), d.line, d.col),
        ("A1", "crates/core/src/a1_bad.rs", 6, 19)
    );
    assert!(
        d.message.contains("lock-order cycle between {data, meta}"),
        "{}",
        d.message
    );
    assert!(d.message.contains("`meta_then_data`"), "{}", d.message);
}

#[test]
fn a1_quiet_on_consistent_lock_order() {
    let diags = analyze_fixture("a1_clean.rs", "crates/core/src/a1_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A2

#[test]
fn a2_fires_on_hash_iteration_in_the_output_cone() {
    let diags = analyze_fixture("a2_bad.rs", "crates/estimators/src/a2_bad.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    // `self.counts.iter()` on line 17, column of the `iter` token.
    assert_eq!(
        (d.rule, d.path.as_str(), d.line, d.col),
        ("A2", "crates/estimators/src/a2_bad.rs", 17, 35)
    );
    assert!(d.message.contains("`counts` (iter)"), "{}", d.message);
    // The diagnostic names both the tainted helper and the public API
    // function whose callers observe the nondeterminism.
    assert!(d.message.contains("`Totals::sum_groups`"), "{}", d.message);
    assert!(d.message.contains("`Totals::grand_total`"), "{}", d.message);
}

#[test]
fn a2_quiet_on_point_lookups() {
    let diags = analyze_fixture("a2_clean.rs", "crates/estimators/src/a2_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn a2_quiet_outside_the_output_cone() {
    // The same tainted code, analyzed under a path A2 does not scope to
    // (xtask itself): scoping, not luck, is what keeps the pass quiet.
    let diags = analyze_fixture("a2_bad.rs", "crates/xtask/src/a2_bad.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A3

#[test]
fn a3_fires_on_unconsumed_variant_and_unguarded_fill() {
    let diags = analyze_fixture("a3_bad.rs", "crates/engine/src/a3_bad.rs");
    assert_eq!(diags.len(), 2, "{diags:?}");
    // Sorted by line: the enum declaration first, the Fill send second.
    let unconsumed = &diags[0];
    assert_eq!(
        (
            unconsumed.rule,
            unconsumed.path.as_str(),
            unconsumed.line,
            unconsumed.col
        ),
        ("A3", "crates/engine/src/a3_bad.rs", 4, 1)
    );
    assert!(
        unconsumed
            .message
            .contains("`ShardCmd::Drain` is consumed by no match arm"),
        "{}",
        unconsumed.message
    );
    let unguarded = &diags[1];
    // `ShardCmd::Fill` on line 12, column of the `Fill` token.
    assert_eq!(
        (
            unguarded.rule,
            unguarded.path.as_str(),
            unguarded.line,
            unguarded.col
        ),
        ("A3", "crates/engine/src/a3_bad.rs", 12, 31)
    );
    assert!(
        unguarded
            .message
            .contains("`ShardCmd::Fill` sent from `scatter`"),
        "{}",
        unguarded.message
    );
}

#[test]
fn a3_quiet_on_fully_wired_protocol() {
    let diags = analyze_fixture("a3_clean.rs", "crates/engine/src/a3_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A4

#[test]
fn a4_fires_on_loop_allocation_in_the_sampling_cone() {
    let diags = analyze_fixture("a4_bad.rs", "crates/core/src/a4_bad.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    // `vec![0u8; 16]` on line 19, column of the `vec` token — inside
    // `fill_one`, reached from the `next_batch` root through the graph.
    assert_eq!(
        (d.rule, d.path.as_str(), d.line, d.col),
        ("A4", "crates/core/src/a4_bad.rs", 19, 19)
    );
    assert!(d.message.contains("allocation `vec!`"), "{}", d.message);
    assert!(d.message.contains("loop depth 1"), "{}", d.message);
    assert!(d.message.contains("`fill_one`"), "{}", d.message);
}

#[test]
fn a4_quiet_when_the_buffer_is_hoisted() {
    let diags = analyze_fixture("a4_clean.rs", "crates/core/src/a4_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn a4_quiet_outside_the_scoped_crates() {
    // The same hot-loop allocation, analyzed under a path A4 does not
    // scope to: scoping, not luck, keeps the pass quiet.
    let diags = analyze_fixture("a4_bad.rs", "crates/xtask/src/a4_bad.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A5

#[test]
fn a5_fires_on_per_item_send_with_batched_variant_in_scope() {
    let diags = analyze_fixture("a5_bad.rs", "crates/store/src/a5_bad.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    // `tx.send(Reply::Item(it))` on line 11, column of the `send` token.
    assert_eq!(
        (d.rule, d.path.as_str(), d.line, d.col),
        ("A5", "crates/store/src/a5_bad.rs", 11, 12)
    );
    assert!(d.message.contains("per-item `.send(…)`"), "{}", d.message);
    assert!(d.message.contains("`stream_items`"), "{}", d.message);
    // The diagnostic names the batched alternative it found in scope.
    assert!(d.message.contains("`Reply::Batch`"), "{}", d.message);
}

#[test]
fn a5_quiet_when_the_loop_sends_the_batched_variant() {
    let diags = analyze_fixture("a5_clean.rs", "crates/store/src/a5_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn a5_quiet_outside_the_channel_io_scope() {
    let diags = analyze_fixture("a5_bad.rs", "crates/engine/src/a5_bad.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A6

#[test]
fn a6_fires_on_send_while_guard_held() {
    let diags = analyze_fixture("a6_bad.rs", "crates/core/src/a6_bad.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    // `tx.send(v)` on line 7, column of the `send` token, inside the
    // `guard = m.lock()` held region opened on line 5.
    assert_eq!(
        (d.rule, d.path.as_str(), d.line, d.col),
        ("A6", "crates/core/src/a6_bad.rs", 7, 12)
    );
    assert!(d.message.contains("blocking `.send(…)`"), "{}", d.message);
    assert!(d.message.contains("`flush`"), "{}", d.message);
    assert!(
        d.message.contains("`m` guard (acquired line 5)"),
        "{}",
        d.message
    );
}

#[test]
fn a6_quiet_when_guard_dropped_before_blocking() {
    let diags = analyze_fixture("a6_clean.rs", "crates/core/src/a6_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A7

#[test]
fn a7_fires_lexically_and_one_hop_into_the_spawn_entry() {
    let diags = analyze_fixture("a7_bad.rs", "crates/core/src/a7_bad.rs");
    assert_eq!(diags.len(), 2, "{diags:?}");
    // Sorted by line: the lexical spawn-closure site first, the one-hop
    // spawn-entry site second.
    let lexical = &diags[0];
    // `xs[0]` on line 7, column of the `[` token.
    assert_eq!(
        (
            lexical.rule,
            lexical.path.as_str(),
            lexical.line,
            lexical.col
        ),
        ("A7", "crates/core/src/a7_bad.rs", 7, 23)
    );
    assert!(
        lexical
            .message
            .contains("`index` in the spawn closure of `launch`"),
        "{}",
        lexical.message
    );
    let one_hop = &diags[1];
    // `xs[i]` on line 16 inside `run_worker`, the fn the closure calls.
    assert_eq!(
        (
            one_hop.rule,
            one_hop.path.as_str(),
            one_hop.line,
            one_hop.col
        ),
        ("A7", "crates/core/src/a7_bad.rs", 16, 20)
    );
    assert!(
        one_hop
            .message
            .contains("`index` on the worker-thread path through `run_worker`"),
        "{}",
        one_hop.message
    );
}

#[test]
fn a7_quiet_when_catch_unwind_dominates() {
    let diags = analyze_fixture("a7_clean.rs", "crates/core/src/a7_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A9

#[test]
fn a9_fires_on_per_session_alloc_in_tick_loop() {
    let diags = analyze_fixture("a9_bad.rs", "crates/server/src/a9_bad.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    // `vec![0u64; 16]` on line 19, column of the `vec` token — inside
    // `tick`, the scheduler's per-tick driver rooting the A9 cone.
    assert_eq!(
        (d.rule, d.path.as_str(), d.line, d.col),
        ("A9", "crates/server/src/a9_bad.rs", 19, 25)
    );
    assert!(d.message.contains("allocation `vec!`"), "{}", d.message);
    assert!(d.message.contains("loop depth 1"), "{}", d.message);
    assert!(d.message.contains("per-session cost"), "{}", d.message);
}

#[test]
fn a9_quiet_when_scratch_is_hoisted() {
    let diags = analyze_fixture("a9_clean.rs", "crates/server/src/a9_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn a9_quiet_outside_the_serving_layer() {
    // The same tick-loop allocation, analyzed under a path A9 does not
    // scope to: scoping, not luck, keeps the pass quiet (and no other
    // pass roots at `run`/`tick`, so the whole run is silent).
    let diags = analyze_fixture("a9_bad.rs", "crates/core/src/a9_bad.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A10

#[test]
fn a10_fires_on_half_synchronized_atomic_pairs() {
    let diags = analyze_fixture("a10_bad.rs", "crates/core/src/a10_bad.rs");
    assert_eq!(diags.len(), 2, "{diags:?}");
    // Sorted by line: the Relaxed guard load first, the Relaxed publish
    // store second — each anchored at the method-name token.
    let guard = &diags[0];
    assert_eq!(
        (guard.rule, guard.path.as_str(), guard.line, guard.col),
        ("A10", "crates/core/src/a10_bad.rs", 16, 18)
    );
    assert!(
        guard.message.contains("guard-without-Acquire"),
        "{}",
        guard.message
    );
    assert!(
        guard.message.contains("`Buf::self.len`"),
        "{}",
        guard.message
    );
    let publish = &diags[1];
    assert_eq!(
        (
            publish.rule,
            publish.path.as_str(),
            publish.line,
            publish.col
        ),
        ("A10", "crates/core/src/a10_bad.rs", 20, 18)
    );
    assert!(
        publish.message.contains("publish-without-Release"),
        "{}",
        publish.message
    );
    assert!(
        publish.message.contains("`Buf::self.seq`"),
        "{}",
        publish.message
    );
}

#[test]
fn a10_quiet_on_paired_and_pure_relaxed_groups() {
    let diags = analyze_fixture("a10_clean.rs", "crates/core/src/a10_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn a10_quiet_outside_the_shared_atomics_scope() {
    // The same half-synchronized pairs, analyzed under a path A10 does not
    // scope to: scoping, not luck, keeps the pass quiet.
    let diags = analyze_fixture("a10_bad.rs", "crates/xtask/src/a10_bad.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A11

#[test]
fn a11_fires_on_publish_under_read_lock_and_loop_repin() {
    let diags = analyze_fixture("a11_bad.rs", "crates/core/src/a11_bad.rs");
    assert_eq!(diags.len(), 2, "{diags:?}");
    // Sorted by line: the publish-in-closure site first, the loop re-pin
    // second.
    let publish = &diags[0];
    assert_eq!(
        (
            publish.rule,
            publish.path.as_str(),
            publish.line,
            publish.col
        ),
        ("A11", "crates/core/src/a11_bad.rs", 14, 31)
    );
    assert!(
        publish.message.contains("publish-class `try_publish`"),
        "{}",
        publish.message
    );
    assert!(
        publish.message.contains("opened at line 12"),
        "{}",
        publish.message
    );
    let repin = &diags[1];
    assert_eq!(
        (repin.rule, repin.path.as_str(), repin.line, repin.col),
        ("A11", "crates/core/src/a11_bad.rs", 28, 34)
    );
    assert!(
        repin.message.contains("epoch re-read: `.pin(…)`"),
        "{}",
        repin.message
    );
    assert!(
        repin.message.contains("`Sampler::draw`"),
        "{}",
        repin.message
    );
}

#[test]
fn a11_quiet_on_publish_after_closure_and_hoisted_pin() {
    let diags = analyze_fixture("a11_clean.rs", "crates/core/src/a11_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A12

#[test]
fn a12_fires_on_untimely_swap_and_fill_after_close() {
    let diags = analyze_fixture("a12_bad.rs", "crates/server/src/a12_bad.rs");
    assert_eq!(diags.len(), 3, "{diags:?}");
    // Sorted by line: the rogue Swap send, the Fill after Close, the
    // rogue install_epoch call.
    let swap = &diags[0];
    assert_eq!(
        (swap.rule, swap.path.as_str(), swap.line, swap.col),
        ("A12", "crates/server/src/a12_bad.rs", 25, 28)
    );
    assert!(
        swap.message
            .contains("`Cmd::Swap` sent from `Lane::hot_swap`"),
        "{}",
        swap.message
    );
    let fill = &diags[1];
    assert_eq!(
        (fill.rule, fill.path.as_str(), fill.line, fill.col),
        ("A12", "crates/server/src/a12_bad.rs", 30, 28)
    );
    assert!(
        fill.message
            .contains("`Cmd::Fill` sent after a Close-class op"),
        "{}",
        fill.message
    );
    assert!(
        fill.message.contains("`Lane::teardown`"),
        "{}",
        fill.message
    );
    let install = &diags[2];
    assert_eq!(
        (
            install.rule,
            install.path.as_str(),
            install.line,
            install.col
        ),
        ("A12", "crates/server/src/a12_bad.rs", 41, 22)
    );
    assert!(
        install
            .message
            .contains("`install_epoch` called from `Rebuilder::rebuild`"),
        "{}",
        install.message
    );
}

#[test]
fn a12_quiet_on_disciplined_protocol_paths() {
    // Fill-then-close, close-then-fill across a loop back edge (legal
    // per-iteration discipline), and Swap from install_epoch only.
    let diags = analyze_fixture("a12_clean.rs", "crates/server/src/a12_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn a12_quiet_outside_the_protocol_scope() {
    let diags = analyze_fixture("a12_bad.rs", "crates/core/src/a12_bad.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A13

#[test]
fn a13_fires_on_blocked_lock_tick_recv_and_unwrap() {
    let diags = analyze_fixture("a13_bad.rs", "crates/server/src/a13_bad.rs");
    assert_eq!(diags.len(), 3, "{diags:?}");
    // Sorted by line: send under guard, timeout-less tick recv, unwrapped
    // channel result.
    let under_lock = &diags[0];
    assert_eq!(
        (
            under_lock.rule,
            under_lock.path.as_str(),
            under_lock.line,
            under_lock.col
        ),
        ("A13", "crates/server/src/a13_bad.rs", 14, 17)
    );
    assert!(
        under_lock.message.contains("blocking `.send(…)`"),
        "{}",
        under_lock.message
    );
    let tick_recv = &diags[1];
    assert_eq!(
        (
            tick_recv.rule,
            tick_recv.path.as_str(),
            tick_recv.line,
            tick_recv.col
        ),
        ("A13", "crates/server/src/a13_bad.rs", 19, 37)
    );
    assert!(
        tick_recv.message.contains("timeout-less `.recv()`"),
        "{}",
        tick_recv.message
    );
    assert!(
        tick_recv.message.contains("`Hub::run`"),
        "{}",
        tick_recv.message
    );
    let unwrapped = &diags[2];
    assert_eq!(
        (
            unwrapped.rule,
            unwrapped.path.as_str(),
            unwrapped.line,
            unwrapped.col
        ),
        ("A13", "crates/server/src/a13_bad.rs", 25, 25)
    );
    assert!(
        unwrapped.message.contains("`.send(…).unwrap(…)`"),
        "{}",
        unwrapped.message
    );
}

#[test]
fn a13_quiet_on_bounded_and_handled_channel_ops() {
    let diags = analyze_fixture("a13_clean.rs", "crates/server/src/a13_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- baseline

#[test]
fn baseline_suppresses_fixture_findings_end_to_end() {
    let diags = analyze_fixture("a3_bad.rs", "crates/engine/src/a3_bad.rs");
    assert!(!diags.is_empty());
    let baseline = parse_baseline(&render_baseline(&diags));
    let (new, accepted, stale) = apply_baseline(diags, &baseline);
    assert!(new.is_empty(), "{new:?}");
    assert_eq!(accepted.len(), 2);
    assert!(stale.is_empty(), "{stale:?}");
}

// ---------------------------------------------------------------- workspace

#[test]
fn whole_workspace_is_analyze_clean() {
    // Mirrors CI's `analyze --deny-new`: every finding must be fixed,
    // justified with an inline allow directive, or accepted into the
    // shipped baseline (each baseline block carries a written rationale) —
    // and the baseline must hold no stale entries for findings already
    // fixed.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf();
    let diags = xtask::analyze::analyze_workspace(&root).expect("workspace read");
    let baseline_text = std::fs::read_to_string(root.join("crates/xtask/analyze.baseline"))
        .expect("baseline file ships with the repo");
    let (new, _accepted, stale) = apply_baseline(diags, &parse_baseline(&baseline_text));
    assert!(
        new.is_empty(),
        "analyzer findings not in the shipped baseline:\n{}",
        new.iter()
            .map(xtask::analyze::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        stale.is_empty(),
        "stale baseline entries (finding fixed, entry not removed):\n{}",
        stale.join("\n")
    );
}
