//! Per-pass fixtures for storm-analyzer: each pass gets one known-bad
//! fixture proving it fires (with exact diagnostic id and span) and one
//! known-clean fixture proving it stays quiet, plus a whole-workspace run
//! mirroring `whole_workspace_is_lint_clean`.

use std::path::Path;

use xtask::analyze::{analyze_sources, apply_baseline, parse_baseline, render_baseline};
use xtask::Diagnostic;

/// Loads a fixture from `tests/fixtures/` and analyzes it under a synthetic
/// in-scope workspace path (the passes scope by path prefix, so the fixture
/// must pretend to live in a real crate).
fn analyze_fixture(fixture: &str, as_path: &str) -> Vec<Diagnostic> {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src = std::fs::read_to_string(&disk)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", disk.display()));
    analyze_sources(&[(as_path.to_string(), src)])
}

// ---------------------------------------------------------------- A1

#[test]
fn a1_fires_on_conflicting_lock_order() {
    let diags = analyze_fixture("a1_bad.rs", "crates/core/src/a1_bad.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    // Anchored at the second acquisition of the first conflicting pair:
    // `data.lock()` on line 6, column of the `lock` token.
    assert_eq!(
        (d.rule, d.path.as_str(), d.line, d.col),
        ("A1", "crates/core/src/a1_bad.rs", 6, 19)
    );
    assert!(
        d.message.contains("lock-order cycle between {data, meta}"),
        "{}",
        d.message
    );
    assert!(d.message.contains("`meta_then_data`"), "{}", d.message);
}

#[test]
fn a1_quiet_on_consistent_lock_order() {
    let diags = analyze_fixture("a1_clean.rs", "crates/core/src/a1_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A2

#[test]
fn a2_fires_on_hash_iteration_in_the_output_cone() {
    let diags = analyze_fixture("a2_bad.rs", "crates/estimators/src/a2_bad.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    // `self.counts.iter()` on line 17, column of the `iter` token.
    assert_eq!(
        (d.rule, d.path.as_str(), d.line, d.col),
        ("A2", "crates/estimators/src/a2_bad.rs", 17, 35)
    );
    assert!(d.message.contains("`counts` (iter)"), "{}", d.message);
    // The diagnostic names both the tainted helper and the public API
    // function whose callers observe the nondeterminism.
    assert!(d.message.contains("`Totals::sum_groups`"), "{}", d.message);
    assert!(d.message.contains("`Totals::grand_total`"), "{}", d.message);
}

#[test]
fn a2_quiet_on_point_lookups() {
    let diags = analyze_fixture("a2_clean.rs", "crates/estimators/src/a2_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn a2_quiet_outside_the_output_cone() {
    // The same tainted code, analyzed under a path A2 does not scope to
    // (xtask itself): scoping, not luck, is what keeps the pass quiet.
    let diags = analyze_fixture("a2_bad.rs", "crates/xtask/src/a2_bad.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- A3

#[test]
fn a3_fires_on_unconsumed_variant_and_unguarded_fill() {
    let diags = analyze_fixture("a3_bad.rs", "crates/engine/src/a3_bad.rs");
    assert_eq!(diags.len(), 2, "{diags:?}");
    // Sorted by line: the enum declaration first, the Fill send second.
    let unconsumed = &diags[0];
    assert_eq!(
        (
            unconsumed.rule,
            unconsumed.path.as_str(),
            unconsumed.line,
            unconsumed.col
        ),
        ("A3", "crates/engine/src/a3_bad.rs", 4, 1)
    );
    assert!(
        unconsumed
            .message
            .contains("`ShardCmd::Drain` is consumed by no match arm"),
        "{}",
        unconsumed.message
    );
    let unguarded = &diags[1];
    // `ShardCmd::Fill` on line 12, column of the `Fill` token.
    assert_eq!(
        (
            unguarded.rule,
            unguarded.path.as_str(),
            unguarded.line,
            unguarded.col
        ),
        ("A3", "crates/engine/src/a3_bad.rs", 12, 31)
    );
    assert!(
        unguarded
            .message
            .contains("`ShardCmd::Fill` sent from `scatter`"),
        "{}",
        unguarded.message
    );
}

#[test]
fn a3_quiet_on_fully_wired_protocol() {
    let diags = analyze_fixture("a3_clean.rs", "crates/engine/src/a3_clean.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------- baseline

#[test]
fn baseline_suppresses_fixture_findings_end_to_end() {
    let diags = analyze_fixture("a3_bad.rs", "crates/engine/src/a3_bad.rs");
    assert!(!diags.is_empty());
    let baseline = parse_baseline(&render_baseline(&diags));
    let (new, accepted, stale) = apply_baseline(diags, &baseline);
    assert!(new.is_empty(), "{new:?}");
    assert_eq!(accepted.len(), 2);
    assert!(stale.is_empty(), "{stale:?}");
}

// ---------------------------------------------------------------- workspace

#[test]
fn whole_workspace_is_analyze_clean() {
    // The shipped baseline is empty (header only): the workspace must
    // carry no findings at all, matching what CI's `analyze` job enforces.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf();
    let diags = xtask::analyze::analyze_workspace(&root).expect("workspace read");
    assert!(
        diags.is_empty(),
        "unexpected analyzer findings:\n{}",
        diags
            .iter()
            .map(xtask::analyze::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let baseline_text = std::fs::read_to_string(root.join("crates/xtask/analyze.baseline"))
        .expect("baseline file ships with the repo");
    assert!(
        parse_baseline(&baseline_text).is_empty(),
        "shipped baseline should hold no accepted findings"
    );
}
