//! Per-rule fixtures for storm-lint: each rule gets one firing case and one
//! allowlisted case, plus coverage of scoping, `#[cfg(test)]` exemption, and
//! allow-directive hygiene.

use xtask::lint_source;

/// Path inside every rule's scope except R3 (core is R1/R2/R5 territory).
const CORE: &str = "crates/core/src/fixture.rs";
/// Path inside R3's scope.
const EST: &str = "crates/estimators/src/fixture.rs";

fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(path, src).into_iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_fires_on_unwrap_and_expect() {
    let src = "fn f(x: Option<u64>) -> u64 { x.unwrap() }\n\
               fn g(x: Option<u64>) -> u64 { x.expect(\"msg\") }\n";
    let fired = rules_fired(CORE, src);
    assert_eq!(fired, vec!["R1", "R1"]);
}

#[test]
fn r1_reports_precise_position() {
    let src = "fn f(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n";
    let diags = lint_source(CORE, src);
    assert_eq!(diags.len(), 1);
    assert_eq!((diags[0].line, diags[0].col), (2, 7));
    assert_eq!(
        format!("{}", diags[0])[..diags[0].path.len()],
        diags[0].path
    );
}

#[test]
fn r1_allowlisted_with_justification_is_clean() {
    let src = "fn f(x: Option<u64>) -> u64 {\n\
               \x20   // storm-lint: allow(R1): fixture proves directive works\n\
               \x20   x.unwrap()\n}\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r1_same_line_allow_works_too() {
    let src = "fn f(x: Option<u64>) -> u64 { x.unwrap() } \
               // storm-lint: allow(no-unwrap): name form accepted\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r1_exempt_inside_cfg_test() {
    let src = "fn lib() {}\n\
               #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r1_exempt_inside_nested_cfg_test_module() {
    // A `#[cfg(test)] mod tests` nested inside another module must be
    // exempt exactly like a top-level one.
    let src = "pub mod inner {\n\
               \x20   pub fn lib() {}\n\
               \x20   #[cfg(test)]\n\
               \x20   mod tests {\n\
               \x20       fn t() { Some(1).unwrap(); }\n\
               \x20   }\n\
               }\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r1_exempt_under_inner_cfg_test_attribute() {
    // Modules often gate themselves with an *inner* attribute. The exempt
    // region is the enclosing block, so code after the module still lints.
    let src = "mod tests {\n\
               \x20   #![cfg(test)]\n\
               \x20   fn t() { Some(1).unwrap(); }\n\
               }\n\
               fn lib(x: Option<u64>) -> u64 { x.unwrap() }\n";
    let diags = lint_source(CORE, src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].rule, diags[0].line), ("R1", 5));
}

#[test]
fn r1_exempt_everywhere_under_file_level_cfg_test() {
    // `#![cfg(test)]` at file scope (a test-only module file) exempts the
    // whole file.
    let src = "#![cfg(test)]\n\nfn helper(x: Option<u64>) -> u64 { x.unwrap() }\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r1_not_fooled_by_strings_or_comments() {
    let src = "// x.unwrap() in a comment\n\
               fn f() -> &'static str { \"x.unwrap()\" }\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r1_out_of_scope_crate_is_clean() {
    // storm-geo is not on R1's panic-free list.
    let src = "fn f(x: Option<u64>) -> u64 { x.unwrap() }\n";
    assert!(lint_source("crates/geo/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_fires_on_ambient_entropy() {
    let src = "fn f() {\n    let mut r = rand::thread_rng();\n\
               \x20   let s = StdRng::from_entropy();\n\
               \x20   let x: u64 = rand::random();\n}\n";
    let fired = rules_fired(CORE, src);
    assert_eq!(fired, vec!["R2", "R2", "R2"]);
}

#[test]
fn r2_applies_even_in_tests() {
    // Reproducibility matters most in tests: no cfg(test) exemption.
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { let r = rand::thread_rng(); }\n}\n";
    assert_eq!(rules_fired(CORE, src), vec!["R2"]);
}

#[test]
fn r2_allowlisted() {
    let src = "// storm-lint: allow(R2): fixture for the directive path\n\
               fn f() { let r = rand::thread_rng(); }\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r2_seeded_rng_is_clean() {
    let src = "fn f() { let r = StdRng::seed_from_u64(42); }\n";
    assert!(lint_source(CORE, src).is_empty());
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_fires_on_float_literal_comparison() {
    let src = "fn f(x: f64) -> bool { x == 0.0 }\n\
               fn g(x: f64) -> bool { 1.5 != x }\n\
               fn h(x: f64) -> bool { x == -1.0 }\n";
    assert_eq!(rules_fired(EST, src), vec!["R3", "R3", "R3"]);
}

#[test]
fn r3_fires_on_cast_and_constant_comparisons() {
    let src = "fn f(n: u32, d: f64) -> bool { n as f64 == d }\n\
               fn g(x: f64) -> bool { x == f64::INFINITY }\n";
    assert_eq!(rules_fired(EST, src), vec!["R3", "R3"]);
}

#[test]
fn r3_integer_comparison_is_clean() {
    let src = "fn f(x: u64) -> bool { x == 0 }\n";
    assert!(lint_source(EST, src).is_empty());
}

#[test]
fn r3_allowlisted() {
    let src = "fn f(x: f64) -> bool {\n\
               \x20   // storm-lint: allow(R3): exact sentinel, never computed\n\
               \x20   x == 0.0\n}\n";
    assert!(lint_source(EST, src).is_empty());
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_fires_on_std_sync_locks() {
    let src = "use std::sync::Mutex;\nfn f() { let m: std::sync::RwLock<u8>; }\n";
    assert_eq!(rules_fired(CORE, src), vec!["R4", "R4"]);
}

#[test]
fn r4_fires_inside_brace_groups() {
    let src = "use std::sync::{Arc, Mutex};\n";
    assert_eq!(rules_fired(CORE, src), vec!["R4"]);
}

#[test]
fn r4_arc_and_atomics_are_clean() {
    let src = "use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n\
               use std::sync::mpsc;\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r4_parking_lot_is_clean() {
    let src = "use parking_lot::{Mutex, RwLock};\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r4_allowlisted() {
    let src = "// storm-lint: allow(R4): fixture — e.g. Condvar interop needs std\n\
               use std::sync::Mutex;\n";
    assert!(lint_source(CORE, src).is_empty());
}

// ---------------------------------------------------------------- R5

#[test]
fn r5_fires_on_narrowing_casts() {
    let src = "fn f(n: usize) -> u32 { n as u32 }\nfn g(n: u64) -> i16 { n as i16 }\n";
    assert_eq!(rules_fired(CORE, src), vec!["R5", "R5"]);
}

#[test]
fn r5_widening_and_float_casts_are_clean() {
    let src = "fn f(n: u32) -> u64 { n as u64 }\n\
               fn g(n: u32) -> f64 { n as f64 }\n\
               fn h(n: u32) -> usize { n as usize }\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r5_allowlisted() {
    let src = "fn f(n: usize) -> u32 {\n\
               \x20   // storm-lint: allow(R5): n is a fanout index, <= 64 by construction\n\
               \x20   n as u32\n}\n";
    assert!(lint_source(CORE, src).is_empty());
}

#[test]
fn r5_out_of_scope_for_store() {
    let src = "fn f(n: usize) -> u32 { n as u32 }\n";
    assert!(lint_source("crates/store/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------- R6

#[test]
fn r6_fires_on_bare_join_unwrap_and_expect() {
    // Estimators is outside R1's scope, so the diagnostics isolate R6.
    let src = "fn f(h: std::thread::JoinHandle<()>) { h.join().unwrap() }\n\
               fn g(h: std::thread::JoinHandle<()>) { h.join().expect(\"died\") }\n";
    assert_eq!(rules_fired(EST, src), vec!["R6", "R6"]);
}

#[test]
fn r6_handled_joins_are_clean() {
    let src = "fn f(h: std::thread::JoinHandle<()>) { let _ = h.join(); }\n\
               fn g(h: std::thread::JoinHandle<()>) {\n\
               \x20   if h.join().is_err() { eprintln!(\"worker panicked\"); }\n\
               }\n\
               fn s(parts: &[String]) -> usize { parts.join(\",\").len() }\n";
    assert!(lint_source(EST, src).is_empty());
}

#[test]
fn r6_fires_inside_test_code_too() {
    // A test that bare-joins a worker dies on injected panics — the
    // exemption R1 grants to #[cfg(test)] does not apply here.
    let src = "#[cfg(test)]\nmod tests {\n\
               \x20   fn f(h: std::thread::JoinHandle<()>) { h.join().unwrap() }\n}\n";
    assert_eq!(rules_fired(EST, src), vec!["R6"]);
}

#[test]
fn r6_allowlisted_for_audited_sites() {
    let src = "fn f(h: std::thread::JoinHandle<()>) {\n\
               \x20   // storm-lint: allow(R6): no fault hook installed on this pool\n\
               \x20   h.join().unwrap()\n}\n";
    assert!(lint_source(EST, src).is_empty());
}

// ------------------------------------------------------- allow hygiene

#[test]
fn allow_without_justification_is_flagged() {
    let src = "fn f(x: Option<u64>) -> u64 {\n\
               \x20   // storm-lint: allow(R1)\n\
               \x20   x.unwrap()\n}\n";
    let diags = lint_source(CORE, src);
    // The unwrap itself is suppressed, but the bare allow is flagged.
    assert_eq!(rules_fired(CORE, src), vec!["allow"]);
    assert!(diags[0].message.contains("justification"));
}

#[test]
fn unused_allow_is_flagged() {
    let src = "// storm-lint: allow(R1): nothing here actually unwraps\nfn f() {}\n";
    let diags = lint_source(CORE, src);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("unused"));
}

#[test]
fn unknown_rule_in_allow_is_flagged() {
    let src = "// storm-lint: allow(R9): no such rule\nfn f() {}\n";
    let diags = lint_source(CORE, src);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("unknown rule"));
}

#[test]
fn allow_for_wrong_rule_does_not_suppress() {
    let src = "fn f(x: Option<u64>) -> u64 {\n\
               \x20   // storm-lint: allow(R5): wrong rule on purpose\n\
               \x20   x.unwrap()\n}\n";
    let fired = rules_fired(CORE, src);
    // R1 still fires and the R5 allow is reported unused.
    assert!(fired.contains(&"R1"), "{fired:?}");
    assert!(fired.contains(&"allow"), "{fired:?}");
}

// ------------------------------------------------------- workspace walk

#[test]
fn whole_workspace_is_lint_clean() {
    // The repo must stay clean so `cargo xtask lint` can gate CI. Walks the
    // real sources, same entry point as the binary.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels under the repo root");
    let diags = xtask::lint_workspace(root).expect("workspace walk");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "storm-lint violations:\n{}",
        rendered.join("\n")
    );
}
