//! Regression tests for the constructs that historically broke the
//! hand-rolled lexer or threatened the front-end's brace matching: raw
//! strings (`r"…"`, `r#"…"#`, `br#"…"#`), nested block comments, and raw
//! identifiers (`r#loop`), which were once stripped to bare keyword text.

use std::path::Path;

use xtask::front::extract_source;
use xtask::lexer::lex;

fn fixture(name: &str) -> String {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&disk).unwrap_or_else(|e| panic!("cannot read {}: {e}", disk.display()))
}

/// The fixtures are real Rust modulo the undefined `marker_*` calls: every
/// fn must come out of extraction whole, with exactly its own marker call
/// attributed to it — any brace desync merges, splits, or drops one.
fn assert_markers(fixture_name: &str, expected: &[(&str, &str)]) {
    let src = fixture(fixture_name);
    let facts = extract_source("crates/core/src/fixture.rs", &src);
    let got: Vec<(String, Vec<String>)> = facts
        .fns
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                f.calls
                    .iter()
                    .filter(|c| c.name.starts_with("marker_"))
                    .map(|c| c.name.clone())
                    .collect(),
            )
        })
        .collect();
    let want: Vec<(String, Vec<String>)> = expected
        .iter()
        .map(|(f, m)| ((*f).to_string(), vec![(*m).to_string()]))
        .collect();
    assert_eq!(got, want, "fixture {fixture_name}");
}

#[test]
fn raw_strings_do_not_desync_brace_matching() {
    assert_markers(
        "lexer_raw_strings.rs",
        &[
            ("braces_in_raw_string", "marker_one"),
            ("multi_hash_terminator", "marker_two"),
            ("zero_hash_and_bytes", "marker_three"),
            ("raw_idents_are_names_not_keywords", "marker_four"),
            ("multiline_raw_string_keeps_positions", "marker_five"),
        ],
    );
}

#[test]
fn nested_comments_do_not_desync_brace_matching() {
    assert_markers(
        "lexer_nested_comments.rs",
        &[
            ("nested_comment_with_braces", "marker_one"),
            ("comment_with_stray_quote", "marker_two"),
            ("doc_style_block_comments", "marker_three"),
            ("slash_star_slash_opens_nested", "marker_four"),
            ("comment_between_items", "marker_five"),
            ("after_the_comment_block", "marker_six"),
        ],
    );
}

#[test]
fn raw_string_literals_leave_no_phantom_tokens() {
    let lexed = lex(&fixture("lexer_raw_strings.rs"));
    let idents = lexed.idents();
    // Content of the literals must never surface as identifiers.
    assert!(!idents.contains(&"quote"), "{idents:?}");
    assert!(!idents.contains(&"inside"), "{idents:?}");
    assert!(!idents.contains(&"line"), "{idents:?}");
    // Raw identifiers keep their prefix; the only `fn` idents are the five
    // real keyword uses.
    assert!(idents.contains(&"r#loop"), "{idents:?}");
    assert!(idents.contains(&"r#fn"), "{idents:?}");
    assert_eq!(idents.iter().filter(|i| **i == "fn").count(), 5);
    assert!(!idents.contains(&"loop"), "{idents:?}");
}

#[test]
fn nested_comment_content_is_fully_swallowed() {
    let lexed = lex(&fixture("lexer_nested_comments.rs"));
    let idents = lexed.idents();
    assert!(!idents.contains(&"outer"), "{idents:?}");
    assert!(!idents.contains(&"inner"), "{idents:?}");
    assert!(!idents.contains(&"fake_item"), "{idents:?}");
    // Six real functions — the `fn fake_item` inside the comment is text.
    assert_eq!(idents.iter().filter(|i| **i == "fn").count(), 6);
}

#[test]
fn multiline_raw_string_keeps_line_and_column_tracking() {
    let src = "fn f() {\n    let x = r#\"a\nb } \"\nc\"#; tail_call();\n}\n";
    let lexed = lex(src);
    let tail = lexed
        .tokens
        .iter()
        .find(|t| matches!(&t.kind, xtask::lexer::TokKind::Ident(s) if s == "tail_call"))
        .expect("tail_call token");
    // The literal spans lines 2-4; `tail_call` sits on line 4 after `"#; `.
    assert_eq!((tail.line, tail.col), (4, 6));
}
