//! Known-clean A2 fixture: the estimator consults its `HashMap` only
//! through point lookups; nothing observes iteration order.

use std::collections::HashMap;

pub struct Totals {
    counts: HashMap<u64, f64>,
}

impl Totals {
    pub fn record(&mut self, key: u64, value: f64) {
        *self.counts.entry(key).or_insert(0.0) += value;
    }

    pub fn of(&self, key: u64) -> f64 {
        self.counts.get(&key).copied().unwrap_or(0.0)
    }
}
