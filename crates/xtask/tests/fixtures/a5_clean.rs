//! A5 known-clean fixture: the loop sends the *batched* variant — one
//! message per chunk, not per item — so the pass must stay quiet (telling
//! the batch path to batch would be circular).

pub enum Reply {
    Item(u64),
    Batch(Vec<u64>),
}

pub fn stream_batches(tx: &Sender<Reply>, chunks: &[Vec<u64>]) {
    for c in chunks {
        tx.send(Reply::Batch(c.to_owned())).ok();
    }
}

pub fn send_one(tx: &Sender<Reply>, it: u64) {
    tx.send(Reply::Item(it)).ok();
}

pub fn on_reply(r: Reply) -> usize {
    match r {
        Reply::Item(_) => 1,
        Reply::Batch(items) => items.len(),
    }
}
