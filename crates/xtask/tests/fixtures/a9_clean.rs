//! A9 known-clean fixture: the same tick shape as `a9_bad.rs`, but the
//! per-session batch buffer is hoisted into the scheduler and reused
//! across sessions — the tick loop allocates nothing per session.

pub struct Sched {
    sessions: Vec<u64>,
    scratch: Vec<u64>,
}

impl Sched {
    pub fn run(&mut self) {
        loop {
            self.tick();
            break;
        }
    }

    fn tick(&mut self) {
        for i in 0..self.sessions.len() {
            self.scratch.clear();
            self.scratch.push(self.sessions[i]);
        }
    }
}
