//! A6 known-bad fixture: a channel send inside the held region of a lock
//! guard — every thread contending on `m` stalls while the send blocks.

pub fn flush(m: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let guard = m.lock();
    for &v in guard.iter() {
        tx.send(v).ok();
    }
    drop(guard);
}
