//! Known-bad A3 fixture: `ShardCmd::Drain` is sent but never matched,
//! and the `Fill` send has no timeout-guarded gather below it.

enum ShardCmd {
    Open,
    Fill,
    Drain,
}

fn scatter(tx: &Sender) {
    let _ = tx.send(ShardCmd::Open);
    let _ = tx.send(ShardCmd::Fill);
    let _ = tx.send(ShardCmd::Drain);
}

fn worker(rx: &Receiver) {
    match rx.recv() {
        Ok(ShardCmd::Open) => {}
        Ok(ShardCmd::Fill) => {}
        _ => {}
    }
}
