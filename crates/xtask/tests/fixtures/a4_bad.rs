//! A4 known-bad fixture: a per-item allocation inside a loop of a helper
//! the core sampling API (`next_batch`) reaches through the call graph.

pub struct S;

impl S {
    pub fn next_batch(&mut self, k: usize) -> usize {
        let mut total = 0;
        for _ in 0..k {
            total += fill_one();
        }
        total
    }
}

fn fill_one() -> usize {
    let mut out = 0;
    for i in 0..4 {
        let buf = vec![0u8; 16];
        out += buf.len() + i;
    }
    out
}
