//! A5 known-bad fixture: a per-item channel send in a loop while the
//! protocol enum has a batched variant in the same file.

pub enum Reply {
    Item(u64),
    Batch(Vec<u64>),
}

pub fn stream_items(tx: &Sender<Reply>, items: &[u64]) {
    for &it in items {
        tx.send(Reply::Item(it)).ok();
    }
}

pub fn flush(tx: &Sender<Reply>, buf: Vec<u64>) {
    tx.send(Reply::Batch(buf)).ok();
}

pub fn on_reply(r: Reply) -> usize {
    match r {
        Reply::Item(_) => 1,
        Reply::Batch(items) => items.len(),
    }
}
