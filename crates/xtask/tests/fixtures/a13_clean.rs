//! A13 known-clean fixture: the guard is dropped before the send, the
//! tick-path recv is time-bounded, and channel results are handled.

pub struct Hub {
    m: Mutex<Vec<u64>>,
    tx: Sender<u64>,
    ctrl: Receiver<u64>,
}

impl Hub {
    pub fn flush(&self) {
        let guard = self.m.lock();
        let n = guard.len() as u64;
        drop(guard);
        self.tx.send(n).ok();
    }

    pub fn run(&self) {
        while let Ok(v) = self.ctrl.recv_timeout(Duration::from_millis(5)) {
            let _ = v;
        }
    }

    pub fn announce(&self, v: u64) {
        self.tx.send(v).ok();
    }
}
