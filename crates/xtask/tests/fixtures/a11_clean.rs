//! A11 known-clean fixture: publish runs after the `with_current`
//! closure returns, and the sampler pins once before its draw loop.

pub struct Ingest {
    registry: RunRegistry,
}

impl Ingest {
    pub fn insert(&self, item: u64) {
        let full = self.registry.with_current(|p| p.wants(item));
        if full {
            self.registry.try_publish(item);
        }
    }
}

pub struct Sampler {
    registry: RunRegistry,
}

impl Sampler {
    pub fn draw(&self, k: usize) -> u64 {
        let pinned = self.registry.pin();
        let mut acc = 0;
        for _ in 0..k {
            acc += pinned;
        }
        acc
    }
}
