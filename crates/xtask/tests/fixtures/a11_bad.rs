//! A11 known-bad fixture: a publish-class call inside the `with_current`
//! closure (the write lock waits on this very reader: self-deadlock), and
//! a pin-class re-read inside a sampling-cone loop (`draw` roots the
//! cone).

pub struct Ingest {
    registry: RunRegistry,
}

impl Ingest {
    pub fn insert(&self, item: u64) {
        self.registry.with_current(|p| {
            if p.wants(item) {
                self.registry.try_publish(item);
            }
        });
    }
}

pub struct Sampler {
    registry: RunRegistry,
}

impl Sampler {
    pub fn draw(&self, k: usize) -> u64 {
        let mut acc = 0;
        for _ in 0..k {
            acc += self.registry.pin();
        }
        acc
    }
}
