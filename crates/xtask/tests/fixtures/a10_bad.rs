//! A10 known-bad fixture: two half-synchronized atomic groups — a
//! Relaxed load guarding a Release-published `len`, and a Relaxed store
//! publishing a `seq` that a reader guards with Acquire.

pub struct Buf {
    len: AtomicUsize,
    seq: AtomicU64,
}

impl Buf {
    pub fn push(&self) {
        self.len.store(1, Ordering::Release);
    }

    pub fn peek(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn bump(&self) {
        self.seq.store(1, Ordering::Relaxed);
    }

    pub fn wait(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}
