//! A10 known-clean fixture: the `len` publish/guard pair is fully
//! Release/Acquire, and `hits` is a pure-Relaxed statistics counter —
//! both group shapes the pass accepts.

pub struct Buf {
    len: AtomicUsize,
    hits: AtomicU64,
}

impl Buf {
    pub fn push(&self) {
        self.len.store(1, Ordering::Release);
    }

    pub fn peek(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    pub fn note(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn total(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}
