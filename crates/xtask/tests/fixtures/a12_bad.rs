//! A12 known-bad fixture: a Swap sent outside `install_epoch`, a Fill
//! sent after a Close on the same straight-line path, and
//! `install_epoch` called outside tick-boundary control code. The
//! `pump` consumer keeps every variant wired so A3 (a different
//! property) stays quiet.

pub enum Cmd {
    Open(u64),
    Fill(u64),
    Close(u64),
    Swap(u64),
}

pub struct Lane {
    cmd: Sender<Cmd>,
    reply: Receiver<u64>,
}

impl Lane {
    pub fn open(&self, session: u64) {
        self.cmd.send(Cmd::Open(session)).ok();
    }

    pub fn hot_swap(&self, epoch: u64) {
        self.cmd.send(Cmd::Swap(epoch)).ok();
    }

    pub fn teardown(&self, session: u64) {
        self.cmd.send(Cmd::Close(session)).ok();
        self.cmd.send(Cmd::Fill(session)).ok();
        let _ = self.reply.recv_timeout(Duration::from_millis(5));
    }
}

pub struct Rebuilder {
    cluster: Cluster,
}

impl Rebuilder {
    pub fn rebuild(&self, next: u64) -> u64 {
        self.cluster.install_epoch(next)
    }
}

pub fn pump(rx: &Receiver<Cmd>) {
    while let Ok(cmd) = rx.recv_timeout(Duration::from_millis(5)) {
        match cmd {
            Cmd::Open(_) => {}
            Cmd::Fill(_) => {}
            Cmd::Close(_) => {}
            Cmd::Swap(_) => {}
        }
    }
}
