//! A9 known-bad fixture: a per-session allocation inside the scheduler's
//! tick loop — one fresh buffer per live session per tick, reached from
//! the scheduler thread's `run` entry through the call graph.

pub struct Sched {
    sessions: Vec<u64>,
}

impl Sched {
    pub fn run(&mut self) {
        loop {
            self.tick();
            break;
        }
    }

    fn tick(&mut self) {
        for i in 0..self.sessions.len() {
            let batch = vec![0u64; 16];
            let _ = batch.len() + self.sessions[i] as usize;
        }
    }
}
