//! A12 known-clean fixture: fills precede closes on every path, a Close
//! in one loop iteration followed by a Fill in the next rides the back
//! edge (per-iteration discipline — legal by design), and Swap is issued
//! only by `install_epoch`, called only from `handle_ctrl`.

pub enum Cmd {
    Open(u64),
    Fill(u64),
    Close(u64),
    Swap(u64),
}

pub struct Lane {
    cmd: Sender<Cmd>,
    reply: Receiver<u64>,
}

impl Lane {
    pub fn serve(&self, session: u64) {
        self.cmd.send(Cmd::Open(session)).ok();
        self.cmd.send(Cmd::Fill(session)).ok();
        let _ = self.reply.recv_timeout(Duration::from_millis(5));
        self.cmd.send(Cmd::Close(session)).ok();
    }

    pub fn drive(&self, sessions: &[u64]) {
        for &s in sessions {
            self.cmd.send(Cmd::Fill(s)).ok();
            let _ = self.reply.recv_timeout(Duration::from_millis(5));
            self.cmd.send(Cmd::Close(s)).ok();
        }
    }

    pub fn install_epoch(&self, epoch: u64) {
        self.cmd.send(Cmd::Swap(epoch)).ok();
    }

    pub fn handle_ctrl(&self, epoch: u64) {
        self.install_epoch(epoch);
    }
}

pub fn pump(rx: &Receiver<Cmd>) {
    while let Ok(cmd) = rx.recv_timeout(Duration::from_millis(5)) {
        match cmd {
            Cmd::Open(_) => {}
            Cmd::Fill(_) => {}
            Cmd::Close(_) => {}
            Cmd::Swap(_) => {}
        }
    }
}
