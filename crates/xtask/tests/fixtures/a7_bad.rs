//! A7 known-bad fixture: panic-capable ops on a worker thread with no
//! catch_unwind — one lexically inside the spawn closure, one in the
//! function the closure calls (the one-hop spawn-entry layer).

pub fn launch(xs: Vec<u64>) -> u64 {
    let h = std::thread::spawn(move || {
        let first = xs[0];
        first + run_worker(&xs)
    });
    h.join().unwrap_or(0)
}

fn run_worker(xs: &[u64]) -> u64 {
    let mut total = 0;
    for i in 0..xs.len() {
        total += xs[i];
    }
    total
}
