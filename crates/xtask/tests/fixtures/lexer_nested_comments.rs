//! Lexer regression fixture: nested block comments carrying braces,
//! quotes, and comment-opener lookalikes. A depth-tracking bug here makes
//! the front-end swallow or split the functions below.

fn nested_comment_with_braces() {
    /* outer { /* inner } */ still outer { */
    marker_one();
}

fn comment_with_stray_quote() {
    /* a lone " quote and a } */
    marker_two();
}

fn doc_style_block_comments() {
    /** outer doc } */
    /*! inner doc { */
    marker_three();
}

fn slash_star_slash_opens_nested() {
    /* a /*/ b */ c */
    marker_four();
}

fn comment_between_items() {
    marker_five(); /* trailing { comment */
}
/* free-floating /* nested */ comment with fn fake_item() { } inside */
fn after_the_comment_block() {
    marker_six();
}
