//! Known-bad A1 fixture: two functions acquire the `meta` and `data`
//! locks in opposite orders, closing a cycle in the lock graph.

fn meta_then_data(meta: &Lock, data: &Lock) {
    let _m = meta.lock();
    let _d = data.lock();
}

fn data_then_meta(meta: &Lock, data: &Lock) {
    let _d = data.lock();
    let _m = meta.lock();
}
