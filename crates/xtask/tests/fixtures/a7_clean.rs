//! A7 known-clean fixture: the same worker, but every panic-capable op is
//! dominated by `catch_unwind` — a panic is contained, the thread reports
//! instead of dying silently.

pub fn launch(xs: Vec<u64>) -> u64 {
    let h = std::thread::spawn(move || {
        std::panic::catch_unwind(move || {
            let first = xs[0];
            first + run_worker(&xs)
        })
        .unwrap_or(0)
    });
    h.join().unwrap_or(0)
}

fn run_worker(xs: &[u64]) -> u64 {
    let mut total = 0;
    for i in 0..xs.len() {
        total += xs[i];
    }
    total
}
