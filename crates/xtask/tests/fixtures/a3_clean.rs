//! Known-clean A3 fixture: every `ShardCmd` variant is both produced
//! and consumed, and the `Fill` send sits in a timeout-guarded gather.

enum ShardCmd {
    Open,
    Fill,
    Drain,
}

fn scatter_gather(tx: &Sender, rx: &Receiver) {
    let _ = tx.send(ShardCmd::Open);
    let _ = tx.send(ShardCmd::Fill);
    let _ = tx.send(ShardCmd::Drain);
    let _ = rx.recv_timeout(GATHER_TIMEOUT);
}

fn worker(rx: &Receiver) {
    match rx.recv() {
        Ok(ShardCmd::Open) => {}
        Ok(ShardCmd::Fill) => {}
        Ok(ShardCmd::Drain) => {}
        _ => {}
    }
}
