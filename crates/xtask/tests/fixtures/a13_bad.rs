//! A13 known-bad fixture: a blocking send while a lock guard is held, a
//! timeout-less recv on the scheduler tick path (`run` roots the cone),
//! and a channel result unwrapped at the call site.

pub struct Hub {
    m: Mutex<Vec<u64>>,
    tx: Sender<u64>,
    ctrl: Receiver<u64>,
}

impl Hub {
    pub fn flush(&self) {
        let guard = self.m.lock();
        self.tx.send(guard.len() as u64).ok();
        drop(guard);
    }

    pub fn run(&self) {
        while let Ok(v) = self.ctrl.recv() {
            let _ = v;
        }
    }

    pub fn announce(&self, v: u64) {
        self.tx.send(v).unwrap();
    }
}
