//! Lexer regression fixture: raw strings, byte strings, and raw
//! identifiers placed where a mis-lex would desync the front-end's
//! brace-matched function extraction. Each fn body hides unbalanced
//! braces/quotes inside literals; `marker_*` calls let the test assert the
//! extractor still attributes calls to the right function.

fn braces_in_raw_string() {
    let _pattern = r#"^\{\d{2}} } { }"#;
    marker_one();
}

fn multi_hash_terminator() {
    let _tricky = r##"quote "# inside, and a stray } brace"##;
    marker_two();
}

fn zero_hash_and_bytes() {
    let _plain = r"} closing brace, no hashes";
    let _bytes = b"{ \" }";
    let _raw_bytes = br#"} { "#;
    marker_three();
}

fn raw_idents_are_names_not_keywords() {
    let r#loop = 1;
    let r#fn = r#loop + 1;
    marker_four(r#fn);
}

fn multiline_raw_string_keeps_positions() {
    let _s = r#"line one {
line two }
line three "quoted""#;
    marker_five();
}
