//! Known-clean A1 fixture: every function acquires `meta` strictly
//! before `data`; the lock-acquisition graph stays acyclic.

fn prepare(meta: &Lock, data: &Lock) {
    let _m = meta.lock();
    let _d = data.lock();
}

fn flush(meta: &Lock, data: &Lock) {
    let _m = meta.lock();
    let _d = data.lock();
}
