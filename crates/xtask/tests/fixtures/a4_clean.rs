//! A4 known-clean fixture: the same shape as `a4_bad.rs`, but the buffer
//! is hoisted out of the loop and reused — the hot path allocates nothing
//! per item.

pub struct S;

impl S {
    pub fn next_batch(&mut self, k: usize) -> usize {
        let mut total = 0;
        for _ in 0..k {
            total += fill_one();
        }
        total
    }
}

fn fill_one() -> usize {
    let mut buf = Vec::with_capacity(16);
    let mut out = 0;
    for i in 0..4 {
        buf.clear();
        buf.push(i);
        out += buf.len();
    }
    out
}
