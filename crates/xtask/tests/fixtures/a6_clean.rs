//! A6 known-clean fixture: the guard is dropped before any blocking call;
//! the send loop runs on a lock-free snapshot.

pub fn flush(m: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let guard = m.lock();
    let snapshot = guard.to_owned();
    drop(guard);
    for v in snapshot {
        tx.send(v).ok();
    }
}
