//! Known-bad A2 fixture: a public estimator entry point reaches a
//! private helper that iterates a `HashMap` in RandomState order.

use std::collections::HashMap;

pub struct Totals {
    counts: HashMap<u64, f64>,
}

impl Totals {
    pub fn grand_total(&self) -> f64 {
        self.sum_groups()
    }

    fn sum_groups(&self) -> f64 {
        let mut total = 0.0;
        for (_, v) in self.counts.iter() {
            total += *v;
        }
        total
    }
}
