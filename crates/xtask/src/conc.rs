//! `conc` — thread-role extraction and the A10–A13 concurrency passes.
//!
//! The front end ([`crate::front`]) records *what* each function does;
//! the CFG ([`crate::cfg`]) records *where* inside the body. This module
//! adds the concurrency-specific facts neither keeps — who publishes and
//! who guards an atomic (and with which `Ordering`), where a registry
//! snapshot is held open (`with_current` closure regions), which protocol
//! variants a channel send actually carries, and which channel results are
//! unwrapped — and runs four passes over them:
//!
//! * **A10 `atomic-ordering`** — cross-thread publish/guard pairs must be
//!   Release/Acquire. Sites are grouped by qualified receiver (the A1 lock
//!   identity: `Type::self.field`); a group is *mixed* when one side uses a
//!   synchronizing ordering and the other side stays `Relaxed`. Both pure-
//!   Relaxed groups (statistics counters, by documented policy in
//!   `storm_core::parallel`) and fully-paired groups are clean; only the
//!   half-synchronized ones are flagged, because there the stronger side
//!   *documents* an ordering contract the weaker side silently breaks.
//! * **A11 `epoch-pin`** — registry snapshot discipline: no publish-class
//!   call (`publish`/`try_publish`/`install_epoch`/`minor_freeze`/
//!   `compact`) inside a `with_current(…)` closure (the closure runs under
//!   the registry read lock; publish takes the write lock — the writer
//!   waits on this very reader), and no pin-class call (`pin`/
//!   `with_current`/`epoch`) at loop depth ≥ 1 in the sampling cone (an
//!   in-flight stream must keep its open-time epoch; re-pinning mid-stream
//!   can mix epochs within one draw and bias the estimate).
//! * **A12 `protocol-fsm`** — upgrades A3's produce/consume matching to a
//!   per-path automaton over the CFG: on every acyclic path through a
//!   function, no Fill-class protocol op may follow a Close-class one, and
//!   Swap may only be issued from tick-boundary code (`install_epoch`
//!   itself, called from `handle_ctrl`).
//! * **A13 `blocking-channel`** — a blocking channel op under a held lock
//!   guard, a timeout-less `recv` on the scheduler tick path, and
//!   `.send(…)`/`.recv(…)` results unwrapped (panics when the peer
//!   endpoint has dropped).
//!
//! Soundness caveats (all deliberate, see DESIGN.md §15):
//!
//! * A10 recognizes orderings spelled `Ordering::X` (the workspace style);
//!   a bare imported `Relaxed` is not parsed, so such a site is skipped
//!   (a false negative, never a false positive). RMW sites (`fetch_*`,
//!   `compare_exchange*`, `swap`) classify their *group* but are not
//!   themselves flagged — their mixed success/failure orderings need
//!   per-algorithm judgment.
//! * A11 has no escape analysis: a `Pinned` that outlives its region is
//!   lifetime-safe by construction (`Arc`-held state), so escape is not an
//!   error; the two genuinely unsafe shapes — publish under the read lock
//!   and mid-stream re-pin — are exactly what the two sub-rules cover.
//! * A12's dataflow is forward and acyclic: loop back edges are ignored,
//!   so the automaton checks *per-iteration* discipline. A Close in one
//!   tick iteration followed by a Fill in the next is legal by
//!   construction (ops are per-session-keyed; the scheduler closes session
//!   A and fills session B), and flagging it would condemn every tick
//!   fixpoint loop. Calls into same-file functions carry their transitive
//!   op *set* as one event; a set cannot create a violation internally
//!   (the callee's own body is checked separately).
//! * A13 treats `recv_timeout`/`recv_deadline` as time-bounded and exempt,
//!   and flags only `recv` (not `send`) on the tick cone: the scheduler's
//!   dispatch sends ride unbounded channels and cannot block.

use std::collections::{BTreeMap, BTreeSet};

use crate::analyze::{in_scope, sampling_api_roots, tick_roots};
use crate::callgraph::CallGraph;
use crate::cfg::{Cfg, CostKind};
use crate::front::{self, FileFacts};
use crate::lexer::Lexed;
use crate::Diagnostic;

/// Path prefixes A10 groups atomic sites over: every crate that shares
/// atomics across threads.
const A10_SCOPE: [&str; 4] = [
    "crates/core/src/",
    "crates/store/src/",
    "crates/server/src/",
    "crates/engine/src/",
];

/// Path prefixes A11 checks for registry pin/publish discipline.
const A11_SCOPE: [&str; 3] = [
    "crates/core/src/",
    "crates/store/src/",
    "crates/server/src/",
];

/// Paths A12 runs the protocol automaton over: the shard protocol's two
/// issuing sides (executor and scheduler).
const A12_SCOPE: [&str; 2] = ["crates/core/src/parallel.rs", "crates/server/src/"];

/// Path prefixes A13 checks for blocking-channel hazards.
const A13_SCOPE: [&str; 3] = [
    "crates/core/src/parallel.rs",
    "crates/store/src/",
    "crates/server/src/",
];

/// Methods on `std::sync::atomic` types whose argument list carries an
/// `Ordering`.
const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

/// Calls that install a new epoch (directly or via a wrapper that takes
/// the registry write lock).
const PUBLISH_CLASS: [&str; 5] = [
    "publish",
    "try_publish",
    "install_epoch",
    "minor_freeze",
    "compact",
];

/// Calls that (re-)read the current epoch.
const PIN_CLASS: [&str; 3] = ["pin", "with_current", "epoch"];

/// One atomic operation with its receiver identity and parsed orderings.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Index of the enclosing fn in [`FileFacts::fns`].
    pub fn_idx: usize,
    /// Qualified receiver (the A1 lock identity: `Type::self.field`).
    pub key: String,
    /// Method name (`load`, `store`, `fetch_add`, …).
    pub method: String,
    /// `Ordering::X` idents found in the argument list, in order.
    pub orderings: Vec<String>,
    /// 1-based line of the method name.
    pub line: u32,
    /// 1-based column of the method name.
    pub col: u32,
}

/// The token range of one `with_current(…)` argument list — the region
/// that runs under the registry read lock.
#[derive(Debug, Clone)]
pub struct WithCurrentRegion {
    /// Index of the enclosing fn in [`FileFacts::fns`].
    pub fn_idx: usize,
    /// `(` .. `)` token indexes of the argument list, inclusive.
    pub args: (usize, usize),
    /// 1-based line of the `with_current` ident.
    pub line: u32,
}

/// A protocol-enum variant inside the argument list of a channel send.
#[derive(Debug, Clone)]
pub struct ProtoSend {
    /// Index of the enclosing fn in [`FileFacts::fns`].
    pub fn_idx: usize,
    /// Token index of the `send`/`try_send` ident (joins to
    /// [`crate::cfg::CfgCall::tok`] for the basic block).
    pub send_tok: usize,
    /// The enum declared in this file.
    pub enum_name: String,
    /// The variant named in the payload.
    pub variant: String,
    /// 1-based line of the variant ident.
    pub line: u32,
    /// 1-based column of the variant ident.
    pub col: u32,
}

/// A channel op whose `Result` is unwrapped at the call site.
#[derive(Debug, Clone)]
pub struct CheckedChanOp {
    /// Index of the enclosing fn in [`FileFacts::fns`].
    pub fn_idx: usize,
    /// `send` or `recv`.
    pub op: String,
    /// `unwrap` or `expect`.
    pub checker: String,
    /// 1-based line of the unwrap/expect ident.
    pub line: u32,
    /// 1-based column of the unwrap/expect ident.
    pub col: u32,
}

/// Per-file concurrency fact table. Spawn-closure and lock-held regions
/// already live on the [`Cfg`] (`spawn_args`, `lock_regions`); this table
/// adds what the CFG does not keep.
#[derive(Debug, Clone, Default)]
pub struct ConcFacts {
    /// Atomic ops with receiver identity and orderings.
    pub atomics: Vec<AtomicSite>,
    /// `with_current(…)` argument regions (registry read lock held).
    pub with_current: Vec<WithCurrentRegion>,
    /// Protocol-enum variants carried by channel sends.
    pub proto_sends: Vec<ProtoSend>,
    /// Channel ops with unwrapped results.
    pub checked_chan: Vec<CheckedChanOp>,
}

/// Extracts the concurrency facts of one file.
pub fn extract(facts: &FileFacts, lex: &Lexed) -> ConcFacts {
    let toks = &lex.tokens;
    let mut out = ConcFacts::default();
    // Enum declarations of this file, for send-payload variant matching.
    let enums: BTreeMap<&str, BTreeSet<&str>> = facts
        .enums
        .iter()
        .map(|e| {
            (
                e.name.as_str(),
                e.variants.iter().map(String::as_str).collect(),
            )
        })
        .collect();
    for (fn_idx, f) in facts.fns.iter().enumerate() {
        let (open, close) = f.body_span;
        if open >= close || close >= toks.len() {
            continue;
        }
        for i in (open + 1)..close {
            let Some(name) = front::ident_at(toks, i) else {
                continue;
            };
            if !(i > 0 && front::is_punct(toks, i - 1, '.') && front::is_punct(toks, i + 1, '(')) {
                continue;
            }
            let Some(end) = front::match_delim(toks, i + 1) else {
                continue;
            };
            if ATOMIC_METHODS.contains(&name) {
                // Orderings: every `Ordering::X` in the argument list.
                let mut orderings = Vec::new();
                for j in (i + 2)..end {
                    if front::ident_at(toks, j) == Some("Ordering")
                        && front::is_op(toks, j + 1, "::")
                    {
                        if let Some(o) = front::ident_at(toks, j + 2) {
                            orderings.push(o.to_string());
                        }
                    }
                }
                if !orderings.is_empty() {
                    let recv = front::receiver_chain(toks, i - 1);
                    out.atomics.push(AtomicSite {
                        fn_idx,
                        key: crate::analyze::lock_key(f, &recv),
                        method: name.to_string(),
                        orderings,
                        line: toks[i].line,
                        col: toks[i].col,
                    });
                }
            }
            if name == "with_current" {
                out.with_current.push(WithCurrentRegion {
                    fn_idx,
                    args: (i + 1, end),
                    line: toks[i].line,
                });
            }
            if name == "send" || name == "try_send" {
                for j in (i + 2)..end {
                    let Some(en) = front::ident_at(toks, j) else {
                        continue;
                    };
                    if !front::is_op(toks, j + 1, "::") {
                        continue;
                    }
                    let Some(v) = front::ident_at(toks, j + 2) else {
                        continue;
                    };
                    if enums.get(en).is_some_and(|vs| vs.contains(v)) {
                        out.proto_sends.push(ProtoSend {
                            fn_idx,
                            send_tok: i,
                            enum_name: en.to_string(),
                            variant: v.to_string(),
                            line: toks[j + 2].line,
                            col: toks[j + 2].col,
                        });
                    }
                }
            }
            if (name == "send" || name == "recv")
                && front::is_punct(toks, end + 1, '.')
                && front::is_punct(toks, end + 3, '(')
            {
                if let Some(checker @ ("unwrap" | "expect")) = front::ident_at(toks, end + 2) {
                    out.checked_chan.push(CheckedChanOp {
                        fn_idx,
                        op: name.to_string(),
                        checker: checker.to_string(),
                        line: toks[end + 2].line,
                        col: toks[end + 2].col,
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A10: atomic-ordering
// ---------------------------------------------------------------------------

/// Orderings that make a write a publish.
const RELEASING: [&str; 3] = ["Release", "AcqRel", "SeqCst"];
/// Orderings that make a read a guard.
const ACQUIRING: [&str; 3] = ["Acquire", "AcqRel", "SeqCst"];

/// Flags half-synchronized atomic publish/guard pairs: a `Relaxed` load of
/// a location somebody stores with Release (guard-without-Acquire), and a
/// `Relaxed` store of a location somebody loads with Acquire
/// (publish-without-Release). See the module docs for the grouping rule.
pub fn pass_atomic_ordering(g: &CallGraph<'_>, concs: &[ConcFacts]) -> Vec<Diagnostic> {
    struct SiteRef<'a> {
        file: usize,
        site: &'a AtomicSite,
    }
    let mut groups: BTreeMap<&str, Vec<SiteRef<'_>>> = BTreeMap::new();
    for (fi, cf) in concs.iter().enumerate() {
        let file = &g.files[fi];
        if !in_scope(&file.path, &A10_SCOPE) {
            continue;
        }
        for site in &cf.atomics {
            if file.fns[site.fn_idx].in_test {
                continue;
            }
            groups
                .entry(site.key.as_str())
                .or_default()
                .push(SiteRef { file: fi, site });
        }
    }
    let mut out = Vec::new();
    for (key, sites) in &groups {
        let strong = |s: &AtomicSite, class: &[&str]| {
            s.orderings.iter().any(|o| class.contains(&o.as_str()))
        };
        // Writes: everything but a pure load; reads: everything but a pure
        // store. RMWs classify the group but are never flagged themselves.
        let released = sites
            .iter()
            .any(|r| r.site.method != "load" && strong(r.site, &RELEASING));
        let acquired = sites
            .iter()
            .any(|r| r.site.method != "store" && strong(r.site, &ACQUIRING));
        for r in sites {
            if !r.site.orderings.iter().all(|o| o == "Relaxed") {
                continue;
            }
            let f = &g.files[r.file].fns[r.site.fn_idx];
            let message = if r.site.method == "load" && released {
                format!(
                    "guard-without-Acquire: `{key}.load(Relaxed)` in `{}`, \
                     but `{key}` is published with a Release-class store \
                     elsewhere — without Acquire the data guarded by this \
                     load may be observed pre-publish; use \
                     `load(Ordering::Acquire)` [atomic-ordering]",
                    f.key()
                )
            } else if r.site.method == "store" && acquired {
                format!(
                    "publish-without-Release: `{key}.store(…, Relaxed)` in \
                     `{}`, but `{key}` is guarded with an Acquire-class \
                     load elsewhere — the loader's Acquire has nothing to \
                     synchronize with; use `store(…, Ordering::Release)` \
                     [atomic-ordering]",
                    f.key()
                )
            } else {
                continue;
            };
            out.push(Diagnostic {
                path: g.files[r.file].path.clone(),
                line: r.site.line,
                col: r.site.col,
                rule: "A10",
                message,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A11: epoch-pin
// ---------------------------------------------------------------------------

/// Flags (1) publish-class calls inside a `with_current(…)` closure — the
/// registry read lock is held there and publish wants the write lock — and
/// (2) pin-class calls at loop depth ≥ 1 in the sampling cone, where an
/// in-flight stream must keep its open-time epoch.
pub fn pass_epoch_pin(
    g: &CallGraph<'_>,
    cfgs: &[Vec<Cfg>],
    concs: &[ConcFacts],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, file) in g.files.iter().enumerate() {
        if !in_scope(&file.path, &A11_SCOPE) {
            continue;
        }
        for region in &concs[fi].with_current {
            let f = &file.fns[region.fn_idx];
            if f.in_test {
                continue;
            }
            for c in &cfgs[fi][region.fn_idx].calls {
                if c.tok > region.args.0
                    && c.tok < region.args.1
                    && PUBLISH_CLASS.contains(&c.name.as_str())
                {
                    out.push(Diagnostic {
                        path: file.path.clone(),
                        line: c.line,
                        col: c.col,
                        rule: "A11",
                        message: format!(
                            "publish-class `{}` inside the `with_current(…)` \
                             closure opened at line {} in `{}` — with_current \
                             holds the registry read lock and `{}` takes the \
                             write lock, which waits for this very reader: \
                             self-deadlock; publish after the closure returns \
                             [epoch-pin]",
                            c.name,
                            region.line,
                            f.key(),
                            c.name
                        ),
                    });
                }
            }
        }
    }
    let cone = g.reachable_from(&sampling_api_roots(g));
    for &id in &cone {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A11_SCOPE) {
            continue;
        }
        for c in &cfgs[id.0][id.1].calls {
            if c.loop_depth >= 1 && c.is_method && PIN_CLASS.contains(&c.name.as_str()) {
                out.push(Diagnostic {
                    path: g.path(id).to_string(),
                    line: c.line,
                    col: c.col,
                    rule: "A11",
                    message: format!(
                        "epoch re-read: `.{}(…)` at loop depth {} inside \
                         `{}`, which the sampling API reaches — an in-flight \
                         stream must keep the epoch it pinned at open; \
                         re-reading mid-stream can mix epochs within one \
                         draw and bias the estimate [epoch-pin]",
                        c.name,
                        c.loop_depth,
                        f.key()
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A12: protocol-fsm
// ---------------------------------------------------------------------------

/// Protocol operation classes, by exact variant / method name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtoOp {
    /// `Open`/`OpenMany` variants, `open_many` calls.
    Open,
    /// `Fill`/`FillMany` variants, `fill_many` calls.
    Fill,
    /// `Close`/`CloseMany` variants, `close_many`/`close_session` calls.
    Close,
    /// `Swap` variants, `install_epoch` calls.
    Swap,
}

/// Exact variant-name classification (substrings would misread replies
/// like `Opened`).
fn variant_op(v: &str) -> Option<ProtoOp> {
    match v {
        "Open" | "OpenMany" => Some(ProtoOp::Open),
        "Fill" | "FillMany" => Some(ProtoOp::Fill),
        "Close" | "CloseMany" => Some(ProtoOp::Close),
        "Swap" => Some(ProtoOp::Swap),
        _ => None,
    }
}

/// Protocol wrapper methods, by exact name — never bare `open`/`close`,
/// which the name-linked call graph would over-resolve.
const PROTO_METHODS: [(&str, ProtoOp); 5] = [
    ("open_many", ProtoOp::Open),
    ("fill_many", ProtoOp::Fill),
    ("close_many", ProtoOp::Close),
    ("close_session", ProtoOp::Close),
    ("install_epoch", ProtoOp::Swap),
];

/// Functions allowed to send a `Swap` variant directly.
const SWAP_SENDERS: [&str; 1] = ["install_epoch"];

/// Functions allowed to call `install_epoch`: the epoch installer's own
/// wrappers and the scheduler's tick-boundary control handler.
const SWAP_CALLERS: [&str; 2] = ["handle_ctrl", "install_epoch"];

#[derive(Debug)]
enum EvKind {
    /// A protocol variant inside a direct channel send.
    Sent(ProtoOp, String),
    /// A call to a protocol wrapper method.
    Called(ProtoOp, String),
    /// A call into a same-file fn whose transitive op set is non-empty.
    CallInto(BTreeSet<ProtoOp>, String),
}

#[derive(Debug)]
struct Ev {
    tok: usize,
    block: usize,
    line: u32,
    col: u32,
    kind: EvKind,
}

impl Ev {
    fn closes(&self) -> bool {
        match &self.kind {
            EvKind::Sent(op, _) | EvKind::Called(op, _) => *op == ProtoOp::Close,
            EvKind::CallInto(set, _) => set.contains(&ProtoOp::Close),
        }
    }
    fn fills(&self) -> bool {
        match &self.kind {
            EvKind::Sent(op, _) | EvKind::Called(op, _) => *op == ProtoOp::Fill,
            EvKind::CallInto(set, _) => set.contains(&ProtoOp::Fill),
        }
    }
}

/// Runs the per-path protocol automaton over every fn in [`A12_SCOPE`]:
/// no Fill-class op after a Close-class op on any acyclic path, and Swap
/// only from tick-boundary code. See the module docs for event sources
/// and the back-edge caveat.
pub fn pass_protocol_fsm(
    g: &CallGraph<'_>,
    cfgs: &[Vec<Cfg>],
    concs: &[ConcFacts],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, file) in g.files.iter().enumerate() {
        if !in_scope(&file.path, &A12_SCOPE) {
            continue;
        }
        let proto_method = |name: &str| {
            PROTO_METHODS
                .iter()
                .find(|(m, _)| *m == name)
                .map(|(_, op)| *op)
        };
        // Direct ops per fn: variants sent + wrapper methods called.
        let direct: Vec<BTreeSet<ProtoOp>> = file
            .fns
            .iter()
            .enumerate()
            .map(|(gi, _)| {
                let mut set = BTreeSet::new();
                for s in concs[fi].proto_sends.iter().filter(|s| s.fn_idx == gi) {
                    set.extend(variant_op(&s.variant));
                }
                for c in &cfgs[fi][gi].calls {
                    set.extend(proto_method(&c.name));
                }
                set
            })
            .collect();
        // Same-file call resolution by bare name. `drop` is excluded:
        // an explicit `drop(x)` is `std::mem::drop`, not a same-file
        // `Drop::drop` impl (which is never called by name).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (gi, f) in file.fns.iter().enumerate() {
            if f.name != "drop" {
                by_name.entry(f.name.as_str()).or_default().push(gi);
            }
        }
        // Transitive op sets, to a fixpoint (sets only grow, so this
        // terminates).
        let mut emits = direct.clone();
        loop {
            let mut changed = false;
            for gi in 0..file.fns.len() {
                let mut add = BTreeSet::new();
                for c in &cfgs[fi][gi].calls {
                    if let Some(callees) = by_name.get(c.name.as_str()) {
                        for &cal in callees {
                            if cal != gi {
                                add.extend(emits[cal].iter().copied());
                            }
                        }
                    }
                }
                let before = emits[gi].len();
                emits[gi].extend(add);
                changed |= emits[gi].len() != before;
            }
            if !changed {
                break;
            }
        }

        for (gi, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let cfg = &cfgs[fi][gi];
            // Events of this fn, in token order.
            let mut events: Vec<Ev> = Vec::new();
            for s in concs[fi].proto_sends.iter().filter(|s| s.fn_idx == gi) {
                let Some(op) = variant_op(&s.variant) else {
                    continue;
                };
                // The send's CfgCall carries the basic block.
                let Some(call) = cfg.calls.iter().find(|c| c.tok == s.send_tok) else {
                    continue;
                };
                events.push(Ev {
                    tok: s.send_tok,
                    block: call.block,
                    line: s.line,
                    col: s.col,
                    kind: EvKind::Sent(op, format!("{}::{}", s.enum_name, s.variant)),
                });
            }
            for c in &cfg.calls {
                if let Some(op) = proto_method(&c.name) {
                    events.push(Ev {
                        tok: c.tok,
                        block: c.block,
                        line: c.line,
                        col: c.col,
                        kind: EvKind::Called(op, c.name.clone()),
                    });
                } else if let Some(callees) = by_name.get(c.name.as_str()) {
                    let mut set = BTreeSet::new();
                    for &cal in callees {
                        if cal != gi {
                            set.extend(emits[cal].iter().copied());
                        }
                    }
                    if !set.is_empty() {
                        events.push(Ev {
                            tok: c.tok,
                            block: c.block,
                            line: c.line,
                            col: c.col,
                            kind: EvKind::CallInto(set, c.name.clone()),
                        });
                    }
                }
            }
            events.sort_by_key(|e| e.tok);

            // Swap gating: direct issuing sites only (a transitive set
            // would condemn every caller of the scheduler loop).
            for ev in &events {
                match &ev.kind {
                    EvKind::Sent(ProtoOp::Swap, what)
                        if !SWAP_SENDERS.contains(&f.name.as_str()) =>
                    {
                        out.push(Diagnostic {
                            path: file.path.clone(),
                            line: ev.line,
                            col: ev.col,
                            rule: "A12",
                            message: format!(
                                "`{what}` sent from `{}` — epoch swaps may \
                                 only be issued by `install_epoch`, which \
                                 runs at a tick boundary; a swap from any \
                                 other path can replace a shard snapshot \
                                 mid-fill [protocol-fsm]",
                                f.key()
                            ),
                        });
                    }
                    EvKind::Called(ProtoOp::Swap, name)
                        if !SWAP_CALLERS.contains(&f.name.as_str()) =>
                    {
                        out.push(Diagnostic {
                            path: file.path.clone(),
                            line: ev.line,
                            col: ev.col,
                            rule: "A12",
                            message: format!(
                                "`{name}` called from `{}` — epochs install \
                                 only from tick-boundary control code \
                                 (`handle_ctrl`); any other caller can swap \
                                 a snapshot while fills are in flight \
                                 [protocol-fsm]",
                                f.key()
                            ),
                        });
                    }
                    _ => {}
                }
            }

            // Fill-after-Close: forward may-closed dataflow over the
            // acyclic CFG (back edges dropped).
            let nb = cfg.blocks.len();
            let back: BTreeSet<(usize, usize)> = cfg.back_edges.iter().copied().collect();
            let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
            for (b, blk) in cfg.blocks.iter().enumerate() {
                for &s in &blk.succs {
                    if !back.contains(&(b, s)) && s < nb {
                        preds[s].push(b);
                    }
                }
            }
            let mut by_block: Vec<Vec<&Ev>> = vec![Vec::new(); nb];
            for ev in &events {
                if ev.block < nb {
                    by_block[ev.block].push(ev);
                }
            }
            let mut closed_in = vec![false; nb];
            let mut closed_out = vec![false; nb];
            loop {
                let mut changed = false;
                for b in 0..nb {
                    let cin = preds[b].iter().any(|&p| closed_out[p]);
                    let cout = cin || by_block[b].iter().any(|e| e.closes());
                    if cin != closed_in[b] || cout != closed_out[b] {
                        closed_in[b] = cin;
                        closed_out[b] = cout;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for b in 0..nb {
                let mut closed = closed_in[b];
                for ev in &by_block[b] {
                    if closed && ev.fills() {
                        let what = match &ev.kind {
                            EvKind::Sent(_, w) => format!("`{w}` sent"),
                            EvKind::Called(_, n) => format!("`{n}` called"),
                            EvKind::CallInto(_, n) => {
                                format!("call into Fill-issuing `{n}`")
                            }
                        };
                        out.push(Diagnostic {
                            path: file.path.clone(),
                            line: ev.line,
                            col: ev.col,
                            rule: "A12",
                            message: format!(
                                "{what} after a Close-class op on the same \
                                 path through `{}` — the session is already \
                                 torn down on some execution reaching this \
                                 point, so the fill targets a freed session \
                                 slot [protocol-fsm]",
                                f.key()
                            ),
                        });
                    }
                    if ev.closes() {
                        closed = true;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A13: blocking-channel
// ---------------------------------------------------------------------------

/// Flags (1) blocking channel ops under a held lock guard, (2) timeout-less
/// `recv` on the scheduler tick path, and (3) channel results unwrapped at
/// the call site (panics when the peer endpoint has dropped).
pub fn pass_channel_blocking(
    g: &CallGraph<'_>,
    cfgs: &[Vec<Cfg>],
    concs: &[ConcFacts],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for id in g.all_fns() {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A13_SCOPE) {
            continue;
        }
        let body = &cfgs[id.0][id.1];
        for region in &body.lock_regions {
            for site in &body.sites {
                let op = match &site.kind {
                    CostKind::ChannelSend(m) | CostKind::ChannelRecv(m)
                        // recv_timeout/recv_deadline are time-bounded:
                        // they cannot stall the lock past the deadline.
                        if site.kind.is_blocking()
                            && m != "recv_timeout"
                            && m != "recv_deadline" =>
                    {
                        m
                    }
                    _ => continue,
                };
                if !(region.held.0..=region.held.1).contains(&site.tok) {
                    continue;
                }
                out.push(Diagnostic {
                    path: g.path(id).to_string(),
                    line: site.line,
                    col: site.col,
                    rule: "A13",
                    message: format!(
                        "blocking `.{op}(…)` inside `{}` while the `{}` \
                         guard (acquired line {}) is held — a full buffer or \
                         a gone peer stalls every thread contending on that \
                         lock; drop the guard before the channel op \
                         [blocking-channel]",
                        f.key(),
                        region.recv,
                        region.line
                    ),
                });
            }
        }
    }
    // Timeout-less recv in the tick cone: one lost worker reply stalls
    // every live session. Sends are exempt — dispatch rides unbounded
    // channels and cannot block.
    let cone = g.reachable_from(&tick_roots(g));
    for &id in &cone {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A13_SCOPE) {
            continue;
        }
        for site in &cfgs[id.0][id.1].sites {
            if let CostKind::ChannelRecv(m) = &site.kind {
                if m == "recv" {
                    out.push(Diagnostic {
                        path: g.path(id).to_string(),
                        line: site.line,
                        col: site.col,
                        rule: "A13",
                        message: format!(
                            "timeout-less `.recv()` inside `{}`, which the \
                             scheduler tick path reaches — a lost or slow \
                             peer stalls every live session for the full \
                             wait; use recv_timeout with the gather \
                             deadline [blocking-channel]",
                            f.key()
                        ),
                    });
                }
            }
        }
    }
    for (fi, cf) in concs.iter().enumerate() {
        let file = &g.files[fi];
        if !in_scope(&file.path, &A13_SCOPE) {
            continue;
        }
        for cop in &cf.checked_chan {
            if file.fns[cop.fn_idx].in_test {
                continue;
            }
            out.push(Diagnostic {
                path: file.path.clone(),
                line: cop.line,
                col: cop.col,
                rule: "A13",
                message: format!(
                    "`.{}(…).{}(…)` in `{}` panics when the peer endpoint \
                     has dropped — a worker or scheduler shutdown then takes \
                     this thread down with it; handle the disconnect `Err` \
                     [blocking-channel]",
                    cop.op,
                    cop.checker,
                    file.fns[cop.fn_idx].key()
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    out
}
