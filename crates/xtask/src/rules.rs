//! The R1–R6 rule matchers and the allow-directive machinery.

use crate::lexer::{Lexed, TokKind, Token};
use crate::Diagnostic;

/// A storm-lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Short id (`R1`…`R6`).
    pub id: &'static str,
    /// Kebab-case name usable in allow directives.
    pub name: &'static str,
    /// What the rule enforces (one line, shown by `xtask lint --list`).
    pub rationale: &'static str,
    kind: RuleKind,
    /// Repo-relative path prefixes the rule applies to.
    scopes: &'static [&'static str],
    /// Whether `#[cfg(test)]` regions are exempt.
    exempt_tests: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleKind {
    Unwrap,
    UnseededRng,
    FloatEq,
    StdSync,
    LossyCast,
    BareJoin,
}

/// All rules, in id order.
pub const RULES: [Rule; 6] = [
    Rule {
        id: "R1",
        name: "no-unwrap",
        rationale: "library code on query paths must propagate errors, not panic: \
                    a panicking sampler tears down the online session the paper's \
                    terminate-at-any-time contract depends on",
        kind: RuleKind::Unwrap,
        scopes: &[
            "crates/core/src/",
            "crates/store/src/",
            "crates/engine/src/",
            "crates/query/src/",
        ],
        exempt_tests: true,
    },
    Rule {
        id: "R2",
        name: "no-unseeded-rng",
        rationale: "ambient entropy (thread_rng/from_entropy/rand::random) makes \
                    sampling runs unreproducible; every sampler takes an explicit \
                    seeded RNG so experiments and bug reports replay exactly",
        kind: RuleKind::UnseededRng,
        scopes: &["crates/core/src/", "crates/estimators/src/"],
        exempt_tests: false,
    },
    Rule {
        id: "R3",
        name: "no-float-eq",
        rationale: "exact ==/!= on floats in estimator/geometry code silently \
                    breaks under FP rounding; compare against a tolerance or \
                    restructure around integers",
        kind: RuleKind::FloatEq,
        scopes: &["crates/estimators/src/", "crates/geo/src/"],
        exempt_tests: true,
    },
    Rule {
        id: "R4",
        name: "no-std-sync",
        rationale: "the workspace lock standard is parking_lot (non-poisoning, \
                    smaller guards); mixing std::sync::{Mutex, RwLock} back in \
                    splits the locking vocabulary and reintroduces poisoning",
        kind: RuleKind::StdSync,
        scopes: &["crates/", "src/"],
        exempt_tests: false,
    },
    Rule {
        id: "R5",
        name: "no-lossy-cast",
        rationale: "narrowing `as` casts in R-tree/sampler node arithmetic \
                    truncate silently; overflowing a node count skews subtree \
                    weights and with them sampling probabilities",
        kind: RuleKind::LossyCast,
        scopes: &["crates/rtree/src/", "crates/core/src/"],
        exempt_tests: true,
    },
    Rule {
        id: "R6",
        name: "no-bare-join",
        rationale: "`.join().unwrap()`/`.join().expect(..)` on a thread handle \
                    re-raises a contained worker panic in the joining thread, \
                    defeating the executor's panic containment; match on the \
                    JoinHandle result (or discard it with `let _ = h.join()`)",
        kind: RuleKind::BareJoin,
        scopes: &["crates/", "src/"],
        exempt_tests: false,
    },
];

/// The rules whose scope covers `rel_path`.
pub fn rules_for_path(rel_path: &str) -> Vec<Rule> {
    RULES
        .iter()
        .filter(|r| r.scopes.iter().any(|s| rel_path.starts_with(s)))
        .copied()
        .collect()
}

impl Rule {
    /// Runs the rule over one lexed file.
    pub fn check(&self, _rel_path: &str, lexed: &Lexed) -> Vec<Diagnostic> {
        let exempt = if self.exempt_tests {
            test_regions(&lexed.tokens)
        } else {
            Vec::new()
        };
        let mut out = Vec::new();
        let toks = &lexed.tokens;
        for i in 0..toks.len() {
            if in_regions(&exempt, toks[i].line) {
                continue;
            }
            if let Some(message) = self.match_at(toks, i) {
                out.push(Diagnostic {
                    path: String::new(), // filled by the caller below
                    line: toks[i].line,
                    col: toks[i].col,
                    rule: self.id,
                    message,
                });
            }
        }
        for d in &mut out {
            d.path = _rel_path.to_string();
        }
        out
    }

    fn match_at(&self, toks: &[Token], i: usize) -> Option<String> {
        match self.kind {
            RuleKind::Unwrap => {
                let name = ident_at(toks, i)?;
                if (name == "unwrap" || name == "expect")
                    && is_punct(toks, i.wrapping_sub(1), '.')
                    && i > 0
                    && is_punct(toks, i + 1, '(')
                {
                    Some(format!(
                        ".{name}() can panic on a query path — return a Result \
                         (or use unwrap_or/ok()/match) [no-unwrap]"
                    ))
                } else {
                    None
                }
            }
            RuleKind::UnseededRng => {
                let name = ident_at(toks, i)?;
                match name {
                    "thread_rng" | "from_entropy" => Some(format!(
                        "{name} draws ambient OS entropy — take a seeded rng \
                         (StdRng::seed_from_u64) so sampling runs reproduce \
                         [no-unseeded-rng]"
                    )),
                    "random"
                        if is_op(toks, i.wrapping_sub(1), "::")
                            && i >= 2
                            && ident_at(toks, i - 2) == Some("rand") =>
                    {
                        Some(
                            "rand::random draws ambient OS entropy — take a seeded \
                             rng so sampling runs reproduce [no-unseeded-rng]"
                                .to_string(),
                        )
                    }
                    _ => None,
                }
            }
            RuleKind::FloatEq => {
                let op = match &toks[i].kind {
                    TokKind::Op(op @ ("==" | "!=")) => *op,
                    _ => return None,
                };
                if operand_is_floatish(toks, i, Side::Left)
                    || operand_is_floatish(toks, i, Side::Right)
                {
                    Some(format!(
                        "`{op}` on a floating-point expression — exact float \
                         comparison breaks under rounding; use a tolerance \
                         [no-float-eq]"
                    ))
                } else {
                    None
                }
            }
            RuleKind::StdSync => {
                // `std :: sync :: Mutex|RwLock` or `std :: sync :: { … Mutex … }`.
                if ident_at(toks, i) != Some("std")
                    || !is_op(toks, i + 1, "::")
                    || ident_at(toks, i + 2) != Some("sync")
                    || !is_op(toks, i + 3, "::")
                {
                    return None;
                }
                let after = i + 4;
                if let Some(name @ ("Mutex" | "RwLock")) = ident_at(toks, after) {
                    return Some(std_sync_message(name));
                }
                if is_punct(toks, after, '{') {
                    let mut depth = 0i32;
                    for tok in &toks[after..] {
                        match &tok.kind {
                            TokKind::Punct('{') => depth += 1,
                            TokKind::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            TokKind::Ident(name) if name == "Mutex" || name == "RwLock" => {
                                return Some(std_sync_message(name));
                            }
                            _ => {}
                        }
                    }
                }
                None
            }
            RuleKind::BareJoin => {
                if ident_at(toks, i) != Some("join")
                    || !is_punct(toks, i.wrapping_sub(1), '.')
                    || i == 0
                    || !is_punct(toks, i + 1, '(')
                    || !is_punct(toks, i + 2, ')')
                    || !is_punct(toks, i + 3, '.')
                {
                    return None;
                }
                match ident_at(toks, i + 4) {
                    Some(name @ ("unwrap" | "expect")) if is_punct(toks, i + 5, '(') => {
                        Some(format!(
                            ".join().{name}() re-raises a contained worker panic in \
                             the joining thread — match on the join result instead \
                             [no-bare-join]"
                        ))
                    }
                    _ => None,
                }
            }
            RuleKind::LossyCast => {
                if ident_at(toks, i) != Some("as") {
                    return None;
                }
                let target = ident_at(toks, i + 1)?;
                if matches!(target, "u8" | "u16" | "u32" | "i8" | "i16" | "i32") {
                    Some(format!(
                        "`as {target}` narrows index/count arithmetic and truncates \
                         silently — use try_into() or widen the type [no-lossy-cast]"
                    ))
                } else {
                    None
                }
            }
        }
    }
}

fn std_sync_message(name: &str) -> String {
    format!(
        "std::sync::{name} — the workspace lock standard is parking_lot::{name} \
         (non-poisoning) [no-std-sync]"
    )
}

#[derive(Clone, Copy)]
enum Side {
    Left,
    Right,
}

/// Heuristic: is the operand next to a comparison visibly floating-point?
/// Catches float literals (`x == 0.0`, possibly negated), `as f32/f64`
/// casts, and `f32::`/`f64::` associated constants. Lexical analysis cannot
/// see inferred types — DESIGN.md documents the approximation.
fn operand_is_floatish(toks: &[Token], op_idx: usize, side: Side) -> bool {
    match side {
        Side::Left => {
            if op_idx == 0 {
                return false;
            }
            let prev = op_idx - 1;
            if is_float_num(toks, prev) {
                return true;
            }
            // `… as f64 ==`
            if matches!(ident_at(toks, prev), Some("f32" | "f64"))
                && prev >= 1
                && ident_at(toks, prev - 1) == Some("as")
            {
                return true;
            }
            // `f64::NAN ==` (const then op: `NAN` preceded by `f64 ::`)
            prev >= 2
                && ident_at(toks, prev).is_some()
                && is_op(toks, prev - 1, "::")
                && matches!(ident_at(toks, prev - 2), Some("f32" | "f64"))
        }
        Side::Right => {
            let mut next = op_idx + 1;
            // Skip unary minus: `== -1.0`.
            if is_punct(toks, next, '-') {
                next += 1;
            }
            if is_float_num(toks, next) {
                return true;
            }
            // `== f64::NAN` / `!= f32::INFINITY`
            matches!(ident_at(toks, next), Some("f32" | "f64")) && is_op(toks, next + 1, "::")
        }
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(toks: &[Token], i: usize, want: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(c)) if *c == want)
}

fn is_op(toks: &[Token], i: usize, want: &str) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Op(op)) if *op == want)
}

fn is_float_num(toks: &[Token], i: usize) -> bool {
    matches!(
        toks.get(i).map(|t| &t.kind),
        Some(TokKind::Num { is_float: true, .. })
    )
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items and
/// `#![cfg(test)]` inner attributes.
///
/// Outer attributes exempt the item they sit on (brace- or
/// semicolon-delimited, at any nesting depth — a `mod tests` inside another
/// module is covered the same as a top-level one). An *inner* attribute
/// (`#![cfg(test)]`, the form a module places at its own top) exempts the
/// enclosing brace block, or the whole file when it appears at file scope.
pub(crate) fn test_regions(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Inner attribute: `#` `!` `[` cfg `(` … test … `)` `]`.
        if is_punct(toks, i, '#')
            && is_punct(toks, i + 1, '!')
            && is_punct(toks, i + 2, '[')
            && ident_at(toks, i + 3) == Some("cfg")
        {
            let mut j = i + 4;
            let mut bracket_depth = 1i32; // the `[` at i+2
            let mut saw_test = false;
            while j < toks.len() && bracket_depth > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => bracket_depth += 1,
                    TokKind::Punct(']') => bracket_depth -= 1,
                    TokKind::Ident(name) if name == "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_test {
                regions.push(enclosing_brace_region(toks, i));
            }
            i = j;
            continue;
        }
        // Outer attribute: `#` `[` cfg `(` … test … `)` `]`
        if is_punct(toks, i, '#')
            && is_punct(toks, i + 1, '[')
            && ident_at(toks, i + 2) == Some("cfg")
        {
            // Find the attribute's closing `]`, checking for a `test` ident.
            let mut j = i + 3;
            let mut bracket_depth = 1i32; // the `[` at i+1
            let mut saw_test = false;
            while j < toks.len() && bracket_depth > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => bracket_depth += 1,
                    TokKind::Punct(']') => bracket_depth -= 1,
                    TokKind::Ident(name) if name == "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_test {
                // Skip any further attributes, then the item itself.
                while is_punct(toks, j, '#') && is_punct(toks, j + 1, '[') {
                    let mut depth = 0i32;
                    while j < toks.len() {
                        match &toks[j].kind {
                            TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                let start_line = toks[i].line;
                let mut end_line = start_line;
                let mut brace_depth = 0i32;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('{') => brace_depth += 1,
                        TokKind::Punct('}') => {
                            brace_depth -= 1;
                            if brace_depth == 0 {
                                end_line = toks[j].line;
                                break;
                            }
                        }
                        TokKind::Punct(';') if brace_depth == 0 => {
                            end_line = toks[j].line;
                            break;
                        }
                        _ => {}
                    }
                    end_line = toks[j].line;
                    j += 1;
                }
                regions.push((start_line, end_line));
                i = j;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// The line range of the brace block enclosing token `i`, or the whole
/// file when `i` sits at file scope (a crate-level `#![cfg(test)]`).
fn enclosing_brace_region(toks: &[Token], i: usize) -> (u32, u32) {
    // Walk backward to the nearest unmatched `{`.
    let mut depth = 0i32;
    let mut open = None;
    for j in (0..i).rev() {
        match &toks[j].kind {
            TokKind::Punct('}') => depth += 1,
            TokKind::Punct('{') => {
                if depth == 0 {
                    open = Some(j);
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return (1, u32::MAX); // file scope: exempt everything
    };
    // Forward brace-match from the opening `{`.
    let mut depth = 0i32;
    for (j, tok) in toks.iter().enumerate().skip(open) {
        match &tok.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return (toks[open].line, toks[j].line);
                }
            }
            _ => {}
        }
    }
    (toks[open].line, u32::MAX) // unterminated: tolerate
}

pub(crate) fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
}

/// A parsed `// <tool>: allow(<rule>): <justification>` directive.
#[derive(Debug)]
struct AllowDirective {
    line: u32,
    rule: Option<&'static str>,
    justification: String,
    raw: String,
    used: bool,
}

/// Which tool a set of allow directives belongs to. storm-lint and
/// storm-analyzer share the directive grammar and hygiene checks but answer
/// to different comment prefixes and rule tables, so one file can carry
/// both kinds of exception independently.
#[derive(Debug)]
pub struct DirectiveSpec {
    /// Comment prefix, e.g. `storm-lint` (the directive is `<tool>: …`).
    pub tool: &'static str,
    /// Known `(id, kebab-name)` pairs accepted inside `allow(…)`.
    pub known: Vec<(&'static str, &'static str)>,
    /// Shown in the unknown-rule message, e.g. `R1..R6 or their names`.
    pub hint: &'static str,
}

/// The storm-lint directive dialect (`// storm-lint: allow(R1): why`).
pub fn lint_directives() -> DirectiveSpec {
    DirectiveSpec {
        tool: "storm-lint",
        known: RULES.iter().map(|r| (r.id, r.name)).collect(),
        hint: "R1..R6 or their names",
    }
}

/// Suppresses diagnostics covered by allow directives and appends directive
/// hygiene findings (unknown rule, missing justification, unused allow).
pub fn apply_allow_directives(
    spec: &DirectiveSpec,
    rel_path: &str,
    lexed: &Lexed,
    diags: &mut Vec<Diagnostic>,
) {
    let mut directives: Vec<AllowDirective> = Vec::new();
    let mut malformed: Vec<Diagnostic> = Vec::new();
    let tool = spec.tool;

    for comment in &lexed.comments {
        let text = comment.text.trim();
        // Tolerate doc-comment forms (`/// storm-lint: …` lexes with a
        // leading `/`) by trimming slashes and `!`.
        let text = text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = text.strip_prefix(tool).and_then(|r| r.strip_prefix(':')) else {
            // Near-miss: looks like an attempted directive (leads with the
            // tool name and tries to `allow`) but is missing the colon.
            // Plain prose that happens to mention the tool is fine. The
            // other tool's prefix extends past ours (`storm-lint` vs
            // `storm-analyzer`), so each dialect only claims its own.
            if text.starts_with(tool)
                && !text[tool.len()..].starts_with(char::is_alphanumeric)
                && !text[tool.len()..].starts_with('-')
                && text.contains("allow")
            {
                malformed.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: comment.line,
                    col: 1,
                    rule: "allow",
                    message: format!(
                        "looks like a {tool} directive but is missing the \
                         colon — expected `{tool}: allow(<rule>): \
                         <justification>` (got `{text}`)"
                    ),
                });
            }
            continue;
        };
        let rest = rest.trim();
        let parsed = parse_allow(rest);
        match parsed {
            Ok((rule_token, justification)) => {
                let rule = spec
                    .known
                    .iter()
                    .find(|(id, name)| {
                        id.eq_ignore_ascii_case(rule_token) || name.eq_ignore_ascii_case(rule_token)
                    })
                    .map(|(id, _)| *id);
                if rule.is_none() {
                    malformed.push(Diagnostic {
                        path: rel_path.to_string(),
                        line: comment.line,
                        col: 1,
                        rule: "allow",
                        message: format!(
                            "unknown rule `{rule_token}` in {tool} allow \
                             (known: {})",
                            spec.hint
                        ),
                    });
                    continue;
                }
                directives.push(AllowDirective {
                    line: comment.line,
                    rule,
                    justification: justification.to_string(),
                    raw: rest.to_string(),
                    used: false,
                });
            }
            Err(why) => {
                malformed.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: comment.line,
                    col: 1,
                    rule: "allow",
                    message: format!("malformed {tool} directive ({why}): `{rest}`"),
                });
            }
        }
    }

    // Suppress: a directive covers its own line and the line directly below
    // (attribute style — the directive sits above the flagged code). Stacked
    // directives chain: when the line below is itself a directive comment of
    // either dialect, coverage extends past it, so several allows — even from
    // both tools — can guard the same statement and still satisfy rustfmt.
    let directive_lines: std::collections::HashSet<u32> = lexed
        .comments
        .iter()
        .filter(|c| {
            let t = c.text.trim().trim_start_matches(['/', '!']).trim();
            t.starts_with("storm-") && t.contains("allow(")
        })
        .map(|c| c.line)
        .collect();
    diags.retain(|d| {
        for directive in &mut directives {
            let mut below = directive.line + 1;
            while directive_lines.contains(&below) {
                below += 1;
            }
            if directive.rule == Some(d.rule) && (directive.line..=below).contains(&d.line) {
                directive.used = true;
                return false;
            }
        }
        true
    });

    for directive in &directives {
        if directive.justification.is_empty() {
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: directive.line,
                col: 1,
                rule: "allow",
                message: format!(
                    "{tool} allow without a justification — write \
                     `allow({}): <why this exception is sound>`",
                    directive.rule.unwrap_or("<rule>")
                ),
            });
        } else if !directive.used {
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: directive.line,
                col: 1,
                rule: "allow",
                message: format!(
                    "unused {tool} allow (nothing to suppress here): `{}`",
                    directive.raw
                ),
            });
        }
    }
    diags.extend(malformed);
}

/// Parses `allow(<rule>)` optionally followed by `: justification`.
fn parse_allow(rest: &str) -> Result<(&str, &str), &'static str> {
    let rest = rest.strip_prefix("allow").ok_or("expected `allow(...)`")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(').ok_or("expected `(` after allow")?;
    let close = rest.find(')').ok_or("unclosed `(`")?;
    let rule = rest[..close].trim();
    if rule.is_empty() {
        return Err("empty rule name");
    }
    let tail = rest[close + 1..].trim_start();
    let justification = tail.strip_prefix(':').map_or("", str::trim);
    Ok((rule, justification))
}
