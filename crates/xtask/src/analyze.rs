//! `storm-analyzer` — the A1–A3 structural passes over [`crate::front`]
//! facts and the [`crate::callgraph`] workspace call graph, the A4–A9
//! hot-path cost passes over the [`crate::cfg`] loop-aware CFG, and the
//! A10–A13 concurrency passes over the [`crate::conc`] thread-role facts.
//!
//! | pass | name | guards against |
//! |------|------|----------------|
//! | A1 | `lock-order` | cycles in the lock-acquisition graph of `storm-core`/`storm-store`/`storm-engine` — potential deadlocks |
//! | A2 | `determinism-taint` | `HashMap`/`HashSet` iteration order, wall-clock (`Instant`/`SystemTime`), or thread-id values reachable from the sampler/estimator API — silent seeded-replay breaks (lint R2's structural sibling) |
//! | A3 | `protocol-conformance` | shard-protocol enums (those sent over a channel) with variants never constructed or never consumed by a match arm, and `Fill` sends outside any timeout/retry gather wrapper |
//! | A4 | `hot-loop-alloc` | allocation/`.clone()`/`.collect()` inside a loop of a function the core sampling API can reach — per-sample constant-factor cost on the hot path |
//! | A5 | `per-item-channel` | per-item channel `send`/`recv` inside a loop when a batched protocol variant is in scope — each message is a context switch the batch variant amortizes |
//! | A6 | `lock-across-blocking` | a lock guard held across a blocking call (`send`/`recv`/`recv_timeout`/`join`/`sleep`) — every contending thread stalls behind the block |
//! | A7 | `unconfined-worker-panic` | panic-capable ops (`unwrap`/`expect`/indexing/integer div) on a spawned worker thread with no `catch_unwind` between — a panic silently kills the shard and wedges the gather |
//! | A8 | `node-view-in-loop` | `NodeView` construction (`.visit(…)`/`.view_free_of_charge(…)`) inside a loop of a function the core sampling API reaches — per-iteration boxed-node pointer chases the frozen flat-array layout answers arithmetically |
//! | A9 | `tick-loop-alloc` | allocation/`.clone()`/`.collect()` inside a loop of a function the session scheduler's tick path reaches — the tick loops iterate live sessions, so each such site is a per-session-per-tick cost that caps serving throughput |
//! | A10 | `atomic-ordering` | half-synchronized atomic publish/guard pairs: a `Relaxed` load of a location stored with Release, or a `Relaxed` store of a location loaded with Acquire — the settled-prefix contract the delta buffer's samplers rely on |
//! | A11 | `epoch-pin` | registry snapshot discipline: publish-class calls inside a `with_current` closure (read→write self-deadlock) and pin-class calls in a sampling-cone loop (mid-stream epoch re-read biases the draw) |
//! | A12 | `protocol-fsm` | per-path protocol automaton: no Fill-class op after a Close-class op on any acyclic path, and `Swap` issued only from tick-boundary code |
//! | A13 | `blocking-channel` | blocking channel ops under a held lock, timeout-less `recv` on the tick path, and channel results unwrapped at the call site (peer-drop panics) |
//!
//! All passes are *over-approximate*: the call graph links by name, lock
//! identity is the receiver's textual path (qualified by the impl type for
//! `self.…` receivers), and guard lifetimes are assumed to extend to the end
//! of the acquiring block. A finding is therefore a *potential* problem;
//! the escape hatches are the analyzer's own allow directive
//!
//! ```text
//! // storm-analyzer: allow(A2): count() over values() is order-independent
//! ```
//!
//! and the findings baseline (`crates/xtask/analyze.baseline`), which holds
//! accepted pre-existing findings so CI only fails on *new* ones.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::time::Duration;

use crate::callgraph::{self, CallGraph, FnId};
use crate::cfg::{self, Cfg, CostKind};
use crate::conc;
use crate::front::{self, FactKind, FileFacts};
use crate::rules::DirectiveSpec;
use crate::Diagnostic;

/// One analyzer pass, for `--list` output and CI rationale printing.
#[derive(Debug, Clone, Copy)]
pub struct Pass {
    /// Short id (`A1`…`A3`).
    pub id: &'static str,
    /// Kebab-case name usable in allow directives.
    pub name: &'static str,
    /// What the pass enforces (one line).
    pub rationale: &'static str,
}

/// All passes, in id order.
pub const PASSES: [Pass; 13] = [
    Pass {
        id: "A1",
        name: "lock-order",
        rationale: "two threads taking the same locks in different orders can \
                    deadlock the executor; the lock-acquisition graph across \
                    core/store/engine must stay acyclic",
    },
    Pass {
        id: "A2",
        name: "determinism-taint",
        rationale: "HashMap/HashSet iteration order, wall-clock reads, and \
                    thread ids reaching the sampler/estimator output cone \
                    break replay-under-seed — the substrate of the paper's \
                    any-time sampling guarantee",
    },
    Pass {
        id: "A3",
        name: "protocol-conformance",
        rationale: "every shard-protocol variant must be both constructed and \
                    consumed by a match arm in its defining file, and every \
                    Fill send must sit behind a timeout/retry gather wrapper, \
                    or the scatter-gather executor can wedge on a lost message",
    },
    Pass {
        id: "A4",
        name: "hot-loop-alloc",
        rationale: "an allocation, clone, or collect inside a loop of a \
                    function the core sampling API reaches is a per-sample \
                    constant-factor cost — hoist it out of the loop or reuse \
                    a buffer",
    },
    Pass {
        id: "A5",
        name: "per-item-channel",
        rationale: "a per-item channel send/recv in a loop, with a batched \
                    protocol variant in scope, pays one context switch per \
                    item where the batch variant pays one per round",
    },
    Pass {
        id: "A6",
        name: "lock-across-blocking",
        rationale: "a lock guard held across send/recv/recv_timeout/join/\
                    sleep stalls every thread contending on that lock for \
                    the full blocking duration — drop the guard first",
    },
    Pass {
        id: "A7",
        name: "unconfined-worker-panic",
        rationale: "unwrap/expect/indexing/integer-div on a spawned worker \
                    thread with no catch_unwind between kills the shard \
                    silently; the executor's gather then waits on a corpse",
    },
    Pass {
        id: "A8",
        name: "node-view-in-loop",
        rationale: "a NodeView built per loop iteration on a sampling-cone \
                    path chases a boxed-node pointer per item; the frozen \
                    flat-array layout answers the same counts and ranges \
                    arithmetically — descend on the frozen tree or hoist \
                    the view",
    },
    Pass {
        id: "A9",
        name: "tick-loop-alloc",
        rationale: "the session scheduler's tick loops iterate every live \
                    session, so an allocation, clone, or collect inside one \
                    is a per-session-per-tick cost that caps multi-tenant \
                    serving throughput — hoist it into reused scheduler \
                    scratch",
    },
    Pass {
        id: "A10",
        name: "atomic-ordering",
        rationale: "a Relaxed load guarding data published by a Release \
                    store (or a Relaxed store feeding an Acquire load) is \
                    half a synchronization: the settled-prefix and handoff \
                    contracts need the full Release/Acquire pair",
    },
    Pass {
        id: "A11",
        name: "epoch-pin",
        rationale: "publishing from inside with_current self-deadlocks on \
                    the registry lock, and re-pinning the epoch inside a \
                    sampling loop mixes epochs mid-draw — in-flight streams \
                    must keep their open-time snapshot",
    },
    Pass {
        id: "A12",
        name: "protocol-fsm",
        rationale: "on every acyclic path, session protocol ops must \
                    respect Open before Fill before Close — no Fill after \
                    Close — and Swap may only be issued from tick-boundary \
                    code, or an epoch swap can tear an in-flight session's \
                    pinned snapshot",
    },
    Pass {
        id: "A13",
        name: "blocking-channel",
        rationale: "a blocking channel op under a lock stalls every \
                    contender, a timeout-less recv on the tick path stalls \
                    every live session, and an unwrapped channel result \
                    panics the thread when its peer endpoint drops",
    },
];

/// Renders a finding with the analyzer's own tool prefix
/// ([`Diagnostic`]'s `Display` belongs to storm-lint).
pub fn render(d: &Diagnostic) -> String {
    format!(
        "{}:{}:{}: storm-analyzer[{}]: {}",
        d.path, d.line, d.col, d.rule, d.message
    )
}

/// The storm-analyzer directive dialect
/// (`// storm-analyzer: allow(A2): why`).
pub fn analyzer_directives() -> DirectiveSpec {
    DirectiveSpec {
        tool: "storm-analyzer",
        known: PASSES.iter().map(|p| (p.id, p.name)).collect(),
        hint: "A1..A13 or their names",
    }
}

/// Path prefixes A1 builds its lock graph from.
const A1_SCOPE: [&str; 3] = [
    "crates/core/src/",
    "crates/store/src/",
    "crates/engine/src/",
];

/// Path prefixes whose determinism facts A2 reports.
const A2_SCOPE: [&str; 3] = [
    "crates/core/src/",
    "crates/estimators/src/",
    "crates/rtree/src/",
];

/// Core sampling-API names that root the A2 output cone (alongside every
/// public estimator function).
const A2_CORE_ROOTS: [&str; 5] = ["next_sample", "next_batch", "draw", "prefill", "sampler"];

/// Path prefixes whose hot-loop costs A4 reports (the A2 scope plus the
/// store, whose scan loops feed the executor).
const A4_SCOPE: [&str; 4] = [
    "crates/core/src/",
    "crates/estimators/src/",
    "crates/rtree/src/",
    "crates/store/src/",
];

/// Paths A5 examines for per-item channel traffic: the scatter-gather
/// executor and the store (the two places the workspace does channel IO).
const A5_SCOPE: [&str; 2] = ["crates/core/src/parallel.rs", "crates/store/src/"];

/// Path prefixes A7 scans for worker-thread panic exposure (where threads
/// are spawned: executor, store, engine).
const A7_SCOPE: [&str; 3] = [
    "crates/core/src/",
    "crates/store/src/",
    "crates/engine/src/",
];

/// Path prefixes A8 scans for per-iteration `NodeView` construction (the
/// boxed tree and the samplers over it).
const A8_SCOPE: [&str; 2] = ["crates/rtree/src/", "crates/core/src/"];

/// Path prefix A9 scans: the serving layer, whose scheduler tick loops
/// iterate live sessions.
const A9_SCOPE: [&str; 1] = ["crates/server/src/"];

/// Function names rooting the A9 tick cone within the server crate: the
/// scheduler thread's entry loop and its per-tick driver.
const A9_ROOTS: [&str; 2] = ["run", "tick"];

/// Roots of the scheduler tick cone ([`A9_ROOTS`] within the server
/// crate). Shared by A9 (tick-loop-alloc) and A13 (blocking-channel).
pub(crate) fn tick_roots(g: &CallGraph<'_>) -> Vec<FnId> {
    let mut roots: Vec<FnId> = Vec::new();
    for id in g.all_fns() {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A9_SCOPE) {
            continue;
        }
        if A9_ROOTS.contains(&f.name.as_str()) {
            roots.push(id);
        }
    }
    roots.sort();
    roots
}

pub(crate) fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|s| path.starts_with(s))
}

/// Wall-clock spent in each pass of one analysis run, in [`PASSES`] order.
#[derive(Debug, Clone, Default)]
pub struct PassTimings {
    /// `(pass id, duration)` pairs, one per pass.
    pub per_pass: Vec<(&'static str, Duration)>,
    /// Lex + fact extraction + call-graph + CFG construction time.
    pub front_end: Duration,
    /// Whole-run wall clock (front end + passes + directive application).
    pub total: Duration,
}

/// Analyzes a set of `(rel_path, source)` files: extracts facts, builds the
/// call graph, per-fn CFGs, and concurrency fact tables, runs A1–A13, and
/// applies analyzer allow directives per file.
pub fn analyze_sources(files: &[(String, String)]) -> Vec<Diagnostic> {
    analyze_sources_opts(files, false).0
}

/// [`analyze_sources`] plus per-pass wall-clock timings (for `--timings`
/// and the CI time budget).
pub fn analyze_sources_timed(files: &[(String, String)]) -> (Vec<Diagnostic>, PassTimings) {
    analyze_sources_opts(files, false)
}

/// [`analyze_sources_timed`] with optional pass-level parallelism: the
/// fact tables are built once (they dominate the wall clock and are
/// inherently sequential per file), then every pass reads them from its
/// own thread. Findings and per-pass timings are identical either way —
/// passes share no mutable state and results are collected in [`PASSES`]
/// order; each pass times itself on its own thread, so `--timings` stays
/// honest about per-pass cost while `total` reflects the parallel wall
/// clock.
pub fn analyze_sources_opts(
    files: &[(String, String)],
    parallel: bool,
) -> (Vec<Diagnostic>, PassTimings) {
    let t_start = std::time::Instant::now();
    let lexed: Vec<crate::lexer::Lexed> = files.iter().map(|(_, s)| crate::lexer::lex(s)).collect();
    let facts: Vec<FileFacts> = files
        .iter()
        .zip(&lexed)
        .map(|((p, _), l)| front::extract(p, l))
        .collect();
    let graph = callgraph::build(&facts);
    let cfgs: Vec<Vec<Cfg>> = facts
        .iter()
        .zip(&lexed)
        .map(|(file, lex)| {
            file.fns
                .iter()
                .map(|f| cfg::build(&lex.tokens, f.body_span))
                .collect()
        })
        .collect();
    let concs: Vec<conc::ConcFacts> = facts
        .iter()
        .zip(&lexed)
        .map(|(file, lex)| conc::extract(file, lex))
        .collect();
    let mut timings = PassTimings {
        front_end: t_start.elapsed(),
        ..PassTimings::default()
    };

    let run_pass = |id: &'static str| -> Vec<Diagnostic> {
        match id {
            "A1" => pass_lock_order(&graph),
            "A2" => pass_determinism_taint(&graph),
            "A3" => pass_protocol_conformance(&graph),
            "A4" => pass_hot_loop_alloc(&graph, &cfgs),
            "A5" => pass_per_item_channel(&graph, &cfgs),
            "A6" => pass_lock_across_blocking(&graph, &cfgs),
            "A7" => pass_unconfined_worker_panic(&graph, &cfgs),
            "A8" => pass_node_view_in_loop(&graph, &cfgs),
            "A9" => pass_tick_loop_alloc(&graph, &cfgs),
            "A10" => conc::pass_atomic_ordering(&graph, &concs),
            "A11" => conc::pass_epoch_pin(&graph, &cfgs, &concs),
            "A12" => conc::pass_protocol_fsm(&graph, &cfgs, &concs),
            "A13" => conc::pass_channel_blocking(&graph, &cfgs, &concs),
            other => unreachable!("unknown pass id {other}"),
        }
    };
    let timed = |id: &'static str| -> (Vec<Diagnostic>, (&'static str, Duration)) {
        let t = std::time::Instant::now();
        let d = run_pass(id);
        (d, (id, t.elapsed()))
    };

    let mut diags = Vec::new();
    if parallel {
        // The fact tables are shared immutably; one scoped thread per pass.
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = PASSES.iter().map(|p| s.spawn(|| timed(p.id))).collect();
            handles
                .into_iter()
                // storm-lint: allow(R6): a panicking analyzer pass must fail the xtask run loudly — re-raising here is the point, there is no gather to wedge
                .map(|h| h.join().expect("analyzer pass panicked"))
                .collect::<Vec<_>>()
        });
        for (d, t) in results {
            diags.extend(d);
            timings.per_pass.push(t);
        }
    } else {
        for p in &PASSES {
            let (d, t) = timed(p.id);
            diags.extend(d);
            timings.per_pass.push(t);
        }
    }

    // Allow directives are per file: partition, apply, re-merge.
    let mut final_diags = Vec::new();
    let spec = analyzer_directives();
    for ((path, _), lex) in files.iter().zip(&lexed) {
        let mut file_diags: Vec<Diagnostic> =
            diags.iter().filter(|d| &d.path == path).cloned().collect();
        crate::rules::apply_allow_directives(&spec, path, lex, &mut file_diags);
        final_diags.extend(file_diags);
    }
    final_diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    timings.total = t_start.elapsed();
    (final_diags, timings)
}

/// Walks the workspace sources (same roots as [`crate::lint_workspace`])
/// and analyzes every `.rs` file together, so the call graph crosses crate
/// boundaries.
pub fn analyze_workspace(repo_root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    Ok(analyze_workspace_timed(repo_root)?.0)
}

/// [`analyze_workspace`] with per-pass timings.
pub fn analyze_workspace_timed(
    repo_root: &Path,
) -> std::io::Result<(Vec<Diagnostic>, PassTimings)> {
    analyze_workspace_opts(repo_root, false)
}

/// [`analyze_workspace_timed`] with optional pass-level parallelism
/// (`cargo xtask analyze --parallel`).
pub fn analyze_workspace_opts(
    repo_root: &Path,
    parallel: bool,
) -> std::io::Result<(Vec<Diagnostic>, PassTimings)> {
    let mut sources = Vec::new();
    for file in crate::workspace_rs_files(repo_root)? {
        let rel = file
            .strip_prefix(repo_root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&file)?));
    }
    Ok(analyze_sources_opts(&sources, parallel))
}

// ---------------------------------------------------------------------------
// A1: lock-order
// ---------------------------------------------------------------------------

/// Identity of a lock for graph purposes: the receiver's textual path,
/// prefixed by the impl type for `self.…` receivers so `self.meta` in two
/// different types stays two locks.
pub(crate) fn lock_key(f: &front::FnSummary, recv: &str) -> String {
    if recv == "self" || recv.starts_with("self.") {
        if let Some(q) = &f.qual {
            return format!("{q}::{recv}");
        }
    }
    recv.to_string()
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct EdgeProv {
    path: String,
    line: u32,
    col: u32,
    fn_key: String,
}

/// Builds the lock-acquisition graph and reports every strongly-connected
/// component containing a cycle (including interprocedural self-loops: a
/// function re-acquiring, via a callee, a lock it already holds).
fn pass_lock_order(g: &CallGraph<'_>) -> Vec<Diagnostic> {
    // edges[a][b] = example provenance for "b acquired while a held".
    let mut edges: BTreeMap<String, BTreeMap<String, EdgeProv>> = BTreeMap::new();
    let mut trans_locks: BTreeMap<FnId, BTreeSet<String>> = BTreeMap::new();
    let mut locks_of = |g: &CallGraph<'_>, id: FnId| -> BTreeSet<String> {
        if let Some(cached) = trans_locks.get(&id) {
            return cached.clone();
        }
        let mut set = BTreeSet::new();
        for r in g.reachable_from(&[id]) {
            if !in_scope(g.path(r), &A1_SCOPE) {
                continue;
            }
            let rf = g.fun(r);
            for l in &rf.locks {
                set.insert(lock_key(rf, &l.recv));
            }
        }
        trans_locks.insert(id, set.clone());
        set
    };

    for id in g.all_fns() {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A1_SCOPE) || f.locks.is_empty() {
            continue;
        }
        let fn_key = f.key();
        // Intra: later acquisitions while earlier guards (lexically) held.
        for (i, held) in f.locks.iter().enumerate() {
            let held_key = lock_key(f, &held.recv);
            for later in &f.locks[i + 1..] {
                let later_key = lock_key(f, &later.recv);
                if later_key == held_key {
                    continue; // drop/re-lock of the same lock, not an order
                }
                edges
                    .entry(held_key.clone())
                    .or_default()
                    .entry(later_key)
                    .or_insert_with(|| EdgeProv {
                        path: g.path(id).to_string(),
                        line: later.line,
                        col: later.col,
                        fn_key: fn_key.clone(),
                    });
            }
            // Inter: locks acquired by callees invoked after this point.
            for call in &f.calls {
                if call.order <= held.order {
                    continue;
                }
                for callee in g.resolve_call(call) {
                    if callee == id {
                        continue;
                    }
                    for callee_lock in locks_of(g, callee) {
                        edges
                            .entry(held_key.clone())
                            .or_default()
                            .entry(callee_lock)
                            .or_insert_with(|| EdgeProv {
                                path: g.path(id).to_string(),
                                line: call.line,
                                col: 1,
                                fn_key: fn_key.clone(),
                            });
                    }
                }
            }
        }
    }

    // Cycle detection: node n is cyclic when n reaches itself through >= 1
    // edge. Group mutually-reaching cyclic nodes into one report.
    let reach = |from: &str| -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<&str> = edges
            .get(from)
            .map(|m| m.keys().map(String::as_str).collect())
            .unwrap_or_default();
        while let Some(n) = stack.pop() {
            if seen.insert(n.to_string()) {
                if let Some(next) = edges.get(n) {
                    stack.extend(next.keys().map(String::as_str));
                }
            }
        }
        seen
    };
    let reachable: BTreeMap<&String, BTreeSet<String>> =
        edges.keys().map(|n| (n, reach(n))).collect();

    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    for (node, reached) in &reachable {
        if !reached.contains(node.as_str()) {
            continue; // not on a cycle
        }
        // SCC of `node`: every cyclic partner that also reaches back.
        let mut scc: Vec<String> = reached
            .iter()
            .filter(|m| reachable.get(m).is_some_and(|r| r.contains(node.as_str())))
            .cloned()
            .collect();
        scc.sort();
        if !reported.insert(scc.clone()) {
            continue;
        }
        // Anchor the report at the smallest in-SCC edge provenance.
        let prov = scc
            .iter()
            .filter_map(|a| edges.get(a))
            .flat_map(|m| m.iter())
            .filter(|(b, _)| scc.contains(b))
            .map(|(_, p)| p)
            .min()
            .cloned()
            .expect("cyclic SCC has at least one internal edge");
        out.push(Diagnostic {
            path: prov.path,
            line: prov.line,
            col: prov.col,
            rule: "A1",
            message: format!(
                "lock-order cycle between {{{}}} — e.g. acquired in \
                 conflicting order in `{}`; threads interleaving these \
                 acquisitions can deadlock [lock-order]",
                scc.join(", "),
                prov.fn_key
            ),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// A2: determinism taint
// ---------------------------------------------------------------------------

/// Roots of the sampling-API cone: the core sampling API by name, plus
/// every public estimator fn. Shared by A2 (taint cone) and A4 (hot-path
/// cone).
pub(crate) fn sampling_api_roots(g: &CallGraph<'_>) -> Vec<FnId> {
    let mut roots: Vec<FnId> = Vec::new();
    for id in g.all_fns() {
        let f = g.fun(id);
        if f.in_test {
            continue;
        }
        let path = g.path(id);
        let core_root =
            path.starts_with("crates/core/src/") && A2_CORE_ROOTS.contains(&f.name.as_str());
        let est_root = path.starts_with("crates/estimators/src/") && f.is_pub;
        if core_root || est_root {
            roots.push(id);
        }
    }
    roots.sort();
    roots
}

/// Flags nondeterministic inputs (hash iteration order, wall clock, thread
/// ids) in any function the sampler/estimator API can reach.
fn pass_determinism_taint(g: &CallGraph<'_>) -> Vec<Diagnostic> {
    let roots = sampling_api_roots(g);

    // BFS from each root in order; first root to reach a function names it
    // in the diagnostic (deterministic because roots are sorted).
    let mut cone: BTreeMap<FnId, FnId> = BTreeMap::new();
    for &root in &roots {
        for id in g.reachable_from(&[root]) {
            cone.entry(id).or_insert(root);
        }
    }

    let mut out = Vec::new();
    for (&id, &root) in &cone {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A2_SCOPE) {
            continue;
        }
        let root_key = g.fun(root).key();
        for fact in &f.facts {
            let message = match &fact.kind {
                FactKind::HashIter { var, method } => format!(
                    "`{var}` ({method}) iterates a HashMap/HashSet inside \
                     `{}`, which the sampler/estimator API `{root_key}` can \
                     reach — RandomState ordering differs per process and \
                     breaks seeded replay; use BTreeMap or insertion-ordered \
                     storage [determinism-taint]",
                    f.key()
                ),
                FactKind::TimeSource { what } => format!(
                    "`{what}::now()` inside `{}`, which the \
                     sampler/estimator API `{root_key}` can reach — \
                     wall-clock values differ per run and break seeded \
                     replay [determinism-taint]",
                    f.key()
                ),
                FactKind::ThreadId => format!(
                    "thread-id inside `{}`, which the sampler/estimator API \
                     `{root_key}` can reach — scheduler-dependent values \
                     break seeded replay [determinism-taint]",
                    f.key()
                ),
                FactKind::FloatAccum => continue, // summarised, not reported
            };
            out.push(Diagnostic {
                path: g.path(id).to_string(),
                line: fact.line,
                col: fact.col,
                rule: "A2",
                message,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A3: protocol conformance
// ---------------------------------------------------------------------------

/// Checks shard-protocol enums — any enum some non-test function sends over
/// a channel — for produced-and-consumed conformance, and `Fill` sends for
/// a timeout/retry wrapper.
fn pass_protocol_conformance(g: &CallGraph<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, file) in g.files.iter().enumerate() {
        // Protocol enums: declared here and sent by some non-test fn.
        let sent: BTreeSet<&str> = file
            .fns
            .iter()
            .filter(|f| !f.in_test)
            .flat_map(|f| &f.variant_uses)
            .filter(|u| u.in_send)
            .map(|u| u.enum_name.as_str())
            .collect();
        for decl in &file.enums {
            if !sent.contains(decl.name.as_str()) {
                continue;
            }
            for variant in &decl.variants {
                let mut produced = false;
                let mut consumed = false;
                for f in file.fns.iter().filter(|f| !f.in_test) {
                    for u in &f.variant_uses {
                        if u.enum_name == decl.name && &u.variant == variant {
                            if u.is_consume {
                                consumed = true;
                            } else {
                                produced = true;
                            }
                        }
                    }
                }
                let missing = match (produced, consumed) {
                    (true, true) => continue,
                    (false, true) => "constructed by no producer site",
                    (true, false) => "consumed by no match arm",
                    (false, false) => "neither constructed nor consumed",
                };
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: decl.line,
                    col: 1,
                    rule: "A3",
                    message: format!(
                        "protocol variant `{}::{variant}` is {missing} in \
                         this file — a half-wired protocol arm wedges or \
                         leaks shard workers [protocol-conformance]",
                        decl.name
                    ),
                });
            }
        }

        // Fill sends must sit in (or call into) a timeout/retry gather.
        for (gi, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            for u in &f.variant_uses {
                if u.variant != "Fill"
                    || u.is_consume
                    || !u.in_send
                    || !sent.contains(u.enum_name.as_str())
                {
                    continue;
                }
                let guarded = g
                    .reachable_from(&[(fi, gi)])
                    .iter()
                    .any(|&id| g.fun(id).has_recv_timeout);
                if !guarded {
                    out.push(Diagnostic {
                        path: file.path.clone(),
                        line: u.line,
                        col: u.col,
                        rule: "A3",
                        message: format!(
                            "`{}::Fill` sent from `{}` with no recv_timeout \
                             in itself or any callee — a lost reply blocks \
                             the gather forever [protocol-conformance]",
                            u.enum_name,
                            f.key()
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A4: hot-loop-alloc
// ---------------------------------------------------------------------------

/// Flags allocations, `.clone()`, and `.collect()` at loop depth >= 1 in
/// functions the core sampling API can reach — per-sample constant-factor
/// costs on the hot path. Cold sites (assertion/panic macro arguments) are
/// skipped by policy: failure-path formatting is not hot-path work.
fn pass_hot_loop_alloc(g: &CallGraph<'_>, cfgs: &[Vec<Cfg>]) -> Vec<Diagnostic> {
    let roots = sampling_api_roots(g);
    let cone = g.reachable_from(&roots);
    let mut out = Vec::new();
    for &id in &cone {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A4_SCOPE) {
            continue;
        }
        let body = &cfgs[id.0][id.1];
        for site in &body.sites {
            if site.loop_depth == 0 || site.cold {
                continue;
            }
            let what = match &site.kind {
                CostKind::Alloc(w) => format!("allocation `{w}`"),
                CostKind::Clone => "`.clone()`".to_string(),
                CostKind::Collect => "`.collect()`".to_string(),
                _ => continue,
            };
            out.push(Diagnostic {
                path: g.path(id).to_string(),
                line: site.line,
                col: site.col,
                rule: "A4",
                message: format!(
                    "{what} at loop depth {} inside `{}`, which the core \
                     sampling API reaches — a per-item constant cost on the \
                     hot path; hoist it out of the loop or reuse a buffer \
                     [hot-loop-alloc]",
                    site.loop_depth,
                    f.key()
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A5: per-item-channel
// ---------------------------------------------------------------------------

/// Flags channel `send`/`recv` ops inside a loop when a batched protocol
/// variant is in scope in the same file (an enum variant or function whose
/// name contains "batch"): the batch variant amortizes one context switch
/// per round where the per-item op pays one per item.
///
/// A send whose payload mentions the batched variant by name is the batch
/// path itself — telling it to batch would be circular — so those sites
/// are exempt.
fn pass_per_item_channel(g: &CallGraph<'_>, cfgs: &[Vec<Cfg>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, file) in g.files.iter().enumerate() {
        if !in_scope(&file.path, &A5_SCOPE) {
            continue;
        }
        // "Batched variant in scope": a same-file protocol-enum variant or
        // fn named after batching. Purely lexical, like the rest of the
        // front end — the point is to fire only where a batched
        // alternative demonstrably exists.
        let batched: Option<String> = file
            .enums
            .iter()
            .flat_map(|e| e.variants.iter().map(move |v| format!("{}::{v}", e.name)))
            .find(|v| v.to_lowercase().contains("batch"))
            .or_else(|| {
                file.fns
                    .iter()
                    .find(|f| f.name.to_lowercase().contains("batch"))
                    .map(front::FnSummary::key)
            });
        let Some(batched) = batched else { continue };
        for (gi, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            for site in &cfgs[fi][gi].sites {
                if site.loop_depth == 0 || site.cold || site.sends_batch {
                    continue;
                }
                let op = match &site.kind {
                    CostKind::ChannelSend(m) | CostKind::ChannelRecv(m) => m,
                    _ => continue,
                };
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: site.line,
                    col: site.col,
                    rule: "A5",
                    message: format!(
                        "per-item `.{op}(…)` at loop depth {} inside `{}` \
                         while a batched variant (`{batched}`) is in scope — \
                         every message is a channel round-trip the batch \
                         variant amortizes; send/receive batches per round \
                         [per-item-channel]",
                        site.loop_depth,
                        f.key()
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A6: lock-across-blocking
// ---------------------------------------------------------------------------

/// Flags blocking calls (`send`, `recv`, `recv_timeout`, `recv_deadline`,
/// `join`, `sleep` — never the `try_*` variants) made while a lock guard is
/// held. The held region is the CFG's lexical approximation: acquisition to
/// `drop(guard)`, statement end (temporary guards), or enclosing block
/// close.
fn pass_lock_across_blocking(g: &CallGraph<'_>, cfgs: &[Vec<Cfg>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for id in g.all_fns() {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A1_SCOPE) {
            continue;
        }
        let body = &cfgs[id.0][id.1];
        for region in &body.lock_regions {
            for site in &body.sites {
                if !site.kind.is_blocking() || !(region.held.0..=region.held.1).contains(&site.tok)
                {
                    continue;
                }
                let op = match &site.kind {
                    CostKind::ChannelSend(m) | CostKind::ChannelRecv(m) | CostKind::Blocking(m) => {
                        m
                    }
                    _ => unreachable!("is_blocking() admits only channel/blocking kinds"),
                };
                out.push(Diagnostic {
                    path: g.path(id).to_string(),
                    line: site.line,
                    col: site.col,
                    rule: "A6",
                    message: format!(
                        "blocking `.{op}(…)` inside `{}` while the `{}` \
                         guard (acquired line {}) is held — every thread \
                         contending on that lock stalls for the full \
                         blocking duration; drop the guard first \
                         [lock-across-blocking]",
                        f.key(),
                        region.recv,
                        region.line
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A7: unconfined-worker-panic
// ---------------------------------------------------------------------------

/// Flags panic-capable ops that run on a spawned worker thread with no
/// `catch_unwind` between the spawn and the op. Two layers:
///
/// 1. **lexical** — panic sites directly inside a `spawn(…)` argument list
///    and not inside a `catch_unwind(…)` argument list;
/// 2. **spawn entry** — one interprocedural hop: functions called directly
///    from an unprotected spawn closure (the `spawn(move || run_shard(…))`
///    pattern) have their own panic sites flagged too.
///
/// Propagation deliberately stops at one hop: the call graph links method
/// calls by bare name, so following the spawn entry's calls transitively
/// (e.g. `serve_stream` calling `.next_batch(…)`) would mark every
/// same-named sampler method in the workspace — including coordinator-side
/// code — as worker code. One precise hop plus the lexical layer keeps the
/// pass honest; R1 (`no-unwrap`) covers general library-path panic hygiene.
///
/// Cold sites (assertion/panic macro arguments) are skipped: deliberate
/// panics are the containment mechanism's job, not an accident.
fn pass_unconfined_worker_panic(g: &CallGraph<'_>, cfgs: &[Vec<Cfg>]) -> Vec<Diagnostic> {
    // Spawn entries: targets of unprotected calls inside spawn args.
    let mut worker: BTreeSet<FnId> = BTreeSet::new();
    let resolve = |c: &cfg::CfgCall| -> Vec<FnId> {
        let synth = front::CallSite {
            name: c.name.clone(),
            qual: c.qual.clone(),
            is_method: c.is_method,
            line: c.line,
            order: 0,
        };
        g.resolve_call(&synth)
    };
    for id in g.all_fns() {
        if g.fun(id).in_test {
            continue;
        }
        for c in &cfgs[id.0][id.1].calls {
            if c.in_spawn && !c.in_catch {
                worker.extend(resolve(c));
            }
        }
    }

    let mut seen: BTreeSet<(String, u32, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    let mut report = |path: &str, f: &front::FnSummary, site: &cfg::CostSite, how: &str| {
        let CostKind::PanicOp(op) = &site.kind else {
            return;
        };
        if !seen.insert((path.to_string(), site.line, site.col)) {
            return;
        }
        out.push(Diagnostic {
            path: path.to_string(),
            line: site.line,
            col: site.col,
            rule: "A7",
            message: format!(
                "panic-capable `{op}` {how} `{}` with no catch_unwind \
                 between — a panic here kills the worker silently and the \
                 gather waits on a corpse; contain it or return a Result \
                 [unconfined-worker-panic]",
                f.key()
            ),
        });
    };
    for id in g.all_fns() {
        let f = g.fun(id);
        let path = g.path(id);
        if f.in_test || !in_scope(path, &A7_SCOPE) {
            continue;
        }
        let body = &cfgs[id.0][id.1];
        let in_worker_fn = worker.contains(&id);
        for site in &body.sites {
            if site.cold || !matches!(site.kind, CostKind::PanicOp(_)) {
                continue;
            }
            let in_catch = cfg::in_ranges(&body.catch_args, site.tok);
            if in_catch {
                continue;
            }
            if cfg::in_ranges(&body.spawn_args, site.tok) {
                report(path, f, site, "in the spawn closure of");
            } else if in_worker_fn {
                report(path, f, site, "on the worker-thread path through");
            }
        }
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col)));
    out
}

// ---------------------------------------------------------------------------
// A8: node-view-in-loop
// ---------------------------------------------------------------------------

/// Methods that materialise a boxed-tree `NodeView`.
const NODE_VIEW_CTORS: [&str; 2] = ["visit", "view_free_of_charge"];

/// Flags `NodeView` construction at loop depth >= 1 in functions the core
/// sampling API can reach. Each view is a boxed-node pointer chase (plus a
/// simulated block read for the charged `visit`); the frozen flat-array
/// layout (`FrozenRTree`) answers the same child counts and item ranges
/// with index arithmetic over contiguous columns. A view built per
/// iteration on the sampling cone is therefore exactly the cost the frozen
/// kernel exists to remove — descend on the frozen tree, or hoist the view
/// out of the loop when the node is loop-invariant.
fn pass_node_view_in_loop(g: &CallGraph<'_>, cfgs: &[Vec<Cfg>]) -> Vec<Diagnostic> {
    let roots = sampling_api_roots(g);
    let cone = g.reachable_from(&roots);
    let mut out = Vec::new();
    for &id in &cone {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A8_SCOPE) {
            continue;
        }
        for call in &cfgs[id.0][id.1].calls {
            if call.loop_depth == 0
                || !call.is_method
                || !NODE_VIEW_CTORS.contains(&call.name.as_str())
            {
                continue;
            }
            out.push(Diagnostic {
                path: g.path(id).to_string(),
                line: call.line,
                col: call.col,
                rule: "A8",
                message: format!(
                    "NodeView built by `.{}(…)` at loop depth {} inside \
                     `{}`, which the core sampling API reaches — one boxed-\
                     node pointer chase per iteration; the frozen flat-array \
                     layout answers the same counts/ranges arithmetically \
                     [node-view-in-loop]",
                    call.name,
                    call.loop_depth,
                    f.key()
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A9: tick-loop-alloc
// ---------------------------------------------------------------------------

/// Flags allocations, `.clone()`, and `.collect()` at loop depth >= 1 in
/// functions the session scheduler's tick path ([`A9_ROOTS`] within the
/// server crate) can reach. The scheduler's loops iterate live sessions,
/// so each such site is a per-session-per-tick cost: at S sessions it
/// scales the tick by S allocator round-trips, exactly the overhead the
/// scheduler's reused scratch buffers exist to avoid (A4's sibling for the
/// serving layer). Cold sites (assertion/panic macro arguments) are
/// skipped, as in A4.
fn pass_tick_loop_alloc(g: &CallGraph<'_>, cfgs: &[Vec<Cfg>]) -> Vec<Diagnostic> {
    let cone = g.reachable_from(&tick_roots(g));
    let mut out = Vec::new();
    for &id in &cone {
        let f = g.fun(id);
        if f.in_test || !in_scope(g.path(id), &A9_SCOPE) {
            continue;
        }
        let body = &cfgs[id.0][id.1];
        for site in &body.sites {
            if site.loop_depth == 0 || site.cold {
                continue;
            }
            let what = match &site.kind {
                CostKind::Alloc(w) => format!("allocation `{w}`"),
                CostKind::Clone => "`.clone()`".to_string(),
                CostKind::Collect => "`.collect()`".to_string(),
                _ => continue,
            };
            out.push(Diagnostic {
                path: g.path(id).to_string(),
                line: site.line,
                col: site.col,
                rule: "A9",
                message: format!(
                    "{what} at loop depth {} inside `{}`, which the session \
                     scheduler's tick path reaches — a per-session cost paid \
                     every tick; hoist it into reused scheduler scratch \
                     [tick-loop-alloc]",
                    site.loop_depth,
                    f.key()
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// One accepted finding: `<pass> <path> <message>` (the line number is
/// deliberately absent so accepted findings survive unrelated edits).
fn baseline_entry(d: &Diagnostic) -> String {
    format!("{} {} {}", d.rule, d.path, d.message)
}

/// Parses a baseline file: one entry per line, `#` comments and blank
/// lines skipped.
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(ToString::to_string)
        .collect()
}

/// Splits findings against a baseline: `(new, accepted, stale_entries)`.
pub fn apply_baseline(
    diags: Vec<Diagnostic>,
    baseline: &BTreeSet<String>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<String>) {
    let mut matched: BTreeSet<&str> = BTreeSet::new();
    let mut new = Vec::new();
    let mut accepted = Vec::new();
    for d in diags {
        let entry = baseline_entry(&d);
        if let Some(hit) = baseline.iter().find(|b| **b == entry) {
            matched.insert(hit.as_str());
            accepted.push(d);
        } else {
            new.push(d);
        }
    }
    let stale = baseline
        .iter()
        .filter(|b| !matched.contains(b.as_str()))
        .cloned()
        .collect();
    (new, accepted, stale)
}

/// Renders findings as baseline-file content (with a header comment).
pub fn render_baseline(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# storm-analyzer findings baseline.\n\
         # One accepted finding per line: `<pass> <path> <message>`.\n\
         # Regenerate with `cargo xtask analyze --update-baseline`; prefer\n\
         # fixing findings or justifying them with an allow directive, and\n\
         # keep an explanatory comment above anything accepted here.\n",
    );
    let mut entries: Vec<String> = diags.iter().map(baseline_entry).collect();
    entries.sort();
    entries.dedup();
    for e in entries {
        out.push_str(&e);
        out.push('\n');
    }
    out
}

/// JSON string escaping per RFC 8259 (the workspace is offline, no serde).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn json_finding(d: &Diagnostic) -> String {
    format!(
        "{{\"pass\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
        json_escape(d.rule),
        json_escape(&d.path),
        d.line,
        d.col,
        json_escape(&d.message)
    )
}

/// Renders one analysis run as the machine-readable `--json` artifact CI
/// uploads: new and baselined findings, stale baseline entries, and
/// per-pass wall-clock timings (milliseconds).
pub fn render_json(
    new: &[Diagnostic],
    accepted: &[Diagnostic],
    stale: &[String],
    timings: &PassTimings,
) -> String {
    let ms = |d: Duration| d.as_secs_f64() * 1000.0;
    let list = |diags: &[Diagnostic]| diags.iter().map(json_finding).collect::<Vec<_>>().join(",");
    let stale_list = stale
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect::<Vec<_>>()
        .join(",");
    let per_pass = timings
        .per_pass
        .iter()
        .map(|(id, d)| format!("\"{}\":{:.3}", id, ms(*d)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\n  \"clean\": {},\n  \"new\": [{}],\n  \"baselined\": [{}],\n  \
         \"stale_baseline\": [{}],\n  \"timings_ms\": {{\"front_end\":{:.3},\
         \"total\":{:.3},\"per_pass\":{{{}}}}}\n}}\n",
        new.is_empty(),
        list(new),
        list(accepted),
        stale_list,
        ms(timings.front_end),
        ms(timings.total),
        per_pass
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_one(path: &str, src: &str) -> Vec<Diagnostic> {
        analyze_sources(&[(path.to_string(), src.to_string())])
    }

    #[test]
    fn a2_allow_directive_suppresses() {
        let src = "\
pub struct S { counts: HashMap<u32, u32> }
impl S {
    // storm-analyzer: allow(A2): count() is order-independent
    pub fn total(&self) -> u32 { self.counts.values().sum() }
}
";
        let diags = analyze_one("crates/estimators/src/demo.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stacked_allow_directives_chain_to_the_code_line_below() {
        let src = "\
// storm-analyzer: allow(A5): upper directive in the stack
// storm-analyzer: allow(A13): lower directive in the stack
fn f() {}
";
        let lexed = crate::lexer::lex(src);
        let at = |rule: &'static str| crate::Diagnostic {
            path: "crates/core/src/demo.rs".to_string(),
            line: 3,
            col: 1,
            rule,
            message: "synthetic".to_string(),
        };
        let mut diags = vec![at("A5"), at("A13")];
        crate::rules::apply_allow_directives(
            &analyzer_directives(),
            "crates/core/src/demo.rs",
            &lexed,
            &mut diags,
        );
        // Both findings on the code line are suppressed — the upper
        // directive's coverage chains through the lower directive's line —
        // and neither allow is reported unused.
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn a2_unknown_rule_in_directive_is_flagged() {
        let src = "// storm-analyzer: allow(A99): nope\nfn f() {}\n";
        let diags = analyze_one("crates/core/src/demo.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow");
        assert!(diags[0].message.contains("A1..A13"), "{}", diags[0].message);
    }

    #[test]
    fn a8_flags_node_view_in_sampling_loop() {
        let src = "\
impl S {
    pub fn next_sample(&mut self) -> u32 {
        self.descend()
    }
    fn descend(&self) -> u32 {
        let mut id = 0;
        loop {
            let view = self.tree.visit(id);
            if view.is_leaf() { return id; }
            id += 1;
        }
    }
}
";
        let diags = analyze_one("crates/core/src/demo.rs", src);
        let a8: Vec<_> = diags.iter().filter(|d| d.rule == "A8").collect();
        assert_eq!(a8.len(), 1, "{diags:?}");
        assert!(a8[0].message.contains("node-view-in-loop"));
    }

    #[test]
    fn a8_ignores_views_outside_loops_and_allows() {
        // Straight-line view: not flagged. Looped view under an allow
        // directive: suppressed.
        let src = "\
impl S {
    pub fn next_sample(&mut self) -> u32 {
        let v = self.tree.visit(0);
        loop {
            // storm-analyzer: allow(A8): boxed baseline by design
            let w = self.tree.view_free_of_charge(1);
            if w.is_leaf() { return 1; }
        }
    }
}
";
        let diags = analyze_one("crates/core/src/demo.rs", src);
        assert!(diags.iter().all(|d| d.rule != "A8"), "{diags:?}");
    }

    #[test]
    fn baseline_roundtrip_and_staleness() {
        let d = Diagnostic {
            path: "crates/core/src/x.rs".into(),
            line: 10,
            col: 2,
            rule: "A2",
            message: "msg [determinism-taint]".into(),
        };
        let baseline = parse_baseline(&render_baseline(std::slice::from_ref(&d)));
        // Line drift must not invalidate the entry.
        let mut moved = d.clone();
        moved.line = 99;
        let (new, accepted, stale) = apply_baseline(vec![moved], &baseline);
        assert!(new.is_empty());
        assert_eq!(accepted.len(), 1);
        assert!(stale.is_empty());
        // A fixed finding leaves its entry stale.
        let (new, accepted, stale) = apply_baseline(Vec::new(), &baseline);
        assert!(new.is_empty() && accepted.is_empty());
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn json_report_escapes_and_carries_timings() {
        let d = Diagnostic {
            path: "crates/core/src/x.rs".into(),
            line: 3,
            col: 7,
            rule: "A4",
            message: "allocation `vec!` in \"hot\" loop\nsecond line \\ tab\t".into(),
        };
        let timings = PassTimings {
            per_pass: vec![
                ("A1", Duration::from_millis(2)),
                ("A4", Duration::from_micros(1500)),
            ],
            front_end: Duration::from_millis(10),
            total: Duration::from_millis(14),
        };
        let json = render_json(&[d], &[], &["A2 gone.rs old".into()], &timings);
        // Escaping: the quote, newline, backslash, and tab survive as JSON.
        assert!(
            json.contains(r#"in \"hot\" loop\nsecond line \\ tab\t"#),
            "{json}"
        );
        assert!(json.contains("\"clean\": false"), "{json}");
        assert!(json.contains("\"line\":3"), "{json}");
        assert!(json.contains("\"A4\":1.500"), "{json}");
        assert!(json.contains("\"front_end\":10.000"), "{json}");
        assert!(
            json.contains("\"stale_baseline\": [\"A2 gone.rs old\"]"),
            "{json}"
        );
        // No raw control characters may remain in the document.
        assert!(
            !json.chars().any(|c| (c as u32) < 0x20 && c != '\n'),
            "{json}"
        );
    }
}
