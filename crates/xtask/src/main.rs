//! `cargo xtask` — workspace automation: `lint` (storm-lint, the token-level
//! R1–R6 pass) and `analyze` (storm-analyzer, the structural A1–A3 pass —
//! see the crate docs and DESIGN.md §10).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::analyze::{self, PASSES};
use xtask::rules::RULES;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         lint                       run storm-lint over the workspace sources\n  \
         lint --list                print the rule table and exit\n  \
         lint <files..>             lint specific .rs files (paths relative to repo root)\n  \
         analyze                    run storm-analyzer (A1-A3 interprocedural, A4-A9\n                             \
                                    CFG/dataflow, A10-A13 concurrency); baselined\n                             \
                                    findings are reported but only new ones fail\n  \
         analyze --list             print the pass table and exit\n  \
         analyze --deny-new         same as plain `analyze` (spelled out for CI)\n  \
         analyze --no-baseline      report every finding, baseline ignored\n  \
         analyze --update-baseline  accept all current findings into the baseline\n  \
         analyze --json <path>      also write findings + timings as a JSON report\n  \
         analyze --timings          print per-pass wall time\n  \
         analyze --parallel         run the passes on one thread each\n  \
         analyze --budget-secs <n>  fail if the whole analysis exceeds n seconds"
    );
}

fn lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        for rule in &RULES {
            println!("{:3}  {:16} {}", rule.id, rule.name, rule.rationale);
        }
        return ExitCode::SUCCESS;
    }

    let repo_root = repo_root();
    let diags = if args.is_empty() {
        match xtask::lint_workspace(&repo_root) {
            Ok(diags) => diags,
            Err(err) => {
                eprintln!("storm-lint: cannot walk {}: {err}", repo_root.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut diags = Vec::new();
        for rel in args {
            let path = repo_root.join(rel);
            match std::fs::read_to_string(&path) {
                Ok(source) => diags.extend(xtask::lint_source(rel, &source)),
                Err(err) => {
                    eprintln!("storm-lint: cannot read {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        diags
    };

    for diag in &diags {
        println!("{diag}");
    }
    if diags.is_empty() {
        println!("storm-lint: clean");
        ExitCode::SUCCESS
    } else {
        let files: std::collections::BTreeSet<&str> =
            diags.iter().map(|d| d.path.as_str()).collect();
        println!(
            "storm-lint: {} violation(s) in {} file(s)",
            diags.len(),
            files.len()
        );
        // Why each violated rule exists, so a red CI wall explains itself.
        let violated: std::collections::BTreeSet<&str> = diags.iter().map(|d| d.rule).collect();
        println!("\nrule rationales:");
        for rule in RULES.iter().filter(|r| violated.contains(r.id)) {
            println!("  {:3} {:16} {}", rule.id, rule.name, rule.rationale);
        }
        if violated.contains("allow") {
            println!(
                "  allow: directives must read `// storm-lint: allow(<rule>): \
                 <justification>` and actually suppress something"
            );
        }
        ExitCode::FAILURE
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        for pass in &PASSES {
            println!("{:3}  {:22} {}", pass.id, pass.name, pass.rationale);
        }
        return ExitCode::SUCCESS;
    }
    let mut no_baseline = false;
    let mut update_baseline = false;
    let mut show_timings = false;
    let mut parallel = false;
    let mut json_path: Option<PathBuf> = None;
    let mut budget_secs: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-baseline" => no_baseline = true,
            "--update-baseline" => update_baseline = true,
            "--deny-new" => {}
            "--timings" => show_timings = true,
            "--parallel" => parallel = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("storm-analyzer: `--json` needs a path\n");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            },
            "--budget-secs" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => budget_secs = Some(n),
                _ => {
                    eprintln!("storm-analyzer: `--budget-secs` needs a whole number of seconds\n");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("storm-analyzer: unknown flag `{other}`\n");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let repo_root = repo_root();
    let (diags, timings) = match analyze::analyze_workspace_opts(&repo_root, parallel) {
        Ok(out) => out,
        Err(err) => {
            eprintln!("storm-analyzer: cannot walk {}: {err}", repo_root.display());
            return ExitCode::FAILURE;
        }
    };

    let baseline_path = repo_root.join("crates/xtask/analyze.baseline");
    if update_baseline {
        let content = analyze::render_baseline(&diags);
        if let Err(err) = std::fs::write(&baseline_path, content) {
            eprintln!(
                "storm-analyzer: cannot write {}: {err}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "storm-analyzer: baseline updated with {} finding(s)",
            diags.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if no_baseline {
        Default::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => analyze::parse_baseline(&text),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Default::default(),
            Err(err) => {
                eprintln!(
                    "storm-analyzer: cannot read {}: {err}",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    };
    let (new, accepted, stale) = analyze::apply_baseline(diags, &baseline);

    if show_timings {
        println!("storm-analyzer timings:");
        println!(
            "  front-end  {:>8.1} ms",
            timings.front_end.as_secs_f64() * 1000.0
        );
        for (id, d) in &timings.per_pass {
            println!("  {id:<10} {:>8.1} ms", d.as_secs_f64() * 1000.0);
        }
        println!(
            "  total      {:>8.1} ms",
            timings.total.as_secs_f64() * 1000.0
        );
    }
    if let Some(path) = &json_path {
        let report = analyze::render_json(&new, &accepted, &stale, &timings);
        if let Err(err) = std::fs::write(path, report) {
            eprintln!("storm-analyzer: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let over_budget = budget_secs.is_some_and(|b| timings.total.as_secs_f64() > b as f64);

    for diag in &new {
        println!("{}", analyze::render(diag));
    }
    for diag in &accepted {
        println!("{} (baselined)", analyze::render(diag));
    }
    for entry in &stale {
        println!("storm-analyzer: stale baseline entry (no longer found): {entry}");
    }
    if over_budget {
        eprintln!(
            "storm-analyzer: analysis took {:.1}s, over the --budget-secs {} ceiling",
            timings.total.as_secs_f64(),
            budget_secs.unwrap_or(0)
        );
        return ExitCode::FAILURE;
    }
    if new.is_empty() {
        println!(
            "storm-analyzer: clean ({} baselined, {} stale)",
            accepted.len(),
            stale.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("storm-analyzer: {} new finding(s)", new.len());
        let violated: std::collections::BTreeSet<&str> = new.iter().map(|d| d.rule).collect();
        println!("\npass rationales:");
        for pass in PASSES.iter().filter(|p| violated.contains(p.id)) {
            println!("  {:3} {:22} {}", pass.id, pass.name, pass.rationale);
        }
        if violated.contains("allow") {
            println!(
                "  allow: directives must read `// storm-analyzer: allow(<pass>): \
                 <justification>` and actually suppress something"
            );
        }
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")), PathBuf::from);
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
