//! `cargo xtask` — workspace automation: `lint` (storm-lint, the token-level
//! R1–R6 pass) and `analyze` (storm-analyzer, the structural A1–A3 pass —
//! see the crate docs and DESIGN.md §10).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::analyze::{self, PASSES};
use xtask::rules::RULES;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         lint                       run storm-lint over the workspace sources\n  \
         lint --list                print the rule table and exit\n  \
         lint <files..>             lint specific .rs files (paths relative to repo root)\n  \
         analyze                    run storm-analyzer (A1 lock-order, A2 determinism\n                             \
                                    taint, A3 protocol conformance); baselined findings\n                             \
                                    are reported but only new ones fail\n  \
         analyze --list             print the pass table and exit\n  \
         analyze --deny-new         same as plain `analyze` (spelled out for CI)\n  \
         analyze --no-baseline      report every finding, baseline ignored\n  \
         analyze --update-baseline  accept all current findings into the baseline"
    );
}

fn lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        for rule in &RULES {
            println!("{:3}  {:16} {}", rule.id, rule.name, rule.rationale);
        }
        return ExitCode::SUCCESS;
    }

    let repo_root = repo_root();
    let diags = if args.is_empty() {
        match xtask::lint_workspace(&repo_root) {
            Ok(diags) => diags,
            Err(err) => {
                eprintln!("storm-lint: cannot walk {}: {err}", repo_root.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut diags = Vec::new();
        for rel in args {
            let path = repo_root.join(rel);
            match std::fs::read_to_string(&path) {
                Ok(source) => diags.extend(xtask::lint_source(rel, &source)),
                Err(err) => {
                    eprintln!("storm-lint: cannot read {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        diags
    };

    for diag in &diags {
        println!("{diag}");
    }
    if diags.is_empty() {
        println!("storm-lint: clean");
        ExitCode::SUCCESS
    } else {
        let files: std::collections::BTreeSet<&str> =
            diags.iter().map(|d| d.path.as_str()).collect();
        println!(
            "storm-lint: {} violation(s) in {} file(s)",
            diags.len(),
            files.len()
        );
        // Why each violated rule exists, so a red CI wall explains itself.
        let violated: std::collections::BTreeSet<&str> = diags.iter().map(|d| d.rule).collect();
        println!("\nrule rationales:");
        for rule in RULES.iter().filter(|r| violated.contains(r.id)) {
            println!("  {:3} {:16} {}", rule.id, rule.name, rule.rationale);
        }
        if violated.contains("allow") {
            println!(
                "  allow: directives must read `// storm-lint: allow(<rule>): \
                 <justification>` and actually suppress something"
            );
        }
        ExitCode::FAILURE
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        for pass in &PASSES {
            println!("{:3}  {:22} {}", pass.id, pass.name, pass.rationale);
        }
        return ExitCode::SUCCESS;
    }
    let no_baseline = args.iter().any(|a| a == "--no-baseline");
    let update_baseline = args.iter().any(|a| a == "--update-baseline");
    for a in args {
        if !matches!(
            a.as_str(),
            "--no-baseline" | "--update-baseline" | "--deny-new"
        ) {
            eprintln!("storm-analyzer: unknown flag `{a}`\n");
            print_usage();
            return ExitCode::FAILURE;
        }
    }

    let repo_root = repo_root();
    let diags = match analyze::analyze_workspace(&repo_root) {
        Ok(diags) => diags,
        Err(err) => {
            eprintln!("storm-analyzer: cannot walk {}: {err}", repo_root.display());
            return ExitCode::FAILURE;
        }
    };

    let baseline_path = repo_root.join("crates/xtask/analyze.baseline");
    if update_baseline {
        let content = analyze::render_baseline(&diags);
        if let Err(err) = std::fs::write(&baseline_path, content) {
            eprintln!(
                "storm-analyzer: cannot write {}: {err}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "storm-analyzer: baseline updated with {} finding(s)",
            diags.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if no_baseline {
        Default::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => analyze::parse_baseline(&text),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Default::default(),
            Err(err) => {
                eprintln!(
                    "storm-analyzer: cannot read {}: {err}",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    };
    let (new, accepted, stale) = analyze::apply_baseline(diags, &baseline);

    for diag in &new {
        println!("{}", analyze::render(diag));
    }
    for diag in &accepted {
        println!("{} (baselined)", analyze::render(diag));
    }
    for entry in &stale {
        println!("storm-analyzer: stale baseline entry (no longer found): {entry}");
    }
    if new.is_empty() {
        println!(
            "storm-analyzer: clean ({} baselined, {} stale)",
            accepted.len(),
            stale.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("storm-analyzer: {} new finding(s)", new.len());
        let violated: std::collections::BTreeSet<&str> = new.iter().map(|d| d.rule).collect();
        println!("\npass rationales:");
        for pass in PASSES.iter().filter(|p| violated.contains(p.id)) {
            println!("  {:3} {:22} {}", pass.id, pass.name, pass.rationale);
        }
        if violated.contains("allow") {
            println!(
                "  allow: directives must read `// storm-analyzer: allow(<pass>): \
                 <justification>` and actually suppress something"
            );
        }
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")), PathBuf::from);
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
