//! `cargo xtask` — workspace automation. Currently one subcommand:
//! `lint`, the storm-lint static-analysis pass (see the crate docs).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::rules::RULES;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         lint            run storm-lint over the workspace sources\n  \
         lint --list     print the rule table and exit\n  \
         lint <files..>  lint specific .rs files (paths relative to repo root)"
    );
}

fn lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        for rule in &RULES {
            println!("{:3}  {:16} {}", rule.id, rule.name, rule.rationale);
        }
        return ExitCode::SUCCESS;
    }

    let repo_root = repo_root();
    let diags = if args.is_empty() {
        match xtask::lint_workspace(&repo_root) {
            Ok(diags) => diags,
            Err(err) => {
                eprintln!("storm-lint: cannot walk {}: {err}", repo_root.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut diags = Vec::new();
        for rel in args {
            let path = repo_root.join(rel);
            match std::fs::read_to_string(&path) {
                Ok(source) => diags.extend(xtask::lint_source(rel, &source)),
                Err(err) => {
                    eprintln!("storm-lint: cannot read {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        diags
    };

    for diag in &diags {
        println!("{diag}");
    }
    if diags.is_empty() {
        println!("storm-lint: clean");
        ExitCode::SUCCESS
    } else {
        let files: std::collections::BTreeSet<&str> =
            diags.iter().map(|d| d.path.as_str()).collect();
        println!(
            "storm-lint: {} violation(s) in {} file(s)",
            diags.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")), PathBuf::from);
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
