//! Workspace call graph over [`crate::front`] summaries.
//!
//! Resolution is by *name*, deliberately over-approximate: a call site
//! `gather_batch(…)` links to every known function named `gather_batch`;
//! a qualified site `Executor::drain(…)` or method call on a known impl
//! prefers the `Executor::drain` key when one exists. Over-approximation
//! is the right bias for the analyzer's passes — A1 and A2 both report
//! *potential* reachability, and a missed edge hides a real deadlock or
//! replay break while a spurious edge at worst costs one allow directive.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::front::{FileFacts, FnSummary};

/// A resolved function node: file index + fn index within that file.
pub type FnId = (usize, usize);

/// The workspace call graph.
pub struct CallGraph<'a> {
    /// The underlying per-file facts, in the order passed to [`build`].
    pub files: &'a [FileFacts],
    /// Adjacency: caller → callees (deduped, deterministic order).
    pub edges: BTreeMap<FnId, BTreeSet<FnId>>,
    by_name: BTreeMap<&'a str, Vec<FnId>>,
    by_key: BTreeMap<String, Vec<FnId>>,
}

/// Builds the graph from extracted file facts.
pub fn build(files: &[FileFacts]) -> CallGraph<'_> {
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut by_key: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push((fi, gi));
            by_key.entry(f.key()).or_default().push((fi, gi));
        }
    }
    let mut graph = CallGraph {
        files,
        edges: BTreeMap::new(),
        by_name,
        by_key,
    };
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            let callees: BTreeSet<FnId> =
                f.calls.iter().flat_map(|c| graph.resolve_call(c)).collect();
            graph.edges.insert((fi, gi), callees);
        }
    }
    graph
}

impl<'a> CallGraph<'a> {
    /// The summary behind an id.
    pub fn fun(&self, id: FnId) -> &'a FnSummary {
        &self.files[id.0].fns[id.1]
    }

    /// Repo-relative path of the file containing `id`.
    pub fn path(&self, id: FnId) -> &'a str {
        &self.files[id.0].path
    }

    /// All functions whose simple name matches.
    pub fn named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// All functions whose `Type::name` key matches.
    pub fn keyed(&self, key: &str) -> &[FnId] {
        self.by_key.get(key).map_or(&[], Vec::as_slice)
    }

    /// Resolves one call site: a qualified call prefers the exact
    /// `Type::name` key; otherwise every function with the simple name
    /// matches (the over-approximation documented on the module).
    pub fn resolve_call(&self, call: &crate::front::CallSite) -> Vec<FnId> {
        if let Some(q) = &call.qual {
            let key = format!("{q}::{}", call.name);
            if let Some(ids) = self.by_key.get(&key) {
                return ids.clone();
            }
        }
        self.by_name
            .get(call.name.as_str())
            .cloned()
            .unwrap_or_default()
    }

    /// Every function id, in deterministic (file, index) order.
    pub fn all_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, file)| (0..file.fns.len()).map(move |gi| (fi, gi)))
    }

    /// Transitive closure of callees from `roots` (roots included).
    pub fn reachable_from(&self, roots: &[FnId]) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = roots.iter().copied().collect();
        let mut queue: VecDeque<FnId> = roots.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            if let Some(callees) = self.edges.get(&id) {
                for &c in callees {
                    if seen.insert(c) {
                        queue.push_back(c);
                    }
                }
            }
        }
        seen
    }

    /// Reverse reachability: every function from which some root is
    /// reachable (roots included). This is the "output cone" used by the
    /// determinism pass: a fact in any of these functions can influence a
    /// root's result.
    pub fn reaching(&self, roots: &[FnId]) -> BTreeSet<FnId> {
        let mut rev: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
        for (&caller, callees) in &self.edges {
            for &callee in callees {
                rev.entry(callee).or_default().push(caller);
            }
        }
        let mut seen: BTreeSet<FnId> = roots.iter().copied().collect();
        let mut queue: VecDeque<FnId> = roots.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            if let Some(callers) = rev.get(&id) {
                for &c in callers {
                    if seen.insert(c) {
                        queue.push_back(c);
                    }
                }
            }
        }
        seen
    }

    /// One shortest caller→…→callee path between two ids, for diagnostics.
    /// Returns the keys along the path, or `None` when unconnected.
    pub fn path_between(&self, from: FnId, to: FnId) -> Option<Vec<String>> {
        let mut prev: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(id) = queue.pop_front() {
            if id == to {
                let mut path = vec![self.fun(id).key()];
                let mut at = id;
                while at != from {
                    at = prev[&at];
                    path.push(self.fun(at).key());
                }
                path.reverse();
                return Some(path);
            }
            if let Some(callees) = self.edges.get(&id) {
                for &c in callees {
                    if seen.insert(c) {
                        prev.insert(c, id);
                        queue.push_back(c);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::extract_source;

    fn graph_of(sources: &[(&str, &str)]) -> Vec<FileFacts> {
        sources.iter().map(|(p, s)| extract_source(p, s)).collect()
    }

    #[test]
    fn cross_file_edges_and_reachability() {
        let files = graph_of(&[
            ("a.rs", "pub fn root() { middle(); }"),
            ("b.rs", "pub fn middle() { leaf(); }\nfn leaf() {}"),
        ]);
        let g = build(&files);
        let root = g.named("root")[0];
        let leaf = g.named("leaf")[0];
        let fwd = g.reachable_from(&[root]);
        assert!(fwd.contains(&leaf));
        let cone = g.reaching(&[leaf]);
        assert!(cone.contains(&root));
        let path = g.path_between(root, leaf).expect("connected");
        assert_eq!(path, vec!["root", "middle", "leaf"]);
    }

    #[test]
    fn qualified_calls_prefer_the_typed_key() {
        let files = graph_of(&[(
            "a.rs",
            "struct A; struct B;\n\
             impl A { fn go(&self) {} }\n\
             impl B { fn go(&self) {} }\n\
             fn call() { A::go(&A); }\n",
        )]);
        let g = build(&files);
        let call = g.named("call")[0];
        let callees = &g.edges[&call];
        assert_eq!(callees.len(), 1);
        let target = g.fun(*callees.iter().next().expect("one callee"));
        assert_eq!(target.key(), "A::go");
    }

    #[test]
    fn unqualified_method_calls_over_approximate() {
        let files = graph_of(&[(
            "a.rs",
            "struct A; struct B;\n\
             impl A { fn go(&self) {} }\n\
             impl B { fn go(&self) {} }\n\
             fn call(x: &A) { x.go(); }\n",
        )]);
        let g = build(&files);
        let call = g.named("call")[0];
        assert_eq!(g.edges[&call].len(), 2, "method call links to every go()");
    }
}
