//! Loop-aware intraprocedural CFG + dataflow facts over lexed fn bodies.
//!
//! The A1–A3 passes work from flat per-function fact lists; the hot-path
//! cost passes (A4–A8, see [`crate::analyze`]) need *where in the control
//! flow* a fact occurs: an allocation at loop depth 2 of a sampling descent
//! is a per-sample constant-factor cost, the same allocation in straight
//! line setup code is free. This module rebuilds that structure from the
//! tokens [`crate::front`] already brace-matched ([`FnSummary::body_span`]):
//!
//! * **basic blocks** with successor edges and a loop nesting depth —
//!   `loop`/`while`/`for` bodies (and `while` conditions, which re-execute
//!   per iteration) sit one deeper than their surroundings; `if`/`match`
//!   fork and rejoin at the same depth;
//! * **cost sites** per block: allocations (`Vec::new`, `vec!`,
//!   `Box::new`, `.to_vec()`, …), `.clone()`, `.collect()`, channel
//!   send/recv ops, blocking ops (`join`, `sleep`), and panic-capable ops
//!   (`.unwrap()`, `.expect(…)`, indexing, integer `/` `%` with a
//!   non-literal divisor);
//! * **lock-held regions**: from a `.lock()`-family acquisition to the end
//!   of its enclosing block, cut short by `drop(guard)` (let-bound guards)
//!   or the end of the statement (temporary guards);
//! * **closure regions**: `spawn(…)` and `catch_unwind(…)` argument
//!   ranges, plus the argument ranges of assertion/panic macros ("cold"
//!   regions the cost passes skip — an allocation in an `assert!` message
//!   is not hot-path work).
//!
//! Like the front-end, everything is a lexical over-approximation
//! (documented in DESIGN.md §11): `break`/`continue`/`?`/`return` edges are
//! not modeled (depth, not path-sensitivity, is what the passes consume),
//! closures run where they lexically sit, and types are never inferred.

use crate::front::{ident_at, is_op, is_punct, match_delim};
use crate::lexer::{TokKind, Token};

/// What a cost site does. The payload is the human-facing operation name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostKind {
    /// Heap allocation: constructor (`Vec::with_capacity`), allocating
    /// method (`.to_vec()`), or allocating macro (`vec!`, `format!`).
    Alloc(String),
    /// `.clone()`.
    Clone,
    /// `.collect()` / `.collect::<T>()`.
    Collect,
    /// Channel send: `.send(…)` / `.try_send(…)`.
    ChannelSend(String),
    /// Channel receive: `.recv()` / `.try_recv()` / `.recv_timeout(…)` /
    /// `.recv_deadline(…)`.
    ChannelRecv(String),
    /// Other blocking call: `.join()`, `sleep(…)`.
    Blocking(String),
    /// Panic-capable op: `unwrap`, `expect`, `index`, `div`, `rem`.
    PanicOp(&'static str),
}

impl CostKind {
    /// Whether this op can block its thread (the A6 list: `send`, `recv`,
    /// `recv_timeout`/`recv_deadline`, `join`, `sleep` — `try_*` variants
    /// return immediately and are excluded).
    pub fn is_blocking(&self) -> bool {
        match self {
            CostKind::ChannelSend(m) | CostKind::ChannelRecv(m) => !m.starts_with("try_"),
            CostKind::Blocking(_) => true,
            _ => false,
        }
    }
}

/// One classified operation inside a fn body.
#[derive(Debug, Clone)]
pub struct CostSite {
    /// What the op does.
    pub kind: CostKind,
    /// Token index of the op's anchor token.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Owning basic block.
    pub block: usize,
    /// Loop nesting depth of the owning block (0 = straight-line).
    pub loop_depth: u32,
    /// Inside an assertion/panic macro's argument list (cold path).
    pub cold: bool,
    /// For channel sends: the argument tokens mention a "batch"-named
    /// identifier, i.e. the payload *is* the batched variant (A5 exempts
    /// these — the batch path cannot be told to batch).
    pub sends_batch: bool,
}

/// A lock acquisition with the token range its guard is assumed held.
#[derive(Debug, Clone)]
pub struct LockRegion {
    /// Textual receiver of the `.lock()`-family call.
    pub recv: String,
    /// The let-bound guard name, when the acquisition is let-bound.
    pub guard: Option<String>,
    /// Token index of the acquisition method name.
    pub tok: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// 1-based column of the acquisition.
    pub col: u32,
    /// Held token range (exclusive of the acquisition itself): from just
    /// after the call to `drop(guard)`, end of statement (temporary
    /// guards), or the enclosing block's `}`.
    pub held: (usize, usize),
}

/// One basic block.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// Loop nesting depth (0 = function top level).
    pub loop_depth: u32,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Indexes into [`Cfg::sites`], in token order.
    pub sites: Vec<usize>,
}

/// A call site with its token position and region flags — the A7 pass
/// propagates worker-thread panic exposure along these, which needs the
/// spawn/catch containment the front-end's flat [`crate::front::CallSite`]
/// list cannot express.
#[derive(Debug, Clone)]
pub struct CfgCall {
    /// Called name.
    pub name: String,
    /// `Path::name(…)` qualifier.
    pub qual: Option<String>,
    /// Whether this is a `.name(…)` method call.
    pub is_method: bool,
    /// Token index of the name.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Inside a `spawn(…)` argument list (runs on a worker thread).
    pub in_spawn: bool,
    /// Inside a `catch_unwind(…)` argument list (panics are contained).
    pub in_catch: bool,
    /// Loop nesting depth of the enclosing basic block (0 = top level).
    pub loop_depth: u32,
    /// Enclosing basic block id.
    pub block: usize,
}

/// The control-flow graph and dataflow facts of one fn body.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// All cost sites, in token order.
    pub sites: Vec<CostSite>,
    /// Lock-held regions, in token order.
    pub lock_regions: Vec<LockRegion>,
    /// `spawn(…)` argument-list token ranges.
    pub spawn_args: Vec<(usize, usize)>,
    /// `catch_unwind(…)` argument-list token ranges.
    pub catch_args: Vec<(usize, usize)>,
    /// Call sites with spawn/catch containment flags.
    pub calls: Vec<CfgCall>,
    /// Loop back edges `(from, to)` — the subset of [`BasicBlock::succs`]
    /// edges that close a loop. Forward dataflow (A12) ignores these to
    /// stay acyclic and per-iteration.
    pub back_edges: Vec<(usize, usize)>,
}

impl Cfg {
    /// Maximum loop depth of any cost site (test/debug helper).
    pub fn max_depth(&self) -> u32 {
        self.blocks.iter().map(|b| b.loop_depth).max().unwrap_or(0)
    }
}

/// Types whose `new`/`with_capacity`/`from` constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Rc", "Arc",
];

/// Allocating constructor names (qualified by an [`ALLOC_TYPES`] type).
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Allocating zero-arg-ish methods.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "into_owned"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Macros whose argument lists are cold paths (assertion messages, panic
/// formatting) — cost sites inside them are flagged `cold` and skipped by
/// the hot-path passes.
const COLD_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "panic",
    "unreachable",
    "unimplemented",
    "todo",
];

/// Keywords that are not call/cost sites even when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "in", "let", "else",
    "move", "unsafe", "as", "fn", "impl", "where", "pub", "use", "mod", "ref", "mut", "dyn",
    "struct", "enum", "trait", "type", "const", "static", "await", "async", "yield", "box",
];

/// Builds the CFG for the fn body spanning `body` (`{` .. `}` token
/// indexes, inclusive) of `toks`.
pub fn build(toks: &[Token], body: (usize, usize)) -> Cfg {
    let (open, close) = body;
    let mut b = Builder {
        toks,
        cfg: Cfg::default(),
        cold: Vec::new(),
    };
    if open >= close || close >= toks.len() {
        b.cfg.blocks.push(BasicBlock::default());
        return b.cfg;
    }
    b.collect_regions(open, close);
    let entry = b.new_block(0);
    debug_assert_eq!(entry, 0);
    b.parse_seq(open + 1, close, entry, 0);
    b.collect_lock_regions(open, close);
    b.cfg
}

struct Builder<'t> {
    toks: &'t [Token],
    cfg: Cfg,
    /// Cold-macro argument ranges.
    cold: Vec<(usize, usize)>,
}

impl Builder<'_> {
    fn new_block(&mut self, loop_depth: u32) -> usize {
        self.cfg.blocks.push(BasicBlock {
            loop_depth,
            ..BasicBlock::default()
        });
        self.cfg.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.cfg.blocks[from].succs.contains(&to) {
            self.cfg.blocks[from].succs.push(to);
        }
    }

    fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
        ranges.iter().any(|&(s, e)| (s..=e).contains(&i))
    }

    /// Pre-pass: spawn/catch_unwind argument ranges and cold-macro ranges.
    fn collect_regions(&mut self, open: usize, close: usize) {
        for i in open..=close {
            match ident_at(self.toks, i) {
                Some("spawn") if is_punct(self.toks, i + 1, '(') => {
                    if let Some(c) = match_delim(self.toks, i + 1) {
                        self.cfg.spawn_args.push((i + 1, c));
                    }
                }
                Some("catch_unwind") if is_punct(self.toks, i + 1, '(') => {
                    if let Some(c) = match_delim(self.toks, i + 1) {
                        self.cfg.catch_args.push((i + 1, c));
                    }
                }
                Some(m) if COLD_MACROS.contains(&m) && is_punct(self.toks, i + 1, '!') => {
                    if let Some(c) = match_delim(self.toks, i + 2) {
                        self.cold.push((i + 2, c));
                    }
                }
                _ => {}
            }
        }
    }

    /// Parses `toks[i..end)` appending facts/structure starting in block
    /// `cur`; returns the exit block.
    fn parse_seq(&mut self, mut i: usize, end: usize, mut cur: usize, depth: u32) -> usize {
        while i < end {
            match &self.toks[i].kind {
                TokKind::Ident(kw) if kw == "loop" && is_punct(self.toks, i + 1, '{') => {
                    let Some(body_close) = match_delim(self.toks, i + 1) else {
                        i += 1;
                        continue;
                    };
                    cur = self.parse_loop(i + 2, body_close, cur, depth, None);
                    i = body_close + 1;
                }
                TokKind::Ident(kw) if kw == "while" => {
                    let Some(brace) = self.scan_to_block_brace(i + 1, end) else {
                        i += 1;
                        continue;
                    };
                    let Some(body_close) = match_delim(self.toks, brace) else {
                        i += 1;
                        continue;
                    };
                    // The condition re-executes every iteration: it lives
                    // in the loop header, one level deeper.
                    cur = self.parse_loop(brace + 1, body_close, cur, depth, Some((i + 1, brace)));
                    i = body_close + 1;
                }
                TokKind::Ident(kw) if kw == "for" => {
                    let Some(brace) = self.scan_to_block_brace(i + 1, end) else {
                        i += 1;
                        continue;
                    };
                    let Some(body_close) = match_delim(self.toks, brace) else {
                        i += 1;
                        continue;
                    };
                    // The iterable expression evaluates once, at the
                    // enclosing depth.
                    self.collect_costs(i + 1, brace, cur);
                    cur = self.parse_loop(brace + 1, body_close, cur, depth, None);
                    i = body_close + 1;
                }
                TokKind::Ident(kw) if kw == "if" => {
                    let (join, next) = self.parse_if(i, end, cur, depth);
                    cur = join;
                    i = next;
                }
                TokKind::Ident(kw) if kw == "match" => {
                    let (join, next) = self.parse_match(i, end, cur, depth);
                    cur = join;
                    i = next;
                }
                // Nested `fn` item: its body is summarized separately;
                // skip it so its costs are not attributed to this fn.
                TokKind::Ident(kw)
                    if kw == "fn"
                        && matches!(
                            self.toks.get(i + 1).map(|t| &t.kind),
                            Some(TokKind::Ident(_))
                        ) =>
                {
                    if let Some((_, nested_close)) = nested_fn_body(self.toks, i + 2, end) {
                        i = nested_close + 1;
                    } else {
                        i += 1;
                    }
                }
                // Transparent brace group (plain block, closure body,
                // struct literal): recurse at the same depth.
                TokKind::Punct('{') => {
                    let Some(c) = match_delim(self.toks, i) else {
                        i += 1;
                        continue;
                    };
                    cur = self.parse_seq(i + 1, c, cur, depth);
                    i = c + 1;
                }
                _ => {
                    self.classify_at(i, cur);
                    i += 1;
                }
            }
        }
        cur
    }

    /// Builds header/body/after blocks for a loop whose body spans
    /// `[body_start, body_close)`; `cond` is the `while` condition range.
    fn parse_loop(
        &mut self,
        body_start: usize,
        body_close: usize,
        cur: usize,
        depth: u32,
        cond: Option<(usize, usize)>,
    ) -> usize {
        let header = self.new_block(depth + 1);
        self.edge(cur, header);
        if let Some((cs, ce)) = cond {
            self.collect_costs(cs, ce, header);
        }
        let body_entry = self.new_block(depth + 1);
        self.edge(header, body_entry);
        let body_exit = self.parse_seq(body_start, body_close, body_entry, depth + 1);
        self.edge(body_exit, header); // back edge
        self.cfg.back_edges.push((body_exit, header));
        let after = self.new_block(depth);
        self.edge(header, after);
        after
    }

    /// Parses `if cond { … } [else if … ] [else { … }]` starting at the
    /// `if` keyword; returns `(join_block, index_after_construct)`.
    fn parse_if(&mut self, if_idx: usize, end: usize, cur: usize, depth: u32) -> (usize, usize) {
        let Some(brace) = self.scan_to_block_brace(if_idx + 1, end) else {
            return (cur, if_idx + 1);
        };
        let Some(then_close) = match_delim(self.toks, brace) else {
            return (cur, if_idx + 1);
        };
        // Condition evaluates once on entry, in the current block.
        self.collect_costs(if_idx + 1, brace, cur);
        let then_blk = self.new_block(depth);
        self.edge(cur, then_blk);
        let then_exit = self.parse_seq(brace + 1, then_close, then_blk, depth);
        let join = self.new_block(depth);
        self.edge(then_exit, join);

        let mut next = then_close + 1;
        if ident_at(self.toks, next) == Some("else") {
            if ident_at(self.toks, next + 1) == Some("if") {
                let (else_join, after) = self.parse_if(next + 1, end, cur, depth);
                self.edge(else_join, join);
                next = after;
            } else if is_punct(self.toks, next + 1, '{') {
                if let Some(else_close) = match_delim(self.toks, next + 1) {
                    let else_blk = self.new_block(depth);
                    self.edge(cur, else_blk);
                    let else_exit = self.parse_seq(next + 2, else_close, else_blk, depth);
                    self.edge(else_exit, join);
                    next = else_close + 1;
                }
            }
        } else {
            // No else: fall through past the then-branch.
            self.edge(cur, join);
        }
        (join, next)
    }

    /// Parses `match scrutinee { arms }` starting at the `match` keyword;
    /// returns `(join_block, index_after_construct)`.
    fn parse_match(&mut self, m_idx: usize, end: usize, cur: usize, depth: u32) -> (usize, usize) {
        let Some(brace) = self.scan_to_block_brace(m_idx + 1, end) else {
            return (cur, m_idx + 1);
        };
        let Some(close) = match_delim(self.toks, brace) else {
            return (cur, m_idx + 1);
        };
        self.collect_costs(m_idx + 1, brace, cur);
        let join = self.new_block(depth);
        let mut k = brace + 1;
        while k < close {
            if is_punct(self.toks, k, ',') {
                k += 1;
                continue;
            }
            // Pattern: scan for `=>` at delimiter depth 0.
            let Some(arrow) = self.scan_for_arrow(k, close) else {
                break;
            };
            let arm_blk = self.new_block(depth);
            self.edge(cur, arm_blk);
            // Guards (`Pat if cond =>`) execute per match: their costs
            // belong to the arm.
            self.collect_costs(k, arrow, arm_blk);
            let body_start = arrow + 1;
            let arm_exit;
            if is_punct(self.toks, body_start, '{') {
                match match_delim(self.toks, body_start) {
                    Some(bc) => {
                        arm_exit = self.parse_seq(body_start + 1, bc, arm_blk, depth);
                        k = bc + 1;
                    }
                    None => break,
                }
            } else {
                let expr_end = self.scan_arm_expr_end(body_start, close);
                arm_exit = self.parse_seq(body_start, expr_end, arm_blk, depth);
                k = expr_end;
            }
            self.edge(arm_exit, join);
        }
        (join, close + 1)
    }

    /// First `{` at paren/bracket depth 0 in `[from, end)` — the body
    /// opener after an `if`/`while`/`for`/`match` head (Rust bans bare
    /// struct literals there, so depth-0 `{` is unambiguous).
    fn scan_to_block_brace(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in from..end {
            match &self.toks[j].kind {
                TokKind::Punct('(' | '[') => depth += 1,
                TokKind::Punct(')' | ']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => return Some(j),
                TokKind::Punct(';') if depth == 0 => return None,
                _ => {}
            }
        }
        None
    }

    /// First `=>` at delimiter depth 0 in `[from, end)`.
    fn scan_for_arrow(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in from..end {
            match &self.toks[j].kind {
                TokKind::Punct('(' | '[' | '{') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => depth -= 1,
                TokKind::Op("=>") if depth == 0 => return Some(j),
                _ => {}
            }
        }
        None
    }

    /// End (exclusive) of a non-block match-arm expression: the top-level
    /// `,` or the match's closing brace.
    fn scan_arm_expr_end(&self, from: usize, close: usize) -> usize {
        let mut depth = 0i32;
        for j in from..close {
            match &self.toks[j].kind {
                TokKind::Punct('(' | '[' | '{') => depth += 1,
                TokKind::Punct(')' | ']' | '}') => depth -= 1,
                TokKind::Punct(',') if depth == 0 => return j,
                _ => {}
            }
        }
        close
    }

    /// Linear cost collection over `[from, end)` into `block` (no
    /// structural parsing — used for conditions, scrutinees, guards).
    fn collect_costs(&mut self, from: usize, end: usize, block: usize) {
        for j in from..end {
            self.classify_at(j, block);
        }
    }

    /// Classifies the token at `i`, pushing a cost site and/or call onto
    /// `block` when it anchors one.
    fn classify_at(&mut self, i: usize, block: usize) {
        let toks = self.toks;
        let tok = &toks[i];
        let (line, col) = (tok.line, tok.col);
        let push = |b: &mut Builder, kind: CostKind| {
            let sends_batch = if matches!(kind, CostKind::ChannelSend(_)) {
                // The send's argument range: `name ( … )`.
                match_delim(b.toks, i + 1).is_some_and(|close| {
                    (i + 2..close).any(|j| {
                        matches!(&b.toks[j].kind,
                                 TokKind::Ident(n) if n.to_lowercase().contains("batch"))
                    })
                })
            } else {
                false
            };
            let depth = b.cfg.blocks[block].loop_depth;
            let cold = Builder::in_ranges(&b.cold, i);
            let idx = b.cfg.sites.len();
            b.cfg.sites.push(CostSite {
                kind,
                tok: i,
                line,
                col,
                block,
                loop_depth: depth,
                cold,
                sends_batch,
            });
            b.cfg.blocks[block].sites.push(idx);
        };
        match &tok.kind {
            TokKind::Ident(name) => {
                let name = name.as_str();
                // Allocating macro: `vec![…]` / `format!(…)`.
                if ALLOC_MACROS.contains(&name) && is_punct(toks, i + 1, '!') {
                    push(self, CostKind::Alloc(format!("{name}!")));
                    return;
                }
                // Call shapes: `name(`, with optional `::<T>` turbofish.
                let mut paren = i + 1;
                if is_op(toks, i + 1, "::") && is_punct(toks, i + 2, '<') {
                    let mut d = 0i32;
                    let mut j = i + 2;
                    while j < toks.len() {
                        match &toks[j].kind {
                            TokKind::Punct('<') => d += 1,
                            TokKind::Punct('>') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            TokKind::Punct('(' | ';' | '{') => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    paren = j + 1;
                }
                if !is_punct(toks, paren, '(') || KEYWORDS.contains(&name) {
                    return;
                }
                let is_method = i > 0 && is_punct(toks, i - 1, '.');
                let qual = if i >= 2 && is_op(toks, i - 1, "::") {
                    ident_at(toks, i - 2)
                } else {
                    None
                };
                // Record the call for A7 propagation.
                self.cfg.calls.push(CfgCall {
                    name: name.to_string(),
                    qual: qual.map(ToString::to_string),
                    is_method,
                    tok: i,
                    line,
                    col,
                    in_spawn: Builder::in_ranges(&self.cfg.spawn_args, i),
                    in_catch: Builder::in_ranges(&self.cfg.catch_args, i),
                    loop_depth: self.cfg.blocks[block].loop_depth,
                    block,
                });
                let zero_arg = is_punct(toks, paren + 1, ')');
                match name {
                    "clone" if is_method && zero_arg => push(self, CostKind::Clone),
                    "collect" if is_method && zero_arg => push(self, CostKind::Collect),
                    m if is_method && ALLOC_METHODS.contains(&m) && zero_arg => {
                        push(self, CostKind::Alloc(format!(".{m}()")));
                    }
                    "send" | "try_send" if is_method => {
                        push(self, CostKind::ChannelSend(name.to_string()));
                    }
                    "recv" | "try_recv" | "recv_timeout" | "recv_deadline" if is_method => {
                        push(self, CostKind::ChannelRecv(name.to_string()));
                    }
                    "join" if is_method && zero_arg => {
                        push(self, CostKind::Blocking("join".to_string()));
                    }
                    "sleep" => push(self, CostKind::Blocking("sleep".to_string())),
                    "unwrap" if is_method && zero_arg => push(self, CostKind::PanicOp("unwrap")),
                    "expect" if is_method => push(self, CostKind::PanicOp("expect")),
                    ctor if ALLOC_CTORS.contains(&ctor) => {
                        if let Some(q) = qual {
                            if ALLOC_TYPES.contains(&q) {
                                push(self, CostKind::Alloc(format!("{q}::{ctor}")));
                            }
                        }
                    }
                    _ => {}
                }
            }
            // Index expression: `expr[…]` (not attributes `#[…]`, array
            // literals, slice patterns, or full-range `[..]`).
            TokKind::Punct('[') => {
                let indexable_recv = i > 0
                    && match &toks[i - 1].kind {
                        TokKind::Ident(n) => !KEYWORDS.contains(&n.as_str()),
                        TokKind::Punct(')' | ']') => true,
                        _ => false,
                    };
                if !indexable_recv {
                    return;
                }
                if let Some(c) = match_delim(toks, i) {
                    // `[..]` / `[]` never panic.
                    if c == i + 1 || (c == i + 2 && is_op(toks, i + 1, "..")) {
                        return;
                    }
                }
                push(self, CostKind::PanicOp("index"));
            }
            // Integer division/remainder with a non-literal divisor.
            TokKind::Punct(op @ ('/' | '%')) => {
                let valueish_lhs = i > 0
                    && matches!(
                        &toks[i - 1].kind,
                        TokKind::Ident(_) | TokKind::Num { .. } | TokKind::Punct(')' | ']')
                    );
                if !valueish_lhs {
                    return;
                }
                // Skip the `=` of a compound `/=` / `%=`.
                let mut r = i + 1;
                if is_punct(toks, r, '=') {
                    r += 1;
                }
                match toks.get(r).map(|t| &t.kind) {
                    // Literal divisor: cannot be an unknown zero.
                    Some(TokKind::Num { .. }) => {}
                    Some(TokKind::Ident(n)) if !KEYWORDS.contains(&n.as_str()) => {
                        push(
                            self,
                            CostKind::PanicOp(if *op == '/' { "div" } else { "rem" }),
                        );
                    }
                    Some(TokKind::Punct('(')) => {
                        push(
                            self,
                            CostKind::PanicOp(if *op == '/' { "div" } else { "rem" }),
                        );
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    /// Post-pass: lock acquisitions and their held regions. Needs the
    /// brace structure, so it runs over the raw body range with a stack of
    /// enclosing block closers.
    fn collect_lock_regions(&mut self, open: usize, close: usize) {
        let toks = self.toks;
        for i in open..=close {
            let Some(name) = ident_at(toks, i) else {
                continue;
            };
            if !matches!(
                name,
                "lock" | "try_lock" | "read" | "try_read" | "write" | "try_write"
            ) {
                continue;
            }
            // Zero-argument method call: `.name()`.
            if !(i > 0
                && is_punct(toks, i - 1, '.')
                && is_punct(toks, i + 1, '(')
                && is_punct(toks, i + 2, ')'))
            {
                continue;
            }
            let recv = receiver_of(toks, i - 1);
            // Enclosing block close: smallest enclosing `}` within body.
            let block_close = enclosing_brace_close(toks, open, close, i);
            // Let-bound guard: `let [mut] NAME = recv.lock();`.
            let guard = guard_name(toks, i);
            let held_end = match &guard {
                Some(g) => {
                    // Cut at `drop(g)` when present before block close.
                    let mut cut = block_close;
                    let mut j = i + 3;
                    while j + 2 < block_close {
                        if ident_at(toks, j) == Some("drop")
                            && is_punct(toks, j + 1, '(')
                            && ident_at(toks, j + 2) == Some(g.as_str())
                            && is_punct(toks, j + 3, ')')
                        {
                            cut = j;
                            break;
                        }
                        j += 1;
                    }
                    cut
                }
                None => {
                    // Temporary guard: held to the end of the statement.
                    let mut j = i + 3;
                    let mut d = 0i32;
                    loop {
                        if j >= block_close {
                            break block_close;
                        }
                        match &toks[j].kind {
                            TokKind::Punct('(' | '[' | '{') => d += 1,
                            TokKind::Punct(')' | ']' | '}') => d -= 1,
                            TokKind::Punct(';') if d == 0 => break j,
                            _ => {}
                        }
                        j += 1;
                    }
                }
            };
            self.cfg.lock_regions.push(LockRegion {
                recv,
                guard,
                tok: i,
                line: toks[i].line,
                col: toks[i].col,
                held: (i + 3, held_end),
            });
        }
    }
}

/// Closing `}` of the innermost block enclosing token `i`: the first `}`
/// scanning forward that drops the brace depth below zero, bounded by the
/// body's own `close`.
fn enclosing_brace_close(toks: &[Token], _open: usize, close: usize, i: usize) -> usize {
    let mut d = 0i32;
    for (j, tok) in toks.iter().enumerate().take(close + 1).skip(i) {
        match &tok.kind {
            TokKind::Punct('{') => d += 1,
            TokKind::Punct('}') => {
                d -= 1;
                if d < 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    close
}

/// Finds the nested fn body (`{ … }`) starting the scan just after `fn
/// name`, bounded by `end`.
fn nested_fn_body(toks: &[Token], mut i: usize, end: usize) -> Option<(usize, usize)> {
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                let c = match_delim(toks, i)?;
                return Some((i, c));
            }
            TokKind::Punct(';') => return None,
            TokKind::Punct('(') | TokKind::Punct('[') => {
                i = match_delim(toks, i)? + 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Textual receiver before the `.` at `dot` (trailing path segments only).
fn receiver_of(toks: &[Token], dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot;
    while j > 0 {
        if let Some(TokKind::Ident(n)) = toks.get(j - 1).map(|t| &t.kind) {
            parts.push(n.clone());
            j -= 1;
            if j > 0 && is_punct(toks, j - 1, '.') {
                j -= 1;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    if parts.is_empty() {
        "<expr>".to_string()
    } else {
        parts.join(".")
    }
}

/// The let-bound name for the acquisition at `lock_idx`, when the
/// statement reads `let [mut] NAME = …lock();`.
fn guard_name(toks: &[Token], lock_idx: usize) -> Option<String> {
    // Walk back to the start of the statement (`;`, `{`, or `}`), then
    // expect `let [mut] NAME =`.
    let mut j = lock_idx;
    while j > 0 {
        match &toks[j - 1].kind {
            TokKind::Punct(';' | '{' | '}') => break,
            _ => j -= 1,
        }
    }
    if ident_at(toks, j) != Some("let") {
        return None;
    }
    let mut k = j + 1;
    if ident_at(toks, k) == Some("mut") {
        k += 1;
    }
    let name = ident_at(toks, k)?;
    if is_punct(toks, k + 1, '=') {
        Some(name.to_string())
    } else {
        None
    }
}

/// Whether token index `i` falls inside any of `ranges` (inclusive).
pub fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    Builder::in_ranges(ranges, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::extract_source;
    use crate::lexer::lex;

    fn cfg_of(src: &str) -> Cfg {
        let lexed = lex(src);
        let facts = extract_source("crates/demo/src/lib.rs", src);
        build(&lexed.tokens, facts.fns[0].body_span)
    }

    #[test]
    fn loop_depth_counts_nesting() {
        let cfg = cfg_of(
            "fn f() {\n\
             \x20   let a = Vec::new();\n\
             \x20   for x in xs {\n\
             \x20       let b = Vec::new();\n\
             \x20       while go() {\n\
             \x20           let c = Vec::new();\n\
             \x20       }\n\
             \x20   }\n\
             }\n",
        );
        let depths: Vec<u32> = cfg
            .sites
            .iter()
            .filter(|s| matches!(s.kind, CostKind::Alloc(_)))
            .map(|s| s.loop_depth)
            .collect();
        assert_eq!(depths, vec![0, 1, 2]);
    }

    #[test]
    fn while_condition_is_inside_the_loop() {
        let cfg = cfg_of("fn f() { while q.recv().is_ok() { work(); } }");
        let recv = cfg
            .sites
            .iter()
            .find(|s| matches!(s.kind, CostKind::ChannelRecv(_)))
            .expect("recv site");
        assert_eq!(recv.loop_depth, 1);
    }

    #[test]
    fn for_iterable_stays_outside_the_loop() {
        let cfg = cfg_of("fn f() { for x in items.clone() { work(); } }");
        let clone = cfg
            .sites
            .iter()
            .find(|s| matches!(s.kind, CostKind::Clone))
            .expect("clone site");
        assert_eq!(clone.loop_depth, 0);
    }

    #[test]
    fn branches_fork_and_rejoin_at_same_depth() {
        let cfg = cfg_of(
            "fn f() {\n\
             \x20   if c { a.clone(); } else { b.clone(); }\n\
             \x20   match v { Some(x) => x.clone(), None => other() }\n\
             }\n",
        );
        assert!(cfg.sites.iter().all(|s| s.loop_depth == 0));
        // The if forks into then/else blocks that both reach a join.
        assert!(cfg.blocks.len() >= 5, "{:?}", cfg.blocks.len());
    }

    #[test]
    fn match_arms_inside_loops_are_loop_depth() {
        let cfg = cfg_of(
            "fn f() {\n\
             \x20   loop {\n\
             \x20       match rx.recv() {\n\
             \x20           Ok(v) => buf.push(v.clone()),\n\
             \x20           Err(_) => tx.send(1).ok(),\n\
             \x20       };\n\
             \x20   }\n\
             }\n",
        );
        let clone = cfg
            .sites
            .iter()
            .find(|s| matches!(s.kind, CostKind::Clone))
            .expect("clone");
        let send = cfg
            .sites
            .iter()
            .find(|s| matches!(s.kind, CostKind::ChannelSend(_)))
            .expect("send");
        assert_eq!(clone.loop_depth, 1);
        assert_eq!(send.loop_depth, 1);
    }

    #[test]
    fn cold_macro_args_are_flagged() {
        let cfg = cfg_of(
            "fn f() {\n\
             \x20   for x in xs {\n\
             \x20       assert!(ok(x), \"bad {}\", x.to_string());\n\
             \x20       let v = x.to_string();\n\
             \x20   }\n\
             }\n",
        );
        let allocs: Vec<bool> = cfg
            .sites
            .iter()
            .filter(|s| matches!(s.kind, CostKind::Alloc(_)))
            .map(|s| s.cold)
            .collect();
        assert_eq!(allocs, vec![true, false]);
    }

    #[test]
    fn lock_region_ends_at_drop_or_block() {
        let cfg = cfg_of(
            "fn f(&self) {\n\
             \x20   let g = self.state.lock();\n\
             \x20   step();\n\
             \x20   drop(g);\n\
             \x20   after();\n\
             }\n",
        );
        assert_eq!(cfg.lock_regions.len(), 1);
        let r = &cfg.lock_regions[0];
        assert_eq!(r.recv, "self.state");
        assert_eq!(r.guard.as_deref(), Some("g"));
        // `after()`'s call token is outside the held range.
        let lexed_after = cfg
            .calls
            .iter()
            .find(|c| c.name == "after")
            .expect("after call");
        assert!(lexed_after.tok > r.held.1);
        let step = cfg.calls.iter().find(|c| c.name == "step").expect("step");
        assert!((r.held.0..=r.held.1).contains(&step.tok));
    }

    #[test]
    fn temporary_guard_is_held_to_statement_end() {
        let cfg = cfg_of(
            "fn f(&self) {\n\
             \x20   self.state.lock().push(1);\n\
             \x20   after();\n\
             }\n",
        );
        let r = &cfg.lock_regions[0];
        assert!(r.guard.is_none());
        let after = cfg.calls.iter().find(|c| c.name == "after").expect("after");
        assert!(after.tok > r.held.1);
    }

    #[test]
    fn spawn_and_catch_regions_flag_calls() {
        let cfg = cfg_of(
            "fn f() {\n\
             \x20   thread::spawn(move || {\n\
             \x20       let _ = catch_unwind(AssertUnwindSafe(|| inner()));\n\
             \x20       outer();\n\
             \x20   });\n\
             \x20   main_line();\n\
             }\n",
        );
        let call = |n: &str| cfg.calls.iter().find(|c| c.name == n).expect("call");
        assert!(call("inner").in_spawn && call("inner").in_catch);
        assert!(call("outer").in_spawn && !call("outer").in_catch);
        assert!(!call("main_line").in_spawn);
    }

    #[test]
    fn panic_ops_are_classified() {
        let cfg = cfg_of(
            "fn f(v: &[u32], n: u32, d: u32) {\n\
             \x20   let a = v[3];\n\
             \x20   let b = opt.unwrap();\n\
             \x20   let c = n / d;\n\
             \x20   let e = n / 2;\n\
             \x20   let s = &v[..];\n\
             }\n",
        );
        let ops: Vec<&str> = cfg
            .sites
            .iter()
            .filter_map(|s| match &s.kind {
                CostKind::PanicOp(o) => Some(*o),
                _ => None,
            })
            .collect();
        // Index in the param list `&[u32]` is a type, skipped (preceded by
        // `&`); `v[3]`, `.unwrap()`, `n / d` flagged; `n / 2` (literal
        // divisor) and `&v[..]` (full range) are not.
        assert_eq!(ops, vec!["index", "unwrap", "div"]);
    }

    #[test]
    fn nested_fn_costs_are_not_attributed_to_outer() {
        let src = "fn outer() {\n\
                   \x20   fn inner() { for x in xs { x.clone(); } }\n\
                   \x20   straight();\n\
                   }\n";
        let lexed = lex(src);
        let facts = extract_source("crates/demo/src/lib.rs", src);
        let outer = facts.fns.iter().find(|f| f.name == "outer").unwrap();
        let cfg = build(&lexed.tokens, outer.body_span);
        assert!(
            cfg.sites.iter().all(|s| !matches!(s.kind, CostKind::Clone)),
            "outer must not own inner's clone"
        );
    }
}
