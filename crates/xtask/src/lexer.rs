//! A minimal but faithful Rust lexer: enough token structure for
//! storm-lint's pattern rules, with exact line/column positions, and
//! correct handling of the constructs that break naive text matching —
//! strings (including raw and byte strings), char literals vs lifetimes,
//! nested block comments, and number literals with suffixes.

/// Token kinds storm-lint distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword. Raw identifiers keep their `r#` prefix in
    /// the text: `r#loop` is a *name*, not the `loop` keyword, and the
    /// keyword-driven structural parsing in [`crate::front`] and
    /// [`crate::cfg`] relies on the two never colliding.
    Ident(String),
    /// Integer or float literal; `is_float` is true for literals with a
    /// fractional part, exponent, or `f32`/`f64` suffix.
    Num {
        /// Literal text including suffix.
        text: String,
        /// Whether this is a floating-point literal.
        is_float: bool,
    },
    /// String/char/byte literal (contents dropped; rules never need them).
    Literal,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Multi-character operator storm-lint cares about: `==` `!=` `::`
    /// `..` `..=` `=>` `->` `<=` `>=` `&&` `||`.
    Op(&'static str),
    /// Any other single punctuation character.
    Punct(char),
}

/// A token with its source position (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (character, not byte).
    pub col: u32,
}

/// A `//` line comment (block comments are skipped: allow directives must
/// be line comments so they unambiguously attach to a line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Text after the `//`, untrimmed.
    pub text: String,
}

/// Lexer output: tokens plus the line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in order.
    pub tokens: Vec<Token>,
    /// All `//` comments in order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Text of each identifier token (test helper).
    pub fn idents(&self) -> Vec<&str> {
        self.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }
}

struct Cursor<'a> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'a str>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<char> {
        self.chars.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }
}

/// Lexes `source` into tokens and comments. Unterminated constructs are
/// tolerated (lexing continues at end of input) — the linter must not
/// panic on any input file.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        src: std::marker::PhantomData,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push(Comment { line, text });
            }
            '/' if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek2()) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            '"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    line,
                    col,
                });
            }
            'r' if matches!(cur.peek2(), Some('"' | '#')) && is_raw_string_start(&cur) => {
                lex_raw_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    line,
                    col,
                });
            }
            'b' if cur.peek2() == Some('"') => {
                cur.bump();
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    line,
                    col,
                });
            }
            'b' if cur.peek2() == Some('r') && is_byte_raw_string_start(&cur) => {
                cur.bump();
                lex_raw_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    line,
                    col,
                });
            }
            'b' if cur.peek2() == Some('\'') => {
                cur.bump();
                lex_char(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    line,
                    col,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`).
                let is_lifetime = match (cur.peek2(), cur.peek3()) {
                    (Some(c2), c3) if c2 == '_' || c2.is_alphabetic() => c3 != Some('\''),
                    _ => false,
                };
                if is_lifetime {
                    cur.bump(); // '
                    while cur.peek().is_some_and(|c| c == '_' || c.is_alphanumeric()) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        line,
                        col,
                    });
                } else {
                    lex_char(&mut cur);
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        line,
                        col,
                    });
                }
            }
            c if c == '_' || c.is_alphabetic() => {
                let mut ident = String::new();
                // Raw identifier prefix — kept in the token text. Stripping
                // it (as this lexer once did) turned `r#fn`/`r#loop` into
                // tokens indistinguishable from the `fn`/`loop` keywords and
                // desynced every keyword-driven consumer downstream.
                if c == 'r' && cur.peek2() == Some('#') && cur.peek3().is_some_and(is_ident_char) {
                    ident.push_str("r#");
                    cur.bump();
                    cur.bump();
                }
                while let Some(c) = cur.peek() {
                    if is_ident_char(c) {
                        ident.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident(ident),
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                let kind = lex_number(&mut cur);
                out.tokens.push(Token { kind, line, col });
            }
            _ => {
                cur.bump();
                let kind = match c {
                    ':' if cur.eat(':') => TokKind::Op("::"),
                    '=' if cur.eat('=') => TokKind::Op("=="),
                    '=' if cur.eat('>') => TokKind::Op("=>"),
                    '!' if cur.eat('=') => TokKind::Op("!="),
                    '<' if cur.eat('=') => TokKind::Op("<="),
                    '>' if cur.eat('=') => TokKind::Op(">="),
                    '-' if cur.eat('>') => TokKind::Op("->"),
                    '&' if cur.eat('&') => TokKind::Op("&&"),
                    '|' if cur.eat('|') => TokKind::Op("||"),
                    '.' if cur.peek() == Some('.') => {
                        cur.bump();
                        if cur.eat('=') {
                            TokKind::Op("..=")
                        } else {
                            TokKind::Op("..")
                        }
                    }
                    other => TokKind::Punct(other),
                };
                out.tokens.push(Token { kind, line, col });
            }
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// True when an `r` at the cursor starts `r"` / `r#"` (and not a raw
/// identifier like `r#fn` or a plain ident `r2`).
fn is_raw_string_start(cur: &Cursor) -> bool {
    let mut i = cur.pos + 1;
    while cur.chars.get(i) == Some(&'#') {
        i += 1;
    }
    cur.chars.get(i) == Some(&'"')
}

fn is_byte_raw_string_start(cur: &Cursor) -> bool {
    // cursor at `b`, next is `r`.
    let mut i = cur.pos + 2;
    while cur.chars.get(i) == Some(&'#') {
        i += 1;
    }
    cur.chars.get(i) == Some(&'"')
}

/// Consumes a `"…"` string starting at the opening quote.
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes `r"…"` / `r#"…"#` starting at the `r`.
fn lex_raw_string(cur: &mut Cursor) {
    cur.bump(); // r
    let mut hashes = 0usize;
    while cur.eat('#') {
        hashes += 1;
    }
    if !cur.eat('"') {
        return; // not actually a raw string; tolerate
    }
    loop {
        match cur.bump() {
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
            None => return,
        }
    }
}

/// Consumes `'x'`, `'\n'`, `'\u{1F600}'` starting at the quote.
fn lex_char(cur: &mut Cursor) {
    cur.bump(); // opening '
    match cur.bump() {
        Some('\\') => {
            cur.bump(); // escaped char (or opening { of \u)
            while cur.peek().is_some() && cur.peek() != Some('\'') {
                cur.bump();
            }
        }
        Some('\'') => return, // empty — malformed, tolerate
        Some(_) => {}
        None => return,
    }
    cur.eat('\'');
}

/// Consumes a number literal; decides int vs float.
fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut text = String::new();
    let mut is_float = false;

    let radix_prefix =
        cur.peek() == Some('0') && matches!(cur.peek2(), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefix {
        text.push(cur.bump().expect("peeked 0"));
        text.push(cur.bump().expect("peeked radix"));
        while cur
            .peek()
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            text.push(cur.bump().expect("peeked digit"));
        }
    } else {
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
            text.push(cur.bump().expect("peeked digit"));
        }
        // Fractional part — but not `..` (range) and not `.method()` /
        // `.0` tuple access.
        if cur.peek() == Some('.')
            && cur.peek2() != Some('.')
            && cur
                .peek2()
                .is_none_or(|c| c.is_ascii_digit() || !is_ident_char(c))
        {
            is_float = true;
            text.push(cur.bump().expect("peeked dot"));
            while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(cur.bump().expect("peeked digit"));
            }
        }
        // Exponent.
        if cur.peek().is_some_and(|c| c == 'e' || c == 'E') {
            let sign_ok =
                matches!(cur.peek2(), Some(c) if c.is_ascii_digit() || c == '+' || c == '-');
            if sign_ok {
                is_float = true;
                text.push(cur.bump().expect("peeked e"));
                if cur.peek().is_some_and(|c| c == '+' || c == '-') {
                    text.push(cur.bump().expect("peeked sign"));
                }
                while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    text.push(cur.bump().expect("peeked digit"));
                }
            }
        }
    }
    // Suffix (u32, f64, usize, …).
    let mut suffix = String::new();
    while cur.peek().is_some_and(is_ident_char) {
        suffix.push(cur.bump().expect("peeked suffix char"));
    }
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    text.push_str(&suffix);
    TokKind::Num { text, is_float }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_comments_and_chars_do_not_produce_idents() {
        let lexed = lex(r##"
            // unwrap() in a comment
            /* thread_rng in /* nested */ block */
            let s = "unwrap() inside string";
            let r = r#"thread_rng "quoted" inside raw"#;
            let c = '\'';
            let l: &'static str = "x";
        "##);
        let idents = lexed.idents();
        assert!(!idents.contains(&"unwrap"));
        assert!(!idents.contains(&"thread_rng"));
        // `'static` lexes as a single Lifetime token, not an ident.
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(!idents.contains(&"static"), "{idents:?}");
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn ranges_are_not_floats() {
        let lexed = lex("for i in 0..10 { x[i as usize]; } let f = 1.5e3f64; let g = 2e8;");
        let nums: Vec<(&str, bool)> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num { text, is_float } => Some((text.as_str(), *is_float)),
                _ => None,
            })
            .collect();
        assert_eq!(
            nums,
            vec![
                ("0", false),
                ("10", false),
                ("1.5e3f64", true),
                ("2e8", true)
            ]
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let lexed = lex("a\n  b==c");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
        assert_eq!(lexed.tokens[2].kind, TokKind::Op("=="));
    }

    #[test]
    fn tuple_index_is_not_a_float() {
        let lexed = lex("x.0.y 1.max(2)");
        // `.0` after an ident lexes as Punct('.') + int; `1.max` must keep
        // the 1 an integer.
        let floats: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(&t.kind, TokKind::Num { is_float: true, .. }))
            .collect();
        assert!(floats.is_empty(), "{floats:?}");
    }

    #[test]
    fn trailing_dot_float_is_a_float() {
        let lexed = lex("let x = 1. + 2.;");
        let floats = lexed
            .tokens
            .iter()
            .filter(|t| matches!(&t.kind, TokKind::Num { is_float: true, .. }))
            .count();
        assert_eq!(floats, 2);
    }

    #[test]
    fn byte_and_raw_idents() {
        let lexed = lex(r#"let b = b"bytes"; let r#fn = 1; let rx = r2;"#);
        let idents = lexed.idents();
        // `r#fn` keeps its prefix: it must never collide with the keyword.
        assert!(idents.contains(&"r#fn"), "{idents:?}");
        assert!(!idents.contains(&"fn"), "{idents:?}");
        assert!(idents.contains(&"r2"));
    }

    #[test]
    fn raw_idents_never_alias_keywords() {
        let lexed = lex("fn f() { let r#loop = 1; let r#fn = 2; r#match(r#loop); }");
        let idents = lexed.idents();
        assert_eq!(
            idents.iter().filter(|i| **i == "fn").count(),
            1,
            "only the real `fn` keyword: {idents:?}"
        );
        assert!(!idents.contains(&"loop"), "{idents:?}");
        assert!(!idents.contains(&"match"), "{idents:?}");
        assert!(idents.contains(&"r#loop"), "{idents:?}");
    }
}
