//! storm-analyzer's structural front-end: per-function fact extraction.
//!
//! The analyzer passes (A1–A3, see [`crate::analyze`]) need *structure* the
//! token-pattern lint rules cannot see: which function a fact occurs in,
//! which functions it calls, which locks it takes and in what order, which
//! protocol-enum variants it constructs or matches. A full Rust grammar is
//! not required for any of that — brace-matched item extraction over the
//! existing lexer ([`crate::lexer`]) recovers enough shape:
//!
//! * **functions** — every `fn name` with its body span, enclosing `impl`
//!   type (for `Type::method` keys), visibility, and `#[cfg(test)]` status;
//! * **call sites** — `name(`, `.name(`, `Path::name(` inside each body;
//! * **lock facts** — zero-argument `.lock()` / `.read()` / `.write()` /
//!   `.try_*()` receiver chains, in textual order (the zero-argument
//!   requirement is what separates `guard.read()` from `file.read(&mut
//!   buf)`);
//! * **channel protocol facts** — `Enum::Variant` uses for enums *declared
//!   in the same file*, classified producer vs consumer (a use whose
//!   following tokens reach `=>` is a match arm) and flagged when they sit
//!   inside a `send(…)`/`try_send(…)` argument list;
//! * **determinism facts** — iteration over variables declared as
//!   `HashMap`/`HashSet` in the file, `Instant::now`/`SystemTime::now`,
//!   `thread::current`, and visibly-float `+=` accumulation.
//!
//! Everything here is a lexical approximation and is documented as such in
//! DESIGN.md §10: types are never inferred, lock identity is the receiver's
//! textual path, and call resolution is by name. The passes compensate with
//! allow directives and the findings baseline.

use std::collections::BTreeSet;

use crate::lexer::{Lexed, TokKind, Token};
use crate::rules;

/// Kinds of lock-acquisition methods A1 tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `.lock()` / `.try_lock()` (Mutex).
    Lock,
    /// `.read()` / `.try_read()` (RwLock shared).
    Read,
    /// `.write()` / `.try_write()` (RwLock exclusive).
    Write,
}

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Textual receiver path (`self.meta`, `shard.index`, …).
    pub recv: String,
    /// Which acquisition method.
    pub kind: LockKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the method name.
    pub col: u32,
    /// Body-order position (shared counter with call sites, so lock and
    /// call events interleave correctly).
    pub order: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (`push`, `gather_batch`, …).
    pub name: String,
    /// For `Path::name(…)`, the path segment directly before the `::`.
    pub qual: Option<String>,
    /// Whether this is a `.name(…)` method call.
    pub is_method: bool,
    /// 1-based line.
    pub line: u32,
    /// Body-order position (shared with lock sites).
    pub order: u32,
}

/// A determinism-relevant fact inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactKind {
    /// Iteration over a `HashMap`/`HashSet`-declared variable: the
    /// receiver name and the iterating method (`iter`, `values`, `drain`,
    /// `for … in`).
    HashIter {
        /// The hash-declared variable.
        var: String,
        /// The iterating method (or `for-in`).
        method: String,
    },
    /// `Instant::now` / `SystemTime::now`.
    TimeSource {
        /// Which clock type.
        what: String,
    },
    /// `thread::current` (thread-id values).
    ThreadId,
    /// `+=` whose right-hand side is visibly floating-point.
    FloatAccum,
}

/// A fact with its position.
#[derive(Debug, Clone)]
pub struct Fact {
    /// What was observed.
    pub kind: FactKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One `Enum::Variant` use of a same-file enum.
#[derive(Debug, Clone)]
pub struct VariantUse {
    /// The enum's name.
    pub enum_name: String,
    /// The variant used.
    pub variant: String,
    /// True when the use is a match-arm pattern (tokens after it reach
    /// `=>`), false when it constructs a value.
    pub is_consume: bool,
    /// True when the use sits inside a `send(…)`/`try_send(…)` argument
    /// list.
    pub in_send: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Per-function summary: identity plus every extracted fact.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Simple name.
    pub name: String,
    /// Enclosing `impl` type, when any.
    pub qual: Option<String>,
    /// Whether the fn carries a `pub` marker (any restriction form).
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body.
    pub end_line: u32,
    /// Whether the fn sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Call sites, in body order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions, in body order.
    pub locks: Vec<LockSite>,
    /// Determinism facts.
    pub facts: Vec<Fact>,
    /// Same-file protocol-enum variant uses.
    pub variant_uses: Vec<VariantUse>,
    /// Whether the body calls `recv_timeout`/`recv_deadline` (the signal
    /// A3 accepts as a timeout/retry gather wrapper).
    pub has_recv_timeout: bool,
    /// Token-index span of the body braces (`{` .. `}`, inclusive) in the
    /// file's token stream — [`crate::cfg`] rebuilds block structure from
    /// the retained tokens rather than duplicating them here.
    pub body_span: (usize, usize),
}

impl FnSummary {
    /// `Type::name` or plain `name` — the human-facing key.
    pub fn key(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An `enum` declaration found in a file.
#[derive(Debug, Clone)]
pub struct EnumDecl {
    /// The enum's name.
    pub name: String,
    /// Declared variant names, in order.
    pub variants: Vec<String>,
    /// Line of the `enum` keyword.
    pub line: u32,
}

/// Everything the passes need from one source file.
#[derive(Debug, Clone)]
pub struct FileFacts {
    /// Repo-relative path.
    pub path: String,
    /// Extracted functions.
    pub fns: Vec<FnSummary>,
    /// Enum declarations (for protocol conformance).
    pub enums: Vec<EnumDecl>,
    /// Variable/field names declared with a `HashMap`/`HashSet` type or
    /// initializer anywhere in the file.
    pub hash_vars: BTreeSet<String>,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "in", "let", "else",
    "move", "unsafe", "as", "fn", "impl", "where", "pub", "use", "mod", "ref", "mut", "dyn",
    "struct", "enum", "trait", "type", "const", "static", "await", "async", "yield", "box",
];

/// Zero-argument method names that acquire a lock.
fn lock_kind(name: &str) -> Option<LockKind> {
    match name {
        "lock" | "try_lock" => Some(LockKind::Lock),
        "read" | "try_read" => Some(LockKind::Read),
        "write" | "try_write" => Some(LockKind::Write),
        _ => None,
    }
}

/// Methods whose call on a hash collection observes its iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Extracts [`FileFacts`] from one lexed source file.
pub fn extract(rel_path: &str, lexed: &Lexed) -> FileFacts {
    let toks = &lexed.tokens;
    let test_regions = rules::test_regions(toks);
    let enums = extract_enums(toks);
    let hash_vars = extract_hash_vars(toks);
    let impls = extract_impl_regions(toks);

    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("fn") {
            if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                if let Some((body_start, body_end)) = fn_body_span(toks, i + 2) {
                    let qual = impls
                        .iter()
                        .filter(|(s, e, _)| (*s..=*e).contains(&i))
                        .min_by_key(|(s, e, _)| e - s)
                        .map(|(_, _, ty)| ty.clone());
                    let mut summary = FnSummary {
                        name: name.clone(),
                        qual,
                        is_pub: fn_is_pub(toks, i),
                        line: toks[i].line,
                        end_line: toks[body_end].line,
                        in_test: rules::in_regions(&test_regions, toks[i].line),
                        calls: Vec::new(),
                        locks: Vec::new(),
                        facts: Vec::new(),
                        variant_uses: Vec::new(),
                        has_recv_timeout: false,
                        body_span: (body_start, body_end),
                    };
                    extract_body_facts(
                        toks,
                        body_start,
                        body_end,
                        &enums,
                        &hash_vars,
                        &mut summary,
                    );
                    fns.push(summary);
                    // Nested fns/closures: bodies are rescanned from inside
                    // the outer body too, so continue right after the `fn`
                    // name rather than skipping the whole body.
                    i += 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    FileFacts {
        path: rel_path.to_string(),
        fns,
        enums,
        hash_vars,
    }
}

/// Convenience: lex then extract.
pub fn extract_source(rel_path: &str, source: &str) -> FileFacts {
    extract(rel_path, &crate::lexer::lex(source))
}

pub(crate) fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn is_punct(toks: &[Token], i: usize, want: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(c)) if *c == want)
}

pub(crate) fn is_op(toks: &[Token], i: usize, want: &str) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Op(op)) if *op == want)
}

/// Finds the matching close for the open delimiter at `open` (`{`/`(`/`[`).
pub(crate) fn match_delim(toks: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match toks.get(open).map(|t| &t.kind) {
        Some(TokKind::Punct('{')) => ('{', '}'),
        Some(TokKind::Punct('(')) => ('(', ')'),
        Some(TokKind::Punct('[')) => ('[', ']'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (j, tok) in toks.iter().enumerate().skip(open) {
        match &tok.kind {
            TokKind::Punct(p) if *p == o => depth += 1,
            TokKind::Punct(p) if *p == c => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// From just after `fn name`, locates the body `{ … }`, skipping the
/// signature (parens, return type, where clause). Returns `None` for
/// bodyless trait-method declarations.
fn fn_body_span(toks: &[Token], mut i: usize) -> Option<(usize, usize)> {
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                let end = match_delim(toks, i)?;
                return Some((i, end));
            }
            TokKind::Punct(';') => return None,
            TokKind::Punct('(') | TokKind::Punct('[') => {
                i = match_delim(toks, i)? + 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Whether the `fn` at `i` carries a `pub` marker (walking back over
/// `const`/`unsafe`/`async`/`extern "abi"` and a `pub(restriction)` group).
fn fn_is_pub(toks: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Ident(w) if matches!(w.as_str(), "const" | "unsafe" | "async" | "extern") => {}
            TokKind::Literal => {} // extern "C"
            TokKind::Punct(')') => {
                // Possibly the close of `pub(crate)`: walk to its `(`.
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match &toks[j].kind {
                        TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
            }
            TokKind::Ident(w) if w == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// `impl` regions as `(start_tok, end_tok, self_type_name)`.
fn extract_impl_regions(toks: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("impl") {
            // Tokens between `impl` and its `{` name the (optional) trait
            // and the self type; the self type follows `for` when present.
            // Generic parameters (`impl<K: Eq + Hash> …`) are skipped so a
            // type parameter is never mistaken for the self type.
            let mut j = i + 1;
            if is_punct(toks, j, '<') {
                let mut angle = 0i32;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        TokKind::Punct('{' | ';') => break, // malformed; tolerate
                        _ => {}
                    }
                    j += 1;
                }
            }
            let mut names: Vec<(usize, String)> = Vec::new();
            let mut for_at: Option<usize> = None;
            while j < toks.len() && !is_punct(toks, j, '{') {
                match &toks[j].kind {
                    TokKind::Ident(w) if w == "for" => for_at = Some(j),
                    TokKind::Ident(w) if w == "where" => break,
                    TokKind::Ident(w) => names.push((j, w.clone())),
                    _ => {}
                }
                j += 1;
            }
            while j < toks.len() && !is_punct(toks, j, '{') {
                j += 1;
            }
            if let Some(end) = match_delim(toks, j) {
                let ty = match for_at {
                    Some(f) => names.iter().find(|(p, _)| *p > f).map(|(_, n)| n.clone()),
                    None => names.first().map(|(_, n)| n.clone()),
                };
                if let Some(ty) = ty {
                    out.push((j, end, ty));
                }
                // Impl bodies nest fns but never other impls we care to
                // separate; scan on from just inside.
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// All `enum Name { Variant, … }` declarations.
fn extract_enums(toks: &[Token]) -> Vec<EnumDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("enum") {
            if let Some(name) = ident_at(toks, i + 1) {
                let name = name.to_string();
                let line = toks[i].line;
                // Skip generics to the `{`.
                let mut j = i + 2;
                while j < toks.len() && !is_punct(toks, j, '{') && !is_punct(toks, j, ';') {
                    j += 1;
                }
                if let Some(end) = match_delim(toks, j) {
                    let mut variants = Vec::new();
                    let mut k = j + 1;
                    let mut expect_variant = true;
                    while k < end {
                        match &toks[k].kind {
                            // Skip attributes on variants.
                            TokKind::Punct('#') if is_punct(toks, k + 1, '[') => {
                                k = match_delim(toks, k + 1).map_or(end, |c| c + 1);
                                continue;
                            }
                            TokKind::Ident(v) if expect_variant => {
                                variants.push(v.clone());
                                expect_variant = false;
                                k += 1;
                            }
                            // Payload or discriminant: skip to the comma.
                            TokKind::Punct('{') | TokKind::Punct('(') => {
                                k = match_delim(toks, k).map_or(end, |c| c + 1);
                            }
                            TokKind::Punct(',') => {
                                expect_variant = true;
                                k += 1;
                            }
                            _ => k += 1,
                        }
                    }
                    out.push(EnumDecl {
                        name,
                        variants,
                        line,
                    });
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Names declared as `HashMap`/`HashSet` anywhere in the file, via a type
/// ascription (`name: HashMap<…>`, fields and params alike) or a `let`
/// initializer (`let name = HashMap::new()`).
fn extract_hash_vars(toks: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        let Some(hash) = ident_at(toks, i) else {
            continue;
        };
        if hash != "HashMap" && hash != "HashSet" {
            continue;
        }
        // Walk back over `std :: collections ::` to the declaring token.
        let mut j = i;
        while j >= 2
            && is_op(toks, j - 1, "::")
            && matches!(ident_at(toks, j - 2), Some("std" | "collections"))
        {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        // `name : HashMap` (field, param, or typed let).
        if is_punct(toks, j - 1, ':') {
            // `let x: HashMap`, `buffers: HashMap`, `&self, map: HashMap`…
            if let Some(name) = ident_at(toks, j.wrapping_sub(2)) {
                out.insert(name.to_string());
            }
            continue;
        }
        // `let [mut] name = HashMap::…`.
        if is_punct(toks, j - 1, '=') && j >= 2 {
            if let Some(name) = ident_at(toks, j - 2) {
                let prev = j.checked_sub(3).and_then(|p| ident_at(toks, p));
                let prev2 = j.checked_sub(4).and_then(|p| ident_at(toks, p));
                if prev == Some("let") || (prev == Some("mut") && prev2 == Some("let")) {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

/// Walks back from the `.` before a method name, reconstructing the
/// receiver's trailing path (`self.meta`, `shard.index`, `foo()`).
pub(crate) fn receiver_chain(toks: &[Token], dot_idx: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot_idx; // at the `.`
    loop {
        if j == 0 {
            break;
        }
        // Expect an ident (or `)` for a call-expression receiver) before
        // the current `.`.
        match &toks[j - 1].kind {
            TokKind::Ident(name) => {
                parts.push(name.clone());
                j -= 1;
                // Continue the chain over a preceding `.`.
                if j > 0 && is_punct(toks, j - 1, '.') {
                    j -= 1;
                    continue;
                }
                break;
            }
            TokKind::Punct(')') => {
                // `foo(…).lock()` — find the call's name.
                let mut depth = 1i32;
                let mut k = j - 1;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match &toks[k].kind {
                        TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
                if k > 0 {
                    if let Some(name) = ident_at(toks, k - 1) {
                        parts.push(format!("{name}()"));
                    }
                }
                break;
            }
            _ => break,
        }
    }
    parts.reverse();
    if parts.is_empty() {
        "<expr>".to_string()
    } else {
        parts.join(".")
    }
}

/// Scans one fn body (`toks[start..=end]`), filling `summary`.
#[allow(clippy::too_many_lines)]
fn extract_body_facts(
    toks: &[Token],
    start: usize,
    end: usize,
    enums: &[EnumDecl],
    hash_vars: &BTreeSet<String>,
    summary: &mut FnSummary,
) {
    // Pre-pass: token ranges of `send(…)`/`try_send(…)` argument lists.
    let mut send_ranges: Vec<(usize, usize)> = Vec::new();
    for i in start..=end {
        if matches!(ident_at(toks, i), Some("send" | "try_send")) && is_punct(toks, i + 1, '(') {
            if let Some(close) = match_delim(toks, i + 1) {
                send_ranges.push((i + 1, close));
            }
        }
    }
    let in_send = |i: usize| send_ranges.iter().any(|&(s, e)| (s..=e).contains(&i));

    let mut order = 0u32;
    let mut i = start;
    while i <= end {
        let line = toks[i].line;
        let col = toks[i].col;
        match &toks[i].kind {
            TokKind::Ident(name) if is_punct(toks, i + 1, '(') => {
                if NON_CALL_KEYWORDS.contains(&name.as_str()) {
                    i += 1;
                    continue;
                }
                let is_method = i > 0 && is_punct(toks, i - 1, '.');
                let qual = if i >= 2 && is_op(toks, i - 1, "::") {
                    ident_at(toks, i - 2).map(ToString::to_string)
                } else {
                    None
                };
                if name == "recv_timeout" || name == "recv_deadline" {
                    summary.has_recv_timeout = true;
                }
                // Lock acquisition: zero-argument `.lock()`-family method.
                if let Some(kind) = lock_kind(name) {
                    if is_method && is_punct(toks, i + 2, ')') {
                        summary.locks.push(LockSite {
                            recv: receiver_chain(toks, i - 1),
                            kind,
                            line,
                            col,
                            order,
                        });
                        order += 1;
                        i += 3;
                        continue;
                    }
                }
                // Hash-collection iteration.
                if is_method && HASH_ITER_METHODS.contains(&name.as_str()) {
                    let recv = receiver_chain(toks, i - 1);
                    let last = recv.rsplit('.').next().unwrap_or(&recv);
                    if hash_vars.contains(last) {
                        summary.facts.push(Fact {
                            kind: FactKind::HashIter {
                                var: last.to_string(),
                                method: name.clone(),
                            },
                            line,
                            col,
                        });
                    }
                }
                // Time sources.
                if name == "now" && matches!(qual.as_deref(), Some("Instant" | "SystemTime")) {
                    summary.facts.push(Fact {
                        kind: FactKind::TimeSource {
                            what: qual.clone().expect("matched Some"),
                        },
                        line,
                        col,
                    });
                }
                if name == "current" && qual.as_deref() == Some("thread") {
                    summary.facts.push(Fact {
                        kind: FactKind::ThreadId,
                        line,
                        col,
                    });
                }
                // Same-file enum variant use (`Enum::Variant(…)`).
                if let Some(q) = &qual {
                    if let Some(decl) = enums.iter().find(|e| &e.name == q) {
                        if decl.variants.iter().any(|v| v == name) {
                            summary.variant_uses.push(VariantUse {
                                enum_name: q.clone(),
                                variant: name.clone(),
                                is_consume: is_match_arm_use(toks, i, end),
                                in_send: in_send(i),
                                line,
                                col,
                            });
                        }
                    }
                }
                summary.calls.push(CallSite {
                    name: name.clone(),
                    qual,
                    is_method,
                    line,
                    order,
                });
                order += 1;
                i += 1;
            }
            // `Enum::Variant` without a call-paren (unit or struct-literal
            // payload): the variant token is *not* followed by `(`.
            TokKind::Ident(name) if i >= 2 && is_op(toks, i - 1, "::") => {
                if let Some(q) = ident_at(toks, i - 2) {
                    if let Some(decl) = enums.iter().find(|e| e.name == q) {
                        if decl.variants.iter().any(|v| v == name) {
                            summary.variant_uses.push(VariantUse {
                                enum_name: q.to_string(),
                                variant: name.clone(),
                                is_consume: is_match_arm_use(toks, i, end),
                                in_send: in_send(i),
                                line,
                                col,
                            });
                        }
                    }
                }
                i += 1;
            }
            // `for pat in [&][mut] var {` over a hash-declared var.
            TokKind::Ident(name) if name == "in" => {
                let mut j = i + 1;
                while is_punct(toks, j, '&') || ident_at(toks, j) == Some("mut") {
                    j += 1;
                }
                if let Some(var) = ident_at(toks, j) {
                    if hash_vars.contains(var) && is_punct(toks, j + 1, '{') {
                        summary.facts.push(Fact {
                            kind: FactKind::HashIter {
                                var: var.to_string(),
                                method: "for-in".to_string(),
                            },
                            line: toks[j].line,
                            col: toks[j].col,
                        });
                    }
                }
                i += 1;
            }
            // Visibly-float `+=` accumulation: `x += 1.5`, `x += y as f64`.
            TokKind::Punct('+') if is_punct(toks, i + 1, '=') => {
                let floatish = matches!(
                    toks.get(i + 2).map(|t| &t.kind),
                    Some(TokKind::Num { is_float: true, .. })
                ) || matches!(ident_at(toks, i + 2), Some("f32" | "f64"));
                if floatish {
                    summary.facts.push(Fact {
                        kind: FactKind::FloatAccum,
                        line,
                        col,
                    });
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
}

/// Whether the `Enum::Variant` use at `i` is a match-arm pattern: skip the
/// optional payload group, then closing delimiters and an optional guard,
/// and look for `=>`.
///
/// The forward scan alone misreads a construction in a non-block arm body
/// (`Ok(v) => Event::Done { v }, Err(e) => …`) as a pattern, because the
/// *next* arm's `=>` is ahead of it. A backward pre-check catches that
/// shape: when the nearest preceding significant token is `=>` or `=`, the
/// use starts an expression, not a pattern.
fn is_match_arm_use(toks: &[Token], variant_idx: usize, body_end: usize) -> bool {
    if starts_expression(toks, variant_idx) {
        return false;
    }
    let mut j = variant_idx + 1;
    // Payload group directly after the variant name.
    if is_punct(toks, j, '(') || is_punct(toks, j, '{') {
        match match_delim(toks, j) {
            Some(close) => j = close + 1,
            None => return false,
        }
    }
    // Unwind enclosing pattern delimiters and sibling patterns: `)`, `]`,
    // `|` (or-patterns), `,` (tuple siblings), `&`/`::` and idents with an
    // optional payload group (`Err(_)`, `Point { .. }`). Anything
    // expression-like (`;`, `.`, operators) means this was a construction.
    let limit = (variant_idx + 64).min(body_end);
    while j <= limit {
        match &toks[j].kind {
            TokKind::Punct(')' | ']' | '|' | ',' | '&') | TokKind::Op("::") => j += 1,
            TokKind::Op("=>") => return true,
            // Guard: `Pat if cond => …` — scan ahead for the arrow before
            // a statement end.
            TokKind::Ident(w) if w == "if" => {
                while j <= limit {
                    match &toks[j].kind {
                        TokKind::Op("=>") => return true,
                        TokKind::Punct(';' | '{') => return false,
                        _ => j += 1,
                    }
                }
                return false;
            }
            TokKind::Ident(_) => {
                j += 1;
                // A sibling pattern's payload: `Err(_)`, `S { .. }`.
                if is_punct(toks, j, '(') || is_punct(toks, j, '{') {
                    match match_delim(toks, j) {
                        Some(close) => j = close + 1,
                        None => return false,
                    }
                }
            }
            _ => return false,
        }
    }
    false
}

/// Backward scan from the `Enum` token of an `Enum::Variant` use (the
/// variant token sits at `variant_idx`, the enum name two before it):
/// skipping tokens that look the same in patterns and expressions (idents,
/// `(`/`[`, `&`, `.`, `::`), does the use follow `=>`, `=`, or `return` —
/// i.e. start an expression?
fn starts_expression(toks: &[Token], variant_idx: usize) -> bool {
    let mut j = variant_idx.saturating_sub(2); // the enum-name token
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            // Pattern context for sure: `let P = …`, `match`/`for` keywords.
            TokKind::Ident(w) if matches!(w.as_str(), "let" | "match" | "for" | "while" | "if") => {
                return false;
            }
            TokKind::Ident(w) if w == "return" => return true,
            TokKind::Ident(_) | TokKind::Punct('(' | '[' | '&' | '.' | '_') | TokKind::Op("::") => {
            }
            TokKind::Op("=>") => return true,
            TokKind::Punct('=') => return true,
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract_source("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn fn_extraction_finds_methods_and_frees() {
        let f = facts(
            "pub fn free() {}\n\
             struct S;\n\
             impl S {\n    pub(crate) fn method(&self) { helper(); }\n}\n\
             fn helper() {}\n",
        );
        let keys: Vec<String> = f.fns.iter().map(FnSummary::key).collect();
        assert_eq!(keys, vec!["free", "S::method", "helper"]);
        assert!(f.fns[0].is_pub);
        assert!(f.fns[1].is_pub);
        assert!(!f.fns[2].is_pub);
        assert_eq!(f.fns[1].calls.len(), 1);
        assert_eq!(f.fns[1].calls[0].name, "helper");
    }

    #[test]
    fn impl_for_takes_the_self_type() {
        let f = facts(
            "trait T { fn go(&self); }\n\
             struct W;\n\
             impl T for W {\n    fn go(&self) {}\n}\n",
        );
        let w = f.fns.iter().find(|f| f.qual.is_some()).expect("impl fn");
        assert_eq!(w.key(), "W::go");
    }

    #[test]
    fn lock_sites_record_receiver_and_order() {
        let f = facts(
            "fn f(&self) {\n\
             \x20   let a = self.meta.lock();\n\
             \x20   let b = self.data.write();\n\
             \x20   file.read(&mut buf);\n\
             }\n",
        );
        let locks = &f.fns[0].locks;
        assert_eq!(locks.len(), 2, "{locks:?}");
        assert_eq!(locks[0].recv, "self.meta");
        assert_eq!(locks[0].kind, LockKind::Lock);
        assert_eq!(locks[1].recv, "self.data");
        assert_eq!(locks[1].kind, LockKind::Write);
        assert!(locks[0].order < locks[1].order);
    }

    #[test]
    fn hash_iteration_is_detected_only_for_hash_vars() {
        let f = facts(
            "struct S { counts: HashMap<u32, u32> }\n\
             fn f(s: &S, v: &Vec<u32>) {\n\
             \x20   for x in v.iter() {}\n\
             \x20   for (k, c) in s.counts.iter() {}\n\
             \x20   let t: u32 = s.counts.values().sum();\n\
             }\n",
        );
        let hash_facts: Vec<&Fact> = f.fns[0]
            .facts
            .iter()
            .filter(|x| matches!(x.kind, FactKind::HashIter { .. }))
            .collect();
        assert_eq!(hash_facts.len(), 2, "{hash_facts:?}");
    }

    #[test]
    fn let_bound_hash_and_for_in_detected() {
        let f = facts(
            "fn f() {\n\
             \x20   let mut seen = HashSet::new();\n\
             \x20   for id in &seen {}\n\
             }\n",
        );
        assert!(f.hash_vars.contains("seen"));
        assert_eq!(f.fns[0].facts.len(), 1);
    }

    #[test]
    fn enum_decl_and_variant_classification() {
        let f = facts(
            "enum Cmd { Open(u32), Fill { n: usize }, Close }\n\
             fn produce(tx: &Sender<Cmd>) {\n\
             \x20   tx.send(Cmd::Open(1)).unwrap();\n\
             \x20   tx.send(Cmd::Fill { n: 3 }).ok();\n\
             \x20   let c = Cmd::Close;\n\
             }\n\
             fn consume(rx: &Receiver<Cmd>) {\n\
             \x20   match rx.recv() {\n\
             \x20       Ok(Cmd::Open(n)) => {}\n\
             \x20       Ok(Cmd::Fill { n }) => {}\n\
             \x20       Ok(Cmd::Close) | Err(_) => {}\n\
             \x20   }\n\
             }\n",
        );
        assert_eq!(f.enums.len(), 1);
        assert_eq!(f.enums[0].variants, vec!["Open", "Fill", "Close"]);
        let produce = &f.fns[0];
        assert_eq!(produce.variant_uses.len(), 3);
        assert!(produce.variant_uses.iter().all(|u| !u.is_consume));
        assert!(produce.variant_uses[0].in_send);
        assert!(produce.variant_uses[1].in_send);
        assert!(!produce.variant_uses[2].in_send);
        let consume = &f.fns[1];
        assert_eq!(consume.variant_uses.len(), 3);
        assert!(consume.variant_uses.iter().all(|u| u.is_consume));
    }

    #[test]
    fn time_and_thread_facts() {
        let f = facts(
            "fn f() {\n\
             \x20   let t = Instant::now();\n\
             \x20   let id = std::thread::current().id();\n\
             }\n",
        );
        let kinds: Vec<&FactKind> = f.fns[0].facts.iter().map(|x| &x.kind).collect();
        assert_eq!(kinds.len(), 2, "{kinds:?}");
        assert!(matches!(kinds[0], FactKind::TimeSource { .. }));
        assert!(matches!(kinds[1], FactKind::ThreadId));
    }

    #[test]
    fn recv_timeout_flag_and_test_region() {
        let f = facts(
            "fn g(rx: &Receiver<u8>) { let _ = rx.recv_timeout(d); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { let m = x.lock(); }\n}\n",
        );
        assert!(f.fns[0].has_recv_timeout);
        let t = f.fns.iter().find(|f| f.name == "t").expect("test fn");
        assert!(t.in_test);
    }
}
