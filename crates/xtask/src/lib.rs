//! `storm-lint`: STORM-specific static analysis for the workspace.
//!
//! STORM's headline guarantee — unbiased online samples with honest
//! confidence intervals, at any termination point (paper Definition 1) — is
//! exactly the kind of property a compiler cannot check and a silent bug
//! destroys. This pass enforces the workspace invariants that protect it:
//!
//! | rule | name | guards against |
//! |------|------|----------------|
//! | R1 | `no-unwrap` | panicking `unwrap()`/`expect()` on library paths of `storm-core`/`storm-store`/`storm-engine`/`storm-query` |
//! | R2 | `no-unseeded-rng` | `thread_rng`/`from_entropy`/`rand::random` in `storm-core`/`storm-estimators` — kills reproducibility of sampling runs |
//! | R3 | `no-float-eq` | `==`/`!=` against floating-point values in `storm-estimators`/`storm-geo` estimator/geometry code |
//! | R4 | `no-std-sync` | `std::sync::{Mutex, RwLock}` anywhere — the workspace lock standard is `parking_lot` |
//! | R5 | `no-lossy-cast` | narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`) in `storm-rtree`/`storm-core` node/count arithmetic |
//! | R6 | `no-bare-join` | `.join().unwrap()`/`.join().expect(..)` on thread handles anywhere — re-raises contained worker panics, defeating fault containment |
//!
//! Implementation note: the usual tool for this is `syn`, but the build
//! environment is fully offline with no vendored `syn`, so the pass runs on
//! a hand-rolled Rust lexer ([`lexer`]) — precise token streams with line
//! and column positions, string/char/comment-aware, which is all the rules
//! above need. Rules are token-pattern matchers, not type-aware analysis;
//! where a rule is a heuristic (R3, R5) the escape hatch documents the
//! exception:
//!
//! ```text
//! let x = total as u32; // storm-lint: allow(R5): total is fanout-bounded <= 256
//! ```
//!
//! An allow directive suppresses its rule on the same line or the line
//! directly below (stacked directives chain past each other, so several
//! allows can guard one statement), must carry a non-empty justification
//! after the second colon, and is itself flagged if it never suppresses
//! anything.

pub mod analyze;
pub mod callgraph;
pub mod cfg;
pub mod conc;
pub mod front;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id, e.g. `R1` (or `allow` for directive hygiene findings).
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: storm-lint[{}]: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Lints one source file given as text. `rel_path` selects which rules
/// apply (see [`rules::rules_for_path`]).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let active = rules::rules_for_path(rel_path);
    let mut diags = Vec::new();
    for rule in &active {
        diags.extend(rule.check(rel_path, &lexed));
    }
    rules::apply_allow_directives(&rules::lint_directives(), rel_path, &lexed, &mut diags);
    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

/// Walks the workspace source roots and lints every `.rs` file.
///
/// Scans `crates/*/src` and the facade `src/`; skips `vendor/` (the offline
/// dependency shims are platform code, exempt by design) and `target/`.
pub fn lint_workspace(repo_root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let files = workspace_rs_files(repo_root)?;
    let mut diags = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(repo_root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        diags.extend(lint_source(&rel, &source));
    }
    Ok(diags)
}

/// Every `.rs` file under the workspace source roots (`crates/*/src` and
/// the facade `src/`), sorted — the shared file set for lint and analyze.
/// `vendor/` (offline dependency shims, platform code exempt by design) and
/// `target/` are never visited.
pub fn workspace_rs_files(repo_root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = repo_root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    let facade_src = repo_root.join("src");
    if facade_src.is_dir() {
        collect_rs_files(&facade_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
