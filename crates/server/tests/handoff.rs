//! Server-level epoch handoff: `SessionServer::install_epoch` swaps the
//! worker pool between scheduler ticks. Sessions admitted before the
//! install keep their pinned shard snapshots and finish with the exact
//! estimate sequence a no-swap run produces; sessions admitted after it
//! aggregate the new data.

use std::time::Duration;

use storm_core::{DistributedRsTree, ParallelRsCluster, RsTreeConfig, SampleMode};
use storm_engine::session::StopReason;
use storm_geo::{Point2, Rect2};
use storm_rtree::Item;
use storm_server::{QuerySpec, ServeConfig, SessionEvent, SessionServer};

const N: usize = 8_000;

/// Epoch-0 data: x-coordinates in `0..100`, so AVG(x) over the full
/// range is ≈ 49.5.
fn old_items() -> Vec<Item<2>> {
    (0..N)
        .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
        .collect()
}

/// Epoch-1 data: the same grid shifted by +500 in x — any session that
/// aggregates it is unmistakable from one on the old data.
fn new_items() -> Vec<Item<2>> {
    (0..N)
        .map(|i| {
            Item::new(
                Point2::xy(500.0 + (i % 100) as f64, (i / 100) as f64),
                (N + i) as u64,
            )
        })
        .collect()
}

fn cluster(items: Vec<Item<2>>) -> ParallelRsCluster {
    DistributedRsTree::bulk_load(items, 4, RsTreeConfig::with_fanout(16)).into_parallel()
}

fn spec(seed: u64) -> QuerySpec {
    QuerySpec {
        seed,
        mode: SampleMode::WithoutReplacement,
        sample_budget: Some(1_024),
        ..QuerySpec::new(Rect2::from_corners(
            Point2::xy(-10.0, -10.0),
            Point2::xy(1_000.0, 1_000.0),
        ))
    }
}

/// Collects one session's whole estimate history (bit-exact) plus its
/// final value and stop reason.
fn fingerprint(handle: &storm_server::SessionHandle) -> (Vec<(u64, u64)>, f64, StopReason) {
    let mut ticks = Vec::new();
    loop {
        match handle
            .recv_event_timeout(Duration::from_secs(30))
            .expect("server event before timeout")
        {
            SessionEvent::Admitted { .. } => {}
            SessionEvent::Rejected { .. } => panic!("unexpected rejection"),
            SessionEvent::Progress { progress, .. } => {
                if let storm_engine::TaskResult::Aggregate { estimate, .. } = progress.result {
                    ticks.push((progress.samples, estimate.value.to_bits()));
                }
            }
            SessionEvent::Done { outcome, .. } => {
                let est = outcome.estimate().expect("aggregate outcome");
                return (ticks, est.value, outcome.reason);
            }
        }
    }
}

#[test]
fn session_admitted_before_install_replays_the_no_swap_run() {
    // Solo reference: same seed, no swap ever happens.
    let server = SessionServer::start(cluster(old_items()), ServeConfig::default());
    let solo = fingerprint(&server.open(spec(21)));
    drop(server);

    // Same query, but a new epoch is installed while it runs. The
    // install lands at some tick boundary relative to the session's
    // progress — the point of the pinning contract is that *any*
    // interleaving leaves the session's sequence untouched.
    let server = SessionServer::start(cluster(old_items()), ServeConfig::default());
    let target = server.open(spec(21));
    let epoch = server
        .install_epoch(DistributedRsTree::bulk_load(
            new_items(),
            4,
            RsTreeConfig::with_fanout(16),
        ))
        .expect("scheduler alive");
    assert_eq!(epoch, 1);
    let across = fingerprint(&target);
    assert_eq!(across, solo, "pre-install session must be swap-invariant");
    // The old data's x-range tops out at 99: the session aggregated the
    // epoch it opened on.
    assert!(
        across.1 < 100.0,
        "AVG(x) {} came from new-epoch data",
        across.1
    );

    // A session admitted after the install aggregates the shifted data.
    let (_, value, reason) = fingerprint(&server.open(spec(22)));
    assert_eq!(reason, StopReason::SampleBudget);
    assert!(
        value > 500.0,
        "post-install session still on old data: AVG(x) = {value}"
    );
}

#[test]
fn shutdown_returns_the_last_installed_epoch() {
    let server = SessionServer::start(cluster(old_items()), ServeConfig::default());
    // Install a *differently sized* data set so the returned cluster is
    // unambiguous about which epoch it ended on.
    let half: Vec<Item<2>> = new_items().into_iter().take(N / 2).collect();
    server
        .install_epoch(DistributedRsTree::bulk_load(
            half,
            4,
            RsTreeConfig::with_fanout(16),
        ))
        .expect("scheduler alive");
    // The cluster handed back on shutdown is the swapped one: joining it
    // yields the new data set, not the one the server started on.
    let cluster = server.shutdown();
    assert_eq!(cluster.len(), N / 2);
    assert_eq!(cluster.join().len(), N / 2);
}
