//! Integration tests for the multi-session server: the determinism
//! contract (solo vs co-tenant estimate sequences), cancellation credit
//! reclamation, admission control, fairness, and the wire protocol.

use std::sync::Arc;
use std::time::Duration;

use storm_core::{DistributedRsTree, ParallelRsCluster, RsTreeConfig, SampleMode};
use storm_engine::session::StopReason;
use storm_geo::{Point2, Rect2};
use storm_rtree::Item;
use storm_server::{
    QuerySpec, ServeConfig, SessionEvent, SessionServer, WireClient, WireEvent, WireServer,
};

fn grid_items(n: usize) -> Vec<Item<2>> {
    (0..n)
        .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
        .collect()
}

fn cluster(n: usize, shards: usize) -> ParallelRsCluster {
    DistributedRsTree::bulk_load(grid_items(n), shards, RsTreeConfig::with_fanout(16))
        .into_parallel()
}

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect2 {
    Rect2::from_corners(Point2::xy(x0, y0), Point2::xy(x1, y1))
}

/// Collects one session's full event history as comparable fingerprints:
/// `(samples, estimate bits, std-err bits)` per Progress tick plus the
/// final `(reason, samples, bits, bits)` — everything except wall-clock.
fn fingerprint(handle: &storm_server::SessionHandle) -> Vec<(u64, u64, u64, Option<StopReason>)> {
    let mut out = Vec::new();
    loop {
        match handle
            .recv_event_timeout(Duration::from_secs(30))
            .expect("server event before timeout")
        {
            SessionEvent::Admitted { .. } => {}
            SessionEvent::Rejected { .. } => panic!("unexpected rejection"),
            SessionEvent::Progress { progress, .. } => {
                let est = match progress.result {
                    storm_engine::TaskResult::Aggregate { estimate, .. } => estimate,
                    other => panic!("unexpected task result {other:?}"),
                };
                out.push((
                    progress.samples,
                    est.value.to_bits(),
                    est.std_err.to_bits(),
                    None,
                ));
            }
            SessionEvent::Done { outcome, .. } => {
                let est = outcome.estimate().expect("aggregate outcome");
                out.push((
                    outcome.samples,
                    est.value.to_bits(),
                    est.std_err.to_bits(),
                    Some(outcome.reason),
                ));
                return out;
            }
        }
    }
}

fn target_spec(seed: u64) -> QuerySpec {
    QuerySpec {
        sample_budget: Some(512),
        seed,
        ..QuerySpec::new(rect(10.0, 10.0, 80.0, 150.0))
    }
}

/// The determinism contract: the same seeded query produces a
/// bit-identical estimate sequence alone and under 256 co-tenant
/// sessions, at three seeds (ISSUE 8 acceptance criterion).
#[test]
fn solo_vs_co_tenant_estimate_sequences_identical() {
    for seed in [3u64, 17, 99] {
        // Solo run.
        let server = SessionServer::start(cluster(20_000, 4), ServeConfig::default());
        let solo = fingerprint(&server.open(target_spec(seed)));
        drop(server);

        // Same query under 256 co-tenants (half admitted before the
        // target, half after), every co-tenant on a different seed,
        // query, and mode mix.
        let server = SessionServer::start(cluster(20_000, 4), ServeConfig::default());
        let mut tenants = Vec::new();
        let tenant_spec = |i: u64| QuerySpec {
            seed: 1000 + i,
            sample_budget: Some(192),
            mode: if i.is_multiple_of(3) {
                SampleMode::WithReplacement
            } else {
                SampleMode::WithoutReplacement
            },
            ..QuerySpec::new(rect(
                (i % 7) as f64 * 9.0,
                (i % 11) as f64 * 13.0,
                (i % 7) as f64 * 9.0 + 40.0,
                (i % 11) as f64 * 13.0 + 55.0,
            ))
        };
        for i in 0..128 {
            tenants.push(server.open(tenant_spec(i)));
        }
        let target = server.open(target_spec(seed));
        for i in 128..256 {
            tenants.push(server.open(tenant_spec(i)));
        }
        let loaded = fingerprint(&target);
        for t in &tenants {
            assert!(t.wait().is_some(), "co-tenant session died");
        }
        assert_eq!(
            solo, loaded,
            "seed {seed}: estimate sequence perturbed by co-tenants"
        );
    }
}

/// Terminated sessions free their worker credit within one tick: the
/// cancelled session gets `Done(Cancelled)`, drops out of the live
/// table, and the surviving session keeps refining.
#[test]
fn cancellation_reclaims_credit_within_one_tick() {
    let server = SessionServer::start(cluster(20_000, 4), ServeConfig::default());
    // Both unbounded: they run until terminated.
    let spec = QuerySpec {
        mode: SampleMode::WithReplacement,
        ..QuerySpec::new(rect(0.0, 0.0, 99.0, 199.0))
    };
    let a = server.open(QuerySpec { seed: 1, ..spec });
    let b = server.open(QuerySpec { seed: 2, ..spec });

    // Wait until both have produced at least one estimate.
    for h in [&a, &b] {
        loop {
            match h.recv_event_timeout(Duration::from_secs(30)).unwrap() {
                SessionEvent::Progress { .. } => break,
                _ => continue,
            }
        }
    }
    assert_eq!(server.stats().unwrap().live, 2);

    a.terminate();
    let outcome = a.wait().expect("cancelled session still reports Done");
    assert_eq!(outcome.reason, StopReason::Cancelled);
    assert!(outcome.samples > 0);

    // stats() is a control barrier: the reply proves the terminate was
    // applied (same tick boundary), so the credit is already reclaimed.
    let stats = server.stats().unwrap();
    assert_eq!(stats.live, 1);
    assert_eq!(stats.done, 1);

    // The survivor keeps making progress after the cancellation.
    let before = loop {
        if let SessionEvent::Progress { progress, .. } =
            b.recv_event_timeout(Duration::from_secs(30)).unwrap()
        {
            break progress.samples;
        }
    };
    let after = loop {
        if let SessionEvent::Progress { progress, .. } =
            b.recv_event_timeout(Duration::from_secs(30)).unwrap()
        {
            break progress.samples;
        }
    };
    assert!(after > before);
    b.terminate();
    assert_eq!(b.wait().unwrap().reason, StopReason::Cancelled);
    let cluster = server.shutdown();
    assert_eq!(cluster.dropped_sends(), 0);
}

/// Admission control: the live table is bounded, the overflow queue is
/// bounded, and a queued session is admitted once a slot frees up.
#[test]
fn admission_control_bounds_table_and_queue() {
    let cfg = ServeConfig {
        max_sessions: 2,
        queue_limit: 1,
        ..ServeConfig::default()
    };
    let server = SessionServer::start(cluster(5_000, 2), cfg);
    let spec = QuerySpec {
        mode: SampleMode::WithReplacement,
        ..QuerySpec::new(rect(0.0, 0.0, 99.0, 49.0))
    };
    let a = server.open(QuerySpec { seed: 1, ..spec });
    let b = server.open(QuerySpec { seed: 2, ..spec });
    let c = server.open(QuerySpec { seed: 3, ..spec });
    let d = server.open(QuerySpec { seed: 4, ..spec });

    // a and b fill the table; c waits in the queue; d overflows.
    assert!(matches!(
        d.recv_event_timeout(Duration::from_secs(30)).unwrap(),
        SessionEvent::Rejected { .. }
    ));
    let stats = server.stats().unwrap();
    assert_eq!((stats.live, stats.queued, stats.rejected), (2, 1, 1));

    // Freeing a slot admits the queued session.
    a.terminate();
    assert_eq!(a.wait().unwrap().reason, StopReason::Cancelled);
    assert!(matches!(
        c.recv_event_timeout(Duration::from_secs(30)).unwrap(),
        SessionEvent::Admitted { .. }
    ));
    b.terminate();
    c.terminate();
    assert!(b.wait().is_some());
    assert!(c.wait().is_some());
}

/// The fairness invariant: concurrently admitted sessions advance at the
/// same sample cadence (quantum per tick) regardless of their query
/// sizes.
#[test]
fn fair_share_is_query_size_independent() {
    let cfg = ServeConfig::default();
    let server = SessionServer::start(cluster(20_000, 4), cfg);
    // A big scan vs a small lookup, both with-replacement (infinite).
    let big = server.open(QuerySpec {
        mode: SampleMode::WithReplacement,
        seed: 5,
        ..QuerySpec::new(rect(0.0, 0.0, 99.0, 199.0))
    });
    let small = server.open(QuerySpec {
        mode: SampleMode::WithReplacement,
        seed: 6,
        ..QuerySpec::new(rect(40.0, 40.0, 45.0, 45.0))
    });
    let first = |h: &storm_server::SessionHandle| loop {
        if let SessionEvent::Progress { progress, .. } =
            h.recv_event_timeout(Duration::from_secs(30)).unwrap()
        {
            break progress.samples;
        }
    };
    // Both first progress ticks deliver exactly the per-tick quantum.
    assert_eq!(first(&big), cfg.quantum as u64);
    assert_eq!(first(&small), cfg.quantum as u64);
    big.terminate();
    small.terminate();
    assert!(big.wait().is_some());
    assert!(small.wait().is_some());
}

/// A without-replacement session with no budget drains `P ∩ Q` exactly
/// and reports `Exhausted`.
#[test]
fn exhaustion_reports_exact_result() {
    let server = SessionServer::start(cluster(20_000, 4), ServeConfig::default());
    let handle = server.open(QuerySpec {
        seed: 9,
        ..QuerySpec::new(rect(10.0, 10.0, 19.0, 19.0))
    });
    let outcome = handle.wait().expect("session completes");
    assert_eq!(outcome.reason, StopReason::Exhausted);
    assert_eq!(outcome.q, Some(100)); // 10×10 grid cells
    assert_eq!(outcome.samples, 100);
}

/// Wire protocol round trip over TCP: open → poll to Done, with the
/// estimate fields surviving the encode/decode.
#[test]
fn wire_tcp_round_trip() {
    let server = Arc::new(SessionServer::start(
        cluster(20_000, 4),
        ServeConfig::default(),
    ));
    let wire = WireServer::bind_tcp(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let addr = wire.local_addr().unwrap();
    let mut client = WireClient::connect_tcp(addr).unwrap();

    let session = client.open(&target_spec(42)).unwrap();
    let mut admitted = false;
    let mut progressed = false;
    let done = loop {
        match client.poll(session).unwrap() {
            None => std::thread::sleep(Duration::from_millis(1)),
            Some(WireEvent::Admitted { session: s }) => {
                assert_eq!(s, session);
                admitted = true;
            }
            Some(WireEvent::Progress { samples, value, .. }) => {
                assert!(samples > 0);
                assert!(value.is_finite());
                progressed = true;
            }
            Some(done @ WireEvent::Done { .. }) => break done,
            Some(other) => panic!("unexpected event {other:?}"),
        }
    };
    assert!(admitted && progressed);
    let WireEvent::Done {
        reason,
        samples,
        value,
        ..
    } = done
    else {
        unreachable!()
    };
    assert_eq!(reason, StopReason::SampleBudget);
    assert_eq!(samples, 512);
    assert!(value.is_finite());
}

/// The same protocol over a unix-domain socket, exercising terminate.
#[test]
fn wire_unix_socket_terminate() {
    let server = Arc::new(SessionServer::start(
        cluster(5_000, 2),
        ServeConfig::default(),
    ));
    let path = std::env::temp_dir().join(format!("storm-wire-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let wire = WireServer::bind_unix(Arc::clone(&server), &path).unwrap();
    let mut client = WireClient::connect_unix(&path).unwrap();

    let session = client
        .open(&QuerySpec {
            mode: SampleMode::WithReplacement,
            ..QuerySpec::new(rect(0.0, 0.0, 99.0, 49.0))
        })
        .unwrap();
    client.terminate(session).unwrap();
    let reason = loop {
        match client.poll(session).unwrap() {
            Some(WireEvent::Done { reason, .. }) => break reason,
            _ => std::thread::sleep(Duration::from_millis(1)),
        }
    };
    assert_eq!(reason, StopReason::Cancelled);
    drop(wire);
    let _ = std::fs::remove_file(&path);
}
