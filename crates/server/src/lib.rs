//! Multi-session online-aggregation serving (ROADMAP open item 2).
//!
//! STORM's pitch (paper §1, Definition 1) is *many* interactive users
//! watching estimates refine live and terminating queries at will — but a
//! [`storm_core::ParallelSampler`] serves exactly one query over the shard
//! workers. This crate is the serving layer on top: a
//! [`SessionServer`] multiplexes hundreds-to-thousands of concurrent
//! online-aggregation sessions over **one shared pool of frozen-shard
//! workers**, the same continuous-batching shape inference servers use.
//!
//! ## Architecture
//!
//! ```text
//!   clients ──open/poll/terminate──▶ SessionServer ──ctrl──▶ scheduler thread
//!                                                               │ per tick:
//!                                                               │  1. drain control (admit / cancel)
//!                                                               │  2. DRR credit grant
//!                                                               │  3. rounds: draw → plan → coalesce
//!                                                               │  4. one FillMany per shard  ──▶ shard workers
//!                                                               │  5. gather Batches, merge, estimate
//!                                                               │  6. emit Progress / Done events
//! ```
//!
//! The scheduler (see [`mod@scheduler`] docs for the coalescing math and
//! the fairness invariant) drives the session-tagged shard protocol from
//! `storm_core::parallel` directly: every session's round state lives in a
//! [`storm_core::StreamCore`], pending fills from *all* runnable sessions
//! are coalesced into one [`storm_core::FillReq`] batch per shard per
//! tick, and deficit-round-robin credit keeps a huge scan from starving
//! small queries.
//!
//! ## Determinism contract
//!
//! A session's estimate sequence depends only on its own
//! [`QuerySpec::seed`], never on co-tenant interleaving: the scheduler may
//! *delay* a session's rounds, but round sizes, shard-stream seeds, and
//! merge order are all pure functions of session-local state (the
//! invariant `storm_core::StreamCore` documents, pinned here by the
//! solo-vs-co-tenant tests in `tests/serve.rs`).
//!
//! The wire layer ([`mod@wire`]) exposes open/poll/terminate as
//! length-prefixed frames over TCP or unix sockets — hand-rolled, no
//! serialization dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scheduler;
pub mod wire;

pub use scheduler::{
    QuerySpec, ServeConfig, ServerStats, SessionEvent, SessionHandle, SessionServer,
};
pub use wire::{WireClient, WireEvent, WireServer};
