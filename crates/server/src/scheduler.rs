//! The multi-session tick scheduler over one shared shard-worker pool.
//!
//! ## Tick anatomy
//!
//! The scheduler thread runs discrete *ticks*. Each tick:
//!
//! 1. **Control drain** — admissions, terminations, and stats requests are
//!    applied at tick boundaries only, when no fills are in flight, so a
//!    cancellation can always reclaim its in-flight credit in O(live
//!    sessions) bookkeeping (no protocol drain race). Admissions are
//!    *coalesced* like fills: every open drained this boundary rides in
//!    one `OpenMany` per shard and the per-shard count replies come back
//!    as one `Opens` each, gathered together in [`Sched::settle_opens`] —
//!    a burst of `S` opens costs `2 · shards` channel messages and one
//!    gather wait, not `2 · shards · S` messages and `S` round-trips.
//!    Teardown coalesces symmetrically: sessions finished during a tick
//!    are closed with one `CloseMany` per shard at the tick's end.
//! 2. **Credit grant** — every live session's deficit counter gains
//!    [`ServeConfig::quantum`] samples (deficit round robin; the carryover
//!    is capped at `quantum + block` so an idle session cannot hoard).
//! 3. **Round fixpoint** — sessions with at least [`ServeConfig::block`]
//!    credit run rounds of their [`StreamCore`] state machine: draw →
//!    plan → coalesce → gather → merge, repeating until every session is
//!    out of credit or finished.
//! 4. **Progress emission** — one [`SessionEvent::Progress`] per session
//!    that merged samples this tick.
//!
//! ## Coalescing math
//!
//! A naive serving loop pays ~2 channel messages per session per round
//! (one `Fill`, one `Batch`), so `S` sessions cost `O(S · rounds)`
//! messages and as many scheduler/worker context switches. The tick
//! scheduler instead merges every runnable session's round-`r` request for
//! shard `s` into **one** [`ShardCmd::FillMany`]-style batch, answered by
//! one `Batches` reply: per tick the channel cost is `O(shards)`, not
//! `O(sessions · shards)`. With `StreamCore`'s request amplification
//! (surplus banked per session, most rounds served bufferside with zero
//! I/O) the amortized message cost per session round drops well below
//! one, which is where the E15 throughput multiple comes from.
//!
//! ## Fairness invariant
//!
//! Every runnable session receives exactly `quantum` samples of credit
//! per tick and rounds are a fixed `block` draw, so each tick a session
//! merges `⌊deficit/block⌋` blocks **independent of co-tenant count or
//! query size**: a 10⁸-row scan and a 10³-row lookup get the same sample
//! bandwidth share. Credit gates *when* a round runs, never its *size* —
//! sizes are pure functions of session-local state, which is the
//! determinism contract (`StreamCore` docs) pinned by the
//! solo-vs-co-tenant tests.
//!
//! ## Fault policy
//!
//! The scheduler is deliberately fail-soft (no retry machinery in the
//! tick loop, unlike the single-query [`storm_core::ParallelSampler`]
//! path): an unreachable worker or a gather timeout writes the shard off
//! for the affected sessions (missing-mass widening takes over) and the
//! tick proceeds. Chaos testing of retry/replay stays on the single-query
//! executor path.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use storm_core::{
    DistributedRsTree, FillReq, OpenReq, ParallelRsCluster, SampleMode, SamplerKind, ShardReply,
    StreamCore,
};
use storm_engine::session::{Progress, QueryOutcome, StopCheck, StopReason, TaskResult};
use storm_estimators::OnlineStat;
use storm_faultkit::FailReason;
use storm_geo::Rect2;

/// Safety valve on the gather loop: a shard that answers nothing for this
/// long is written off for every session waiting on it.
const GATHER_TIMEOUT: Duration = Duration::from_secs(5);

/// Scheduler sizing and policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bound on concurrently live sessions (the session table).
    pub max_sessions: usize,
    /// Bound on the admission wait queue; opens beyond it are rejected.
    pub queue_limit: usize,
    /// Samples of deficit-round-robin credit granted per session per tick.
    pub quantum: usize,
    /// Fixed per-round draw size. Part of the determinism contract: a
    /// session's round sizes never depend on co-tenant load.
    pub block: usize,
    /// Confidence level used for reported estimates.
    pub confidence: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 1024,
            queue_limit: 4096,
            quantum: 256,
            block: 64,
            confidence: 0.95,
        }
    }
}

/// One online-aggregation query as submitted by a client: AVG of the
/// x-coordinate over the query rectangle, refined until a budget or the
/// client stops it.
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec {
    /// The spatial range.
    pub query: Rect2,
    /// Sampling mode.
    pub mode: SampleMode,
    /// The session's RNG seed. The whole estimate sequence is a pure
    /// function of this (plus the dataset), never of co-tenants.
    pub seed: u64,
    /// Stop after this many samples, if set.
    pub sample_budget: Option<u64>,
    /// Stop after this much wall-clock time, if set.
    pub time_budget_ms: Option<u64>,
    /// Stop once the relative CI half-width reaches this, if set.
    pub target_error: Option<f64>,
}

impl QuerySpec {
    /// A spec with defaults: without replacement, seed 0, no budgets
    /// (runs until terminated).
    pub fn new(query: Rect2) -> Self {
        QuerySpec {
            query,
            mode: SampleMode::WithoutReplacement,
            seed: 0,
            sample_budget: None,
            time_budget_ms: None,
            target_error: None,
        }
    }
}

/// Events delivered to a session's [`SessionHandle`].
#[derive(Debug)]
pub enum SessionEvent {
    /// The session entered the live table; sampling starts this tick.
    Admitted {
        /// The session id.
        session: u64,
    },
    /// Admission control turned the open away (table and queue full).
    Rejected {
        /// The session id.
        session: u64,
    },
    /// A progress tick: the estimate refined.
    Progress {
        /// The session id.
        session: u64,
        /// The snapshot (same type the single-query engine emits).
        progress: Progress,
    },
    /// The session finished; no further events follow.
    Done {
        /// The session id.
        session: u64,
        /// The final outcome (same type the single-query engine returns).
        outcome: Box<QueryOutcome>,
    },
}

/// A live-counter snapshot returned by [`SessionServer::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions currently in the live table.
    pub live: usize,
    /// Sessions waiting in the admission queue.
    pub queued: usize,
    /// Sessions admitted over the server's lifetime.
    pub admitted: u64,
    /// Opens rejected by admission control.
    pub rejected: u64,
    /// Sessions finished (any [`StopReason`]).
    pub done: u64,
}

/// Control-plane messages into the scheduler thread.
enum Ctrl {
    Open {
        session: u64,
        spec: QuerySpec,
        events: Sender<SessionEvent>,
    },
    Terminate {
        session: u64,
    },
    Stats {
        reply: Sender<ServerStats>,
    },
    /// Epoch handoff: swap the worker pool to a re-frozen data set at the
    /// next tick boundary. Applied between ticks — never mid-round — so
    /// no fill is in flight when the swap commands go out; live sessions
    /// keep their pinned shard snapshots, new admissions open on the new
    /// epoch.
    Install {
        next: Box<DistributedRsTree>,
        /// Acked with the cluster's new epoch number once applied.
        reply: Sender<u64>,
    },
    Shutdown,
}

/// The multi-session online-aggregation server.
///
/// Owns the shared [`ParallelRsCluster`] and the scheduler thread.
/// Cheap to share by reference; every method takes `&self`.
#[derive(Debug)]
pub struct SessionServer {
    cluster: Option<Arc<ParallelRsCluster>>,
    ctrl: Sender<Ctrl>,
    thread: Option<JoinHandle<()>>,
}

impl SessionServer {
    /// Starts the scheduler thread over `cluster`'s worker pool.
    pub fn start(cluster: ParallelRsCluster, cfg: ServeConfig) -> Self {
        let mut cfg = cfg;
        cfg.block = cfg.block.max(1);
        cfg.quantum = cfg.quantum.max(cfg.block);
        let cluster = Arc::new(cluster);
        let (ctrl_tx, ctrl_rx) = unbounded();
        let sched_cluster = Arc::clone(&cluster);
        let thread = std::thread::Builder::new()
            .name("storm-scheduler".into())
            .spawn(move || Sched::new(sched_cluster, cfg, ctrl_rx).run())
            .expect("spawn scheduler thread");
        SessionServer {
            cluster: Some(cluster),
            ctrl: ctrl_tx,
            thread: Some(thread),
        }
    }

    /// Submits a query. Fire-and-forget: the returned handle's first
    /// event is [`SessionEvent::Admitted`] or [`SessionEvent::Rejected`],
    /// applied at the next tick boundary.
    pub fn open(&self, spec: QuerySpec) -> SessionHandle {
        let cluster = self.cluster.as_ref().expect("server not shut down");
        let session = cluster.allocate_session();
        let (events_tx, events_rx) = unbounded();
        let _ = self.ctrl.send(Ctrl::Open {
            session,
            spec,
            events: events_tx,
        });
        SessionHandle {
            session,
            events: events_rx,
            ctrl: self.ctrl.clone(),
        }
    }

    /// Installs a new data epoch: the worker pool swaps to `next` at the
    /// next tick boundary (between rounds, never mid-fill). Sessions open
    /// across the swap keep their pinned shard snapshots and finish on
    /// the epoch they started with; sessions admitted after it serve the
    /// new data. Blocks until the swap is applied and returns the
    /// cluster's new epoch number (`None` if the server is gone). `next`
    /// must have the same shard count as the serving cluster.
    pub fn install_epoch(&self, next: DistributedRsTree) -> Option<u64> {
        let (tx, rx) = unbounded();
        self.ctrl
            .send(Ctrl::Install {
                next: Box::new(next),
                reply: tx,
            })
            .ok()?;
        // storm-analyzer: allow(A13): install ack barrier — the reply Sender lives only inside the Ctrl message, so scheduler death drops it and this recv wakes with Err -> None
        rx.recv().ok()
    }

    /// Round-trips the scheduler for its live counters (also a barrier:
    /// the reply proves every control message sent before this call has
    /// been applied).
    pub fn stats(&self) -> Option<ServerStats> {
        let (tx, rx) = unbounded();
        self.ctrl.send(Ctrl::Stats { reply: tx }).ok()?;
        // storm-analyzer: allow(A13): stats round-trip barrier — same drop-wakes contract as install_epoch; the scheduler going away yields None, never a hang
        rx.recv().ok()
    }

    /// Stops the scheduler and returns the worker cluster (e.g. to
    /// `try_join` it back into a sequential tree).
    pub fn shutdown(mut self) -> ParallelRsCluster {
        self.stop();
        let arc = self.cluster.take().expect("shutdown called once");
        drop(self);
        Arc::into_inner(arc).expect("scheduler thread joined; no other cluster handles remain")
    }

    fn stop(&mut self) {
        let _ = self.ctrl.send(Ctrl::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SessionServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A client's handle to one submitted session.
#[derive(Debug)]
pub struct SessionHandle {
    session: u64,
    events: Receiver<SessionEvent>,
    ctrl: Sender<Ctrl>,
}

impl SessionHandle {
    /// The session id (echoed in every event).
    pub fn id(&self) -> u64 {
        self.session
    }

    /// Non-blocking event poll.
    pub fn try_event(&self) -> Option<SessionEvent> {
        self.events.try_recv().ok()
    }

    /// Blocks for the next event; `None` means the server is gone.
    pub fn recv_event(&self) -> Option<SessionEvent> {
        // storm-analyzer: allow(A13): documented blocking client API; recv_event_timeout below is the bounded form, and server drop disconnects this recv
        self.events.recv().ok()
    }

    /// Blocks up to `timeout` for the next event.
    pub fn recv_event_timeout(&self, timeout: Duration) -> Option<SessionEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Requests cancellation. Applied at the next tick boundary; the
    /// session's final event is [`SessionEvent::Done`] with
    /// [`StopReason::Cancelled`] and its in-flight worker credit is
    /// reclaimed within that tick.
    pub fn terminate(&self) {
        let _ = self.ctrl.send(Ctrl::Terminate {
            session: self.session,
        });
    }

    /// Drains events until the session ends, returning the final outcome
    /// (`None` if the open was rejected or the server died).
    pub fn wait(&self) -> Option<Box<QueryOutcome>> {
        loop {
            match self.events.recv().ok()? {
                SessionEvent::Done { outcome, .. } => return Some(outcome),
                SessionEvent::Rejected { .. } => return None,
                SessionEvent::Admitted { .. } | SessionEvent::Progress { .. } => {}
            }
        }
    }
}

/// One live session's scheduler-side state.
struct Session {
    events: Sender<SessionEvent>,
    rng: StdRng,
    core: StreamCore,
    stat: OnlineStat,
    started: Instant,
    sample_budget: Option<u64>,
    time_budget: Option<Duration>,
    target_error: Option<f64>,
    /// Samples merged so far.
    samples: u64,
    /// Scatter-round number (the fill replay key; unused for replay here
    /// — the fail-soft scheduler never retries — but still unique per
    /// round as the protocol requires).
    seq: u64,
    /// DRR credit, in samples.
    deficit: usize,
    /// Shard replies still outstanding for the current round.
    awaiting: usize,
    /// A drawn round is pending merge.
    round_open: bool,
    /// Merged at least one sample this tick (Progress is owed).
    progressed: bool,
    /// Coalesced fill messages this session has ridden in (io accounting).
    fills_sent: u64,
}

/// A pending admission, queued between its control drain and the
/// boundary's [`Sched::settle_opens`], which scatters the whole batch as
/// one `OpenMany` per shard and gathers every count in one shared wait.
struct Opening {
    spec: QuerySpec,
    events: Sender<SessionEvent>,
    counts: Vec<Option<u64>>,
    failures: Vec<(usize, FailReason)>,
}

/// The scheduler thread state.
struct Sched {
    cluster: Arc<ParallelRsCluster>,
    cfg: ServeConfig,
    ctrl: Receiver<Ctrl>,
    /// The one shared reply channel every session is opened with; workers
    /// echo `(shard, session, seq)` tags and the scheduler routes here.
    reply_tx: Sender<ShardReply>,
    reply_rx: Receiver<ShardReply>,
    table: HashMap<u64, Session>,
    /// Round-robin order over live sessions.
    run_queue: VecDeque<u64>,
    wait_queue: VecDeque<(u64, QuerySpec, Sender<SessionEvent>)>,
    /// Open gathers in progress: scattered but not yet settled.
    opening: HashMap<u64, Opening>,
    /// Admission order of `opening` entries (run-queue insertion order).
    opening_order: Vec<u64>,
    /// Coalesced `Opens` shard replies the current settle still owes.
    open_left: usize,
    /// Sessions finished since the last `CloseMany` flush.
    pending_close: Vec<u64>,
    /// `(session, shard)` fill replies the current tick still owes.
    expected: HashSet<(u64, usize)>,
    /// Shards whose workers died; never asked again.
    dead: Vec<bool>,
    admitted: u64,
    rejected: u64,
    done: u64,
    // Reused scratch (the tick loop must not allocate per session; see
    // storm-analyzer A9).
    ids: Vec<u64>,
    plan: Vec<usize>,
    shard_reqs: Vec<Vec<FillReq>>,
    merged: Vec<storm_rtree::Item<2>>,
    timed_out: Vec<(u64, usize)>,
}

impl Sched {
    fn new(cluster: Arc<ParallelRsCluster>, cfg: ServeConfig, ctrl: Receiver<Ctrl>) -> Self {
        let shards = cluster.num_shards();
        let (reply_tx, reply_rx) = unbounded();
        Sched {
            cluster,
            cfg,
            ctrl,
            reply_tx,
            reply_rx,
            table: HashMap::new(),
            run_queue: VecDeque::new(),
            wait_queue: VecDeque::new(),
            opening: HashMap::new(),
            opening_order: Vec::new(),
            open_left: 0,
            pending_close: Vec::new(),
            expected: HashSet::new(),
            dead: vec![false; shards],
            admitted: 0,
            rejected: 0,
            done: 0,
            ids: Vec::new(),
            plan: Vec::new(),
            shard_reqs: vec![Vec::new(); shards],
            merged: Vec::new(),
            timed_out: Vec::new(),
        }
    }

    fn run(mut self) {
        'serve: loop {
            // Idle: block on control instead of spinning.
            if self.table.is_empty() && self.wait_queue.is_empty() {
                // storm-analyzer: allow(A13): idle parking — blocks only when no session is live; every client handle dropping disconnects the recv and exits the serve loop
                match self.ctrl.recv() {
                    Ok(c) => {
                        if !self.handle_ctrl(c) {
                            break 'serve;
                        }
                    }
                    Err(_) => break 'serve,
                }
            }
            // Tick boundary: apply all queued control.
            loop {
                match self.ctrl.try_recv() {
                    Ok(c) => {
                        if !self.handle_ctrl(c) {
                            break 'serve;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break 'serve,
                }
            }
            // Late replies from cancelled rounds: drain and drop.
            while let Ok(r) = self.reply_rx.try_recv() {
                self.dispatch(r);
            }
            while self.table.len() + self.opening.len() < self.cfg.max_sessions {
                match self.wait_queue.pop_front() {
                    Some((id, spec, events)) => self.begin_admit(id, spec, events),
                    None => break,
                }
            }
            self.settle_opens();
            if !self.table.is_empty() {
                self.tick();
            }
            self.flush_closes();
        }
        // Don't leave finished sessions' streams in the worker tables —
        // the cluster outlives this thread (shutdown hands it back).
        self.flush_closes();
    }

    /// Tears down every session finished since the last flush with one
    /// coalesced `CloseMany` per shard.
    fn flush_closes(&mut self) {
        if self.pending_close.is_empty() {
            return;
        }
        let _ = self.cluster.close_many(&self.pending_close);
        self.pending_close.clear();
    }

    /// Applies one control message; `false` means shut down.
    fn handle_ctrl(&mut self, c: Ctrl) -> bool {
        match c {
            Ctrl::Open {
                session,
                spec,
                events,
            } => {
                if self.table.len() + self.opening.len() < self.cfg.max_sessions {
                    self.begin_admit(session, spec, events);
                } else if self.wait_queue.len() < self.cfg.queue_limit {
                    self.wait_queue.push_back((session, spec, events));
                } else {
                    self.rejected += 1;
                    let _ = events.send(SessionEvent::Rejected { session });
                }
            }
            Ctrl::Terminate { session } => self.terminate(session),
            Ctrl::Install { next, reply } => {
                // handle_ctrl runs only at tick boundaries ("on entry no
                // fills are in flight"), so the swap slots cleanly between
                // rounds: every stream already open has pinned its shard
                // snapshots, every open after this sees the new epoch.
                let epoch = self.cluster.install_epoch(*next);
                let _ = reply.send(epoch);
            }
            Ctrl::Stats { reply } => {
                let _ = reply.send(ServerStats {
                    live: self.table.len() + self.opening.len(),
                    queued: self.wait_queue.len(),
                    admitted: self.admitted,
                    rejected: self.rejected,
                    done: self.done,
                });
            }
            Ctrl::Shutdown => return false,
        }
        true
    }

    /// Queues `session` for the boundary's coalesced open. The whole
    /// admission batch is scattered as one `OpenMany` per shard and its
    /// counts gathered in one shared wait in [`Sched::settle_opens`] — a
    /// burst of opens costs O(shards) messages, not O(shards · opens).
    fn begin_admit(&mut self, session: u64, spec: QuerySpec, events: Sender<SessionEvent>) {
        if events.send(SessionEvent::Admitted { session }).is_err() {
            // Client already gone; don't burn worker credit on it.
            return;
        }
        let shards = self.cluster.num_shards();
        self.opening.insert(
            session,
            Opening {
                spec,
                events,
                counts: vec![None; shards],
                failures: Vec::new(),
            },
        );
        self.opening_order.push(session);
        self.admitted += 1;
    }

    /// Scatters the pending admission batch (one `OpenMany` per shard),
    /// gathers the per-shard `Opens` count replies in one shared wait,
    /// then moves the settled sessions into the live table in admission
    /// order. Shards that never answered are written off as
    /// [`FailReason::OpenFailed`] (weight 0, missing-mass widening takes
    /// over).
    fn settle_opens(&mut self) {
        if self.opening.is_empty() {
            return;
        }
        let reqs: Vec<OpenReq> = self
            .opening_order
            .iter()
            .map(|&session| {
                let spec = &self.opening[&session].spec;
                OpenReq {
                    session,
                    query: spec.query,
                    mode: spec.mode,
                    seed: spec.seed,
                }
            })
            .collect();
        self.open_left = self.cluster.open_many(&reqs, &self.reply_tx);
        while self.open_left > 0 {
            match self.reply_rx.recv_timeout(GATHER_TIMEOUT) {
                Ok(r) => self.dispatch(r),
                Err(_) => break,
            }
        }
        self.open_left = 0;
        self.ids.clear();
        self.ids.append(&mut self.opening_order);
        for i in 0..self.ids.len() {
            let id = self.ids[i];
            if let Some(op) = self.opening.remove(&id) {
                self.finalize_open(id, op);
            }
        }
    }

    /// Builds the live [`Session`] from a settled opening.
    fn finalize_open(&mut self, session: u64, op: Opening) {
        let mut weights = Vec::with_capacity(op.counts.len());
        let mut failures = op.failures;
        for (s, c) in op.counts.iter().enumerate() {
            match c {
                Some(n) => weights.push(*n),
                None => {
                    weights.push(0);
                    failures.push((s, FailReason::OpenFailed));
                }
            }
        }
        let spec = op.spec;
        let core = StreamCore::new(spec.mode, weights, failures);
        let stat = match spec.mode {
            SampleMode::WithoutReplacement => OnlineStat::without_replacement(core.result_count()),
            SampleMode::WithReplacement => OnlineStat::new(),
        };
        self.table.insert(
            session,
            Session {
                events: op.events,
                rng: StdRng::seed_from_u64(spec.seed),
                core,
                stat,
                started: Instant::now(),
                sample_budget: spec.sample_budget,
                time_budget: spec.time_budget_ms.map(Duration::from_millis),
                target_error: spec.target_error,
                samples: 0,
                seq: 0,
                deficit: 0,
                awaiting: 0,
                round_open: false,
                progressed: false,
                fills_sent: 0,
            },
        );
        self.run_queue.push_back(session);
    }

    /// Cancels a session wherever it currently is (wait queue or live).
    fn terminate(&mut self, session: u64) {
        if let Some(pos) = self.wait_queue.iter().position(|(id, _, _)| *id == session) {
            let (_, _, events) = self.wait_queue.remove(pos).expect("position just found");
            let outcome = QueryOutcome {
                result: TaskResult::Aggregate {
                    estimate: OnlineStat::new().mean_estimate(),
                    confidence: self.cfg.confidence,
                },
                samples: 0,
                elapsed: Duration::ZERO,
                sampler: SamplerKind::RsTree,
                io_reads: 0,
                q: None,
                io_faults: 0,
                degraded: None,
                reason: StopReason::Cancelled,
            };
            self.done += 1;
            let _ = events.send(SessionEvent::Done {
                session,
                outcome: Box::new(outcome),
            });
            return;
        }
        if let Some(op) = self.opening.remove(&session) {
            // Cancelled in the same control drain that admitted it: the
            // batch has not scattered yet (settle runs after the drain),
            // so no worker stream exists to release.
            self.opening_order.retain(|&id| id != session);
            let outcome = QueryOutcome {
                result: TaskResult::Aggregate {
                    estimate: OnlineStat::new().mean_estimate(),
                    confidence: self.cfg.confidence,
                },
                samples: 0,
                elapsed: Duration::ZERO,
                sampler: SamplerKind::RsTree,
                io_reads: 0,
                q: None,
                io_faults: 0,
                degraded: None,
                reason: StopReason::Cancelled,
            };
            self.done += 1;
            let _ = op.events.send(SessionEvent::Done {
                session,
                outcome: Box::new(outcome),
            });
            return;
        }
        if self.table.contains_key(&session) {
            self.finish(session, StopReason::Cancelled);
        }
    }

    /// One scheduler tick: credit grant, then the round fixpoint, then
    /// progress emission. On entry no fills are in flight (the previous
    /// tick gathered everything it sent).
    fn tick(&mut self) {
        // Finished sessions leave the run queue lazily: compact only when
        // dead ids outnumber live ones, so teardown is amortized O(1) per
        // session instead of an O(live) scan per finish.
        if self.run_queue.len() > self.table.len().saturating_mul(2) {
            let table = &self.table;
            self.run_queue.retain(|id| table.contains_key(id));
        }
        let quantum = self.cfg.quantum;
        let cap = self.cfg.quantum + self.cfg.block;
        for sess in self.table.values_mut() {
            sess.deficit = (sess.deficit + quantum).min(cap);
        }
        loop {
            let started = self.start_rounds();
            self.flush_fills();
            self.gather();
            let completed = self.complete_rounds();
            if started == 0 && completed == 0 {
                break;
            }
        }
        self.emit_progress();
    }

    /// Starts rounds for every runnable session with credit, *fusing*
    /// bufferside rounds: a round whose draw is fully covered by the
    /// session's banked surplus needs no shard requests, so it is merged
    /// on the spot and the session immediately tries its next round —
    /// only a round that actually needs fills parks as `round_open` for
    /// the flush/gather barrier. The fusion changes scheduling *latency*
    /// only (fewer fixpoint sweeps), never round sizes or their order,
    /// so the determinism contract is untouched. Returns how many rounds
    /// were started or fused.
    fn start_rounds(&mut self) -> usize {
        let block = self.cfg.block;
        let confidence = self.cfg.confidence;
        let mut started = 0;
        self.ids.clear();
        self.ids.extend(self.run_queue.iter().copied());
        for i in 0..self.ids.len() {
            let id = self.ids[i];
            while let Some(sess) = self.table.get_mut(&id) {
                if sess.round_open {
                    break;
                }
                // The stop check runs before the credit gate so a session
                // that just hit its budget finishes this tick instead of
                // idling until the next grant.
                let check = StopCheck {
                    cancelled: false,
                    samples: sess.samples,
                    sample_budget: sess.sample_budget,
                    elapsed: sess.started.elapsed(),
                    time_budget: sess.time_budget,
                    rel_error: if sess.target_error.is_some() {
                        Some(sess.stat.mean_estimate().relative_error(confidence))
                    } else {
                        None
                    },
                    target_error: sess.target_error,
                };
                if let Some(reason) = check.decide() {
                    self.finish(id, reason);
                    break;
                }
                if sess.deficit < block {
                    break;
                }
                // Round sizes are pure functions of session-local state: a
                // fixed block, clamped only by the session's own remaining
                // budget (the determinism contract).
                let mut want = block;
                if let Some(budget) = sess.sample_budget {
                    want = want.min((budget - sess.samples) as usize);
                }
                let drawn = sess.core.draw(&mut sess.rng, want);
                if drawn == 0 {
                    self.finish(id, StopReason::Exhausted);
                    break;
                }
                if let Some(budget) = sess.sample_budget {
                    // Budget-aware prefetch: cap amplification by the draws
                    // this session can still consume after this round. Pure
                    // session-local state, so the determinism contract holds.
                    let after = budget.saturating_sub(sess.samples + drawn as u64);
                    sess.core.set_fetch_hint(after);
                }
                sess.deficit -= block;
                sess.seq += 1;
                sess.core.plan_requests(&mut self.plan);
                let mut requested = false;
                for (s, &req) in self.plan.iter().enumerate() {
                    if req == 0 {
                        continue;
                    }
                    if self.dead[s] {
                        sess.core.fail(s, FailReason::Disconnected);
                        continue;
                    }
                    self.shard_reqs[s].push(FillReq {
                        session: id,
                        n: req,
                        seq: sess.seq,
                    });
                    self.expected.insert((id, s));
                    sess.awaiting += 1;
                    sess.fills_sent += 1;
                    requested = true;
                }
                started += 1;
                if requested {
                    sess.round_open = true;
                    break;
                }
                // Bufferside round: merge inline and keep going.
                Self::merge_round(sess, &mut self.merged);
            }
        }
        started
    }

    /// Merges one gathered (or bufferside) round into its session's
    /// estimator.
    fn merge_round(sess: &mut Session, merged: &mut Vec<storm_rtree::Item<2>>) {
        merged.clear();
        let m = sess.core.merge_into(merged);
        for item in merged.iter() {
            sess.stat.push(item.point.get(0));
        }
        sess.samples += m as u64;
        if sess.core.is_degraded() {
            sess.stat.set_missing_mass(sess.core.missing_fraction());
        }
        if m > 0 {
            sess.progressed = true;
        }
    }

    /// Sends one coalesced `FillMany` per shard with pending requests.
    fn flush_fills(&mut self) {
        for s in 0..self.shard_reqs.len() {
            if self.shard_reqs[s].is_empty() {
                continue;
            }
            let reqs = std::mem::take(&mut self.shard_reqs[s]);
            if !self.cluster.fill_many(s, reqs) {
                // Worker gone: write the shard off for everyone waiting.
                self.dead[s] = true;
                self.fail_shard_expected(s, FailReason::Disconnected);
            }
        }
    }

    /// Blocks until every expected fill reply arrived (or the safety
    /// valve fires and writes the stragglers off).
    fn gather(&mut self) {
        while !self.expected.is_empty() {
            match self.reply_rx.recv_timeout(GATHER_TIMEOUT) {
                Ok(r) => self.dispatch(r),
                Err(_) => {
                    self.timed_out.clear();
                    self.timed_out.extend(self.expected.iter().copied());
                    for i in 0..self.timed_out.len() {
                        let (id, s) = self.timed_out[i];
                        self.dead[s] = true;
                        self.fail_expected(id, s, FailReason::Timeout);
                    }
                    break;
                }
            }
        }
    }

    /// Routes one worker reply by its echoed tags.
    fn dispatch(&mut self, reply: ShardReply) {
        match reply {
            ShardReply::Opens { shard, opens } => {
                // One shard's slice of the admission batch: bank every
                // count (sessions cancelled mid-settle are simply absent
                // from `opening` and their counts dropped).
                for o in opens {
                    let Some(op) = self.opening.get_mut(&o.session) else {
                        continue;
                    };
                    match o.count {
                        Some(n) => op.counts[shard] = Some(n as u64),
                        None => {
                            op.counts[shard] = Some(0);
                            op.failures.push((shard, FailReason::Aborted));
                        }
                    }
                }
                self.open_left = self.open_left.saturating_sub(1);
            }
            // Per-session open replies: the scheduler only opens via
            // `OpenMany`, so these can only be stale strays — banked
            // defensively if an opening still wants them.
            ShardReply::Opened {
                shard,
                count,
                session,
            } => {
                if let Some(op) = self.opening.get_mut(&session) {
                    if op.counts[shard].is_none() {
                        op.counts[shard] = Some(count as u64);
                    }
                }
            }
            ShardReply::Aborted { shard, session } => {
                if let Some(op) = self.opening.get_mut(&session) {
                    if op.counts[shard].is_none() {
                        op.counts[shard] = Some(0);
                        op.failures.push((shard, FailReason::Aborted));
                    }
                } else {
                    self.fail_expected(session, shard, FailReason::Aborted);
                }
            }
            ShardReply::Batch {
                shard,
                items,
                session,
                ..
            } => self.deliver(session, shard, Some(items)),
            ShardReply::Batches { shard, replies } => {
                for b in replies {
                    self.deliver(b.session, shard, b.items);
                }
            }
        }
    }

    /// Banks one session's batch (or per-session abort) if it is still
    /// expected; replies for cancelled rounds are dropped here.
    fn deliver(&mut self, session: u64, shard: usize, items: Option<Vec<storm_rtree::Item<2>>>) {
        if !self.expected.remove(&(session, shard)) {
            return;
        }
        let Some(sess) = self.table.get_mut(&session) else {
            return;
        };
        match items {
            Some(items) => sess.core.deliver(shard, items),
            None => sess.core.fail(shard, FailReason::Aborted),
        }
        sess.awaiting -= 1;
    }

    /// Writes one expected `(session, shard)` fill off as failed.
    fn fail_expected(&mut self, session: u64, shard: usize, reason: FailReason) {
        if !self.expected.remove(&(session, shard)) {
            return;
        }
        if let Some(sess) = self.table.get_mut(&session) {
            sess.core.fail(shard, reason);
            sess.awaiting -= 1;
        }
    }

    /// Writes every expected fill on `shard` off (worker death).
    fn fail_shard_expected(&mut self, shard: usize, reason: FailReason) {
        self.timed_out.clear();
        self.timed_out
            .extend(self.expected.iter().copied().filter(|&(_, s)| s == shard));
        for i in 0..self.timed_out.len() {
            let (id, s) = self.timed_out[i];
            self.fail_expected(id, s, reason);
        }
    }

    /// Merges every gathered request round into its session's estimator
    /// (bufferside rounds merged inline by [`Sched::start_rounds`] never
    /// park here). Returns how many rounds completed.
    fn complete_rounds(&mut self) -> usize {
        let mut completed = 0;
        for i in 0..self.ids.len() {
            let id = self.ids[i];
            let Some(sess) = self.table.get_mut(&id) else {
                continue;
            };
            if !sess.round_open || sess.awaiting > 0 {
                continue;
            }
            sess.round_open = false;
            Self::merge_round(sess, &mut self.merged);
            completed += 1;
        }
        completed
    }

    /// Emits one Progress per session that merged samples this tick;
    /// sessions whose client dropped the handle are garbage-collected.
    fn emit_progress(&mut self) {
        let confidence = self.cfg.confidence;
        self.ids.clear();
        self.ids.extend(self.run_queue.iter().copied());
        for i in 0..self.ids.len() {
            let id = self.ids[i];
            let Some(sess) = self.table.get_mut(&id) else {
                continue;
            };
            if !sess.progressed {
                continue;
            }
            sess.progressed = false;
            let degraded = sess.core.is_degraded().then(|| sess.core.degraded_info());
            let progress = Progress {
                samples: sess.samples,
                elapsed: sess.started.elapsed(),
                result: TaskResult::Aggregate {
                    estimate: sess.stat.mean_estimate(),
                    confidence,
                },
                degraded,
            };
            let event = SessionEvent::Progress {
                session: id,
                progress,
            };
            if sess.events.send(event).is_err() {
                // Client hung up without terminating.
                self.finish(id, StopReason::Cancelled);
            }
        }
    }

    /// Ends a live session: reclaims its in-flight credit (outstanding
    /// expectations dropped, worker streams closed) and emits `Done`.
    fn finish(&mut self, id: u64, reason: StopReason) {
        let Some(sess) = self.table.remove(&id) else {
            return;
        };
        self.expected.retain(|&(sid, _)| sid != id);
        // The run queue is compacted lazily (tick start) — the scan loops
        // skip ids no longer in the table — and the worker streams are
        // torn down by the tick's coalesced `CloseMany` flush.
        self.pending_close.push(id);
        let degraded = sess.core.is_degraded().then(|| sess.core.degraded_info());
        let outcome = QueryOutcome {
            result: TaskResult::Aggregate {
                estimate: sess.stat.mean_estimate(),
                confidence: self.cfg.confidence,
            },
            samples: sess.samples,
            elapsed: sess.started.elapsed(),
            sampler: SamplerKind::RsTree,
            io_reads: sess.fills_sent,
            q: Some(sess.core.result_count()),
            io_faults: 0,
            degraded,
            reason,
        };
        self.done += 1;
        let _ = sess.events.send(SessionEvent::Done {
            session: id,
            outcome: Box::new(outcome),
        });
    }
}
