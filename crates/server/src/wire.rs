//! Length-prefixed wire protocol for remote sessions (TCP + unix sockets).
//!
//! Hand-rolled fixed-width little-endian framing — no serialization
//! dependencies (the build is offline). One frame is:
//!
//! ```text
//! ┌──────────────┬─────────────────────────┐
//! │ len: u32 LE  │ payload (len bytes)     │
//! └──────────────┴─────────────────────────┘
//! payload = op: u8, then op-specific fixed-width LE fields
//! ```
//!
//! Requests (client → server), each answered by exactly one response
//! frame carrying the same op byte:
//!
//! | op | name      | request payload                                     | response payload |
//! |----|-----------|-----------------------------------------------------|------------------|
//! | 1  | OPEN      | 4×f64 rect, u8 mode, u64 seed, u64 sample budget (0 = none), u64 time budget ms (0 = none), f64 target error (0 = none) | u64 session id |
//! | 2  | POLL      | u64 session                                         | one encoded [`WireEvent`] or `0` (nothing pending) |
//! | 3  | TERMINATE | u64 session                                         | empty (ack) |
//!
//! Events are non-blocking: `POLL` drains at most one queued
//! [`SessionEvent`]; clients poll until [`WireEvent::Done`]. The encoding
//! (tag byte then fields) is documented on [`WireEvent`].
//!
//! The listener thread accepts connections and serves each on its own
//! thread; connection threads hold an `Arc<SessionServer>` and exit when
//! the peer hangs up, terminating any sessions still registered on that
//! connection (a dropped client must not leak worker credit).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use storm_core::SampleMode;
use storm_engine::session::{StopReason, TaskResult};
use storm_geo::{Point2, Rect2};

use crate::scheduler::{QuerySpec, SessionEvent, SessionHandle, SessionServer};

/// Frames larger than this are a protocol violation (closes the
/// connection). Generous for the fixed-width ops above.
const MAX_FRAME: u32 = 64 * 1024;

/// Op bytes. A response echoes its request's op.
const OP_OPEN: u8 = 1;
const OP_POLL: u8 = 2;
const OP_TERMINATE: u8 = 3;

/// Event tag bytes inside a POLL response.
const EV_NONE: u8 = 0;
const EV_ADMITTED: u8 = 1;
const EV_REJECTED: u8 = 2;
const EV_PROGRESS: u8 = 3;
const EV_DONE: u8 = 4;

/// A decoded server event as seen by a wire client.
///
/// Encoding (after the tag byte): `Admitted`/`Rejected` carry the u64
/// session; `Progress` carries u64 session, u64 samples, f64 estimate,
/// f64 std err, u64 n; `Done` carries u64 session, u8 stop reason
/// (0 exhausted, 1 quality, 2 time, 3 samples, 4 cancelled), then the
/// same four estimate fields as `Progress`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireEvent {
    /// The session entered the live table.
    Admitted {
        /// The session id.
        session: u64,
    },
    /// Admission control turned the open away.
    Rejected {
        /// The session id.
        session: u64,
    },
    /// The estimate refined.
    Progress {
        /// The session id.
        session: u64,
        /// Samples consumed so far.
        samples: u64,
        /// Current estimate value.
        value: f64,
        /// Current standard error.
        std_err: f64,
    },
    /// The session finished; no further events follow.
    Done {
        /// The session id.
        session: u64,
        /// Why it stopped.
        reason: StopReason,
        /// Total samples consumed.
        samples: u64,
        /// Final estimate value.
        value: f64,
        /// Final standard error.
        std_err: f64,
    },
}

fn reason_to_wire(r: StopReason) -> u8 {
    match r {
        StopReason::Exhausted => 0,
        StopReason::QualityReached => 1,
        StopReason::TimeBudget => 2,
        StopReason::SampleBudget => 3,
        StopReason::Cancelled => 4,
    }
}

fn reason_from_wire(b: u8) -> io::Result<StopReason> {
    Ok(match b {
        0 => StopReason::Exhausted,
        1 => StopReason::QualityReached,
        2 => StopReason::TimeBudget,
        3 => StopReason::SampleBudget,
        4 => StopReason::Cancelled,
        _ => return Err(bad("unknown stop reason byte")),
    })
}

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads one length-prefixed frame.
fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(bad("frame exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one length-prefixed frame.
fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// A little-endian field cursor over a received payload.
struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn u8(&mut self) -> io::Result<u8> {
        let (&b, rest) = self.0.split_first().ok_or_else(|| bad("short frame"))?;
        self.0 = rest;
        Ok(b)
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take()?))
    }

    fn take<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        if self.0.len() < N {
            return Err(bad("short frame"));
        }
        let (head, rest) = self.0.split_at(N);
        self.0 = rest;
        Ok(head.try_into().expect("split_at(N) yields N bytes"))
    }
}

fn encode_spec(buf: &mut Vec<u8>, spec: &QuerySpec) {
    for v in [
        spec.query.lo().get(0),
        spec.query.lo().get(1),
        spec.query.hi().get(0),
        spec.query.hi().get(1),
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.push(match spec.mode {
        SampleMode::WithoutReplacement => 0,
        SampleMode::WithReplacement => 1,
    });
    buf.extend_from_slice(&spec.seed.to_le_bytes());
    buf.extend_from_slice(&spec.sample_budget.unwrap_or(0).to_le_bytes());
    buf.extend_from_slice(&spec.time_budget_ms.unwrap_or(0).to_le_bytes());
    buf.extend_from_slice(&spec.target_error.unwrap_or(0.0).to_le_bytes());
}

fn decode_spec(c: &mut Cursor<'_>) -> io::Result<QuerySpec> {
    let (x0, y0, x1, y1) = (c.f64()?, c.f64()?, c.f64()?, c.f64()?);
    let mode = match c.u8()? {
        0 => SampleMode::WithoutReplacement,
        1 => SampleMode::WithReplacement,
        _ => return Err(bad("unknown sample mode byte")),
    };
    let seed = c.u64()?;
    let sample_budget = match c.u64()? {
        0 => None,
        n => Some(n),
    };
    let time_budget_ms = match c.u64()? {
        0 => None,
        n => Some(n),
    };
    let target_error = match c.f64()? {
        e if e > 0.0 => Some(e),
        _ => None,
    };
    Ok(QuerySpec {
        query: Rect2::from_corners(Point2::xy(x0, y0), Point2::xy(x1, y1)),
        mode,
        seed,
        sample_budget,
        time_budget_ms,
        target_error,
    })
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

/// A listener serving the wire protocol over a [`SessionServer`].
///
/// Dropping it stops accepting new connections; established connections
/// run until their peers hang up (each holds its own `Arc` on the
/// session server).
#[derive(Debug)]
pub struct WireServer {
    addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds a TCP listener (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn bind_tcp(server: Arc<SessionServer>, addr: &str) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("storm-wire-tcp".into())
            .spawn(move || {
                accept_loop(&accept_stop, &server, move || match listener.accept() {
                    Ok((stream, _)) => Some(Ok(stream)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => Some(Err(e)),
                });
            })?;
        Ok(WireServer {
            addr: Some(local),
            stop,
            accept_thread: Some(thread),
        })
    }

    /// Binds a unix-domain socket listener and starts accepting.
    pub fn bind_unix(server: Arc<SessionServer>, path: &Path) -> io::Result<WireServer> {
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("storm-wire-unix".into())
            .spawn(move || {
                accept_loop(&accept_stop, &server, move || match listener.accept() {
                    Ok((stream, _)) => Some(Ok(stream)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => Some(Err(e)),
                });
            })?;
        Ok(WireServer {
            addr: None,
            stop,
            accept_thread: Some(thread),
        })
    }

    /// The bound TCP address (`None` for unix-socket listeners).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Polls `accept` until stopped, spawning one serving thread per
/// connection. `accept` returns `None` when no connection is pending.
fn accept_loop<S>(
    stop: &AtomicBool,
    server: &Arc<SessionServer>,
    mut accept: impl FnMut() -> Option<io::Result<S>>,
) where
    S: Read + Write + Send + 'static,
{
    while !stop.load(Ordering::Relaxed) {
        match accept() {
            Some(Ok(stream)) => {
                let conn_server = Arc::clone(server);
                let spawned = std::thread::Builder::new()
                    .name("storm-wire-conn".into())
                    .spawn(move || serve_conn(&conn_server, stream));
                if spawned.is_err() {
                    return;
                }
            }
            Some(Err(_)) => return,
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Serves one connection until EOF or a protocol violation. Sessions
/// opened on the connection and not yet `Done` are terminated on exit.
fn serve_conn(server: &SessionServer, mut stream: impl Read + Write) {
    let mut handles: HashMap<u64, SessionHandle> = HashMap::new();
    let mut out = Vec::new();
    while let Ok(payload) = read_frame(&mut stream) {
        let mut c = Cursor(&payload);
        out.clear();
        let ok = match c.u8() {
            Ok(OP_OPEN) => handle_open(server, &mut handles, &mut c, &mut out),
            Ok(OP_POLL) => handle_poll(&mut handles, &mut c, &mut out),
            Ok(OP_TERMINATE) => handle_terminate(&handles, &mut c, &mut out),
            _ => false,
        };
        if !ok || write_frame(&mut stream, &out).is_err() {
            break;
        }
    }
    for handle in handles.values() {
        handle.terminate();
    }
}

fn handle_open(
    server: &SessionServer,
    handles: &mut HashMap<u64, SessionHandle>,
    c: &mut Cursor<'_>,
    out: &mut Vec<u8>,
) -> bool {
    let Ok(spec) = decode_spec(c) else {
        return false;
    };
    let handle = server.open(spec);
    out.push(OP_OPEN);
    out.extend_from_slice(&handle.id().to_le_bytes());
    handles.insert(handle.id(), handle);
    true
}

fn handle_poll(
    handles: &mut HashMap<u64, SessionHandle>,
    c: &mut Cursor<'_>,
    out: &mut Vec<u8>,
) -> bool {
    let Ok(session) = c.u64() else {
        return false;
    };
    out.push(OP_POLL);
    let event = handles.get(&session).and_then(SessionHandle::try_event);
    let mut finished = false;
    match event {
        None => out.push(EV_NONE),
        Some(SessionEvent::Admitted { session }) => {
            out.push(EV_ADMITTED);
            out.extend_from_slice(&session.to_le_bytes());
        }
        Some(SessionEvent::Rejected { session }) => {
            out.push(EV_REJECTED);
            out.extend_from_slice(&session.to_le_bytes());
            finished = true;
        }
        Some(SessionEvent::Progress { session, progress }) => {
            let (value, std_err) = match progress.result {
                TaskResult::Aggregate { estimate, .. } => (estimate.value, estimate.std_err),
                _ => (f64::NAN, f64::NAN),
            };
            out.push(EV_PROGRESS);
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&progress.samples.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
            out.extend_from_slice(&std_err.to_le_bytes());
        }
        Some(SessionEvent::Done { session, outcome }) => {
            let (value, std_err) = match outcome.result {
                TaskResult::Aggregate { estimate, .. } => (estimate.value, estimate.std_err),
                _ => (f64::NAN, f64::NAN),
            };
            out.push(EV_DONE);
            out.extend_from_slice(&session.to_le_bytes());
            out.push(reason_to_wire(outcome.reason));
            out.extend_from_slice(&outcome.samples.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
            out.extend_from_slice(&std_err.to_le_bytes());
            finished = true;
        }
    }
    if finished {
        handles.remove(&session);
    }
    true
}

fn handle_terminate(
    handles: &HashMap<u64, SessionHandle>,
    c: &mut Cursor<'_>,
    out: &mut Vec<u8>,
) -> bool {
    let Ok(session) = c.u64() else {
        return false;
    };
    if let Some(handle) = handles.get(&session) {
        handle.terminate();
    }
    out.push(OP_TERMINATE);
    true
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// The stream behind a [`WireClient`] (TCP or unix-domain).
enum ClientStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A unix-domain connection.
    Unix(UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking request/response client for the wire protocol.
pub struct WireClient {
    stream: ClientStream,
    buf: Vec<u8>,
}

impl std::fmt::Debug for WireClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WireClient { .. }")
    }
}

impl WireClient {
    /// Connects over TCP.
    pub fn connect_tcp(addr: SocketAddr) -> io::Result<WireClient> {
        Ok(WireClient {
            stream: ClientStream::Tcp(TcpStream::connect(addr)?),
            buf: Vec::new(),
        })
    }

    /// Connects over a unix-domain socket.
    pub fn connect_unix(path: &Path) -> io::Result<WireClient> {
        Ok(WireClient {
            stream: ClientStream::Unix(UnixStream::connect(path)?),
            buf: Vec::new(),
        })
    }

    /// Submits a query; returns the assigned session id (poll for
    /// [`WireEvent::Admitted`] / [`WireEvent::Rejected`]).
    pub fn open(&mut self, spec: &QuerySpec) -> io::Result<u64> {
        self.buf.clear();
        self.buf.push(OP_OPEN);
        encode_spec(&mut self.buf, spec);
        write_frame(&mut self.stream, &self.buf)?;
        let reply = read_frame(&mut self.stream)?;
        let mut c = Cursor(&reply);
        if c.u8()? != OP_OPEN {
            return Err(bad("response op mismatch"));
        }
        c.u64()
    }

    /// Drains at most one pending event for `session`.
    pub fn poll(&mut self, session: u64) -> io::Result<Option<WireEvent>> {
        self.buf.clear();
        self.buf.push(OP_POLL);
        self.buf.extend_from_slice(&session.to_le_bytes());
        write_frame(&mut self.stream, &self.buf)?;
        let reply = read_frame(&mut self.stream)?;
        let mut c = Cursor(&reply);
        if c.u8()? != OP_POLL {
            return Err(bad("response op mismatch"));
        }
        Ok(match c.u8()? {
            EV_NONE => None,
            EV_ADMITTED => Some(WireEvent::Admitted { session: c.u64()? }),
            EV_REJECTED => Some(WireEvent::Rejected { session: c.u64()? }),
            EV_PROGRESS => Some(WireEvent::Progress {
                session: c.u64()?,
                samples: c.u64()?,
                value: c.f64()?,
                std_err: c.f64()?,
            }),
            EV_DONE => Some(WireEvent::Done {
                session: c.u64()?,
                reason: reason_from_wire(c.u8()?)?,
                samples: c.u64()?,
                value: c.f64()?,
                std_err: c.f64()?,
            }),
            _ => return Err(bad("unknown event tag")),
        })
    }

    /// Requests cancellation of `session`.
    pub fn terminate(&mut self, session: u64) -> io::Result<()> {
        self.buf.clear();
        self.buf.push(OP_TERMINATE);
        self.buf.extend_from_slice(&session.to_le_bytes());
        write_frame(&mut self.stream, &self.buf)?;
        let reply = read_frame(&mut self.stream)?;
        let mut c = Cursor(&reply);
        if c.u8()? != OP_TERMINATE {
            return Err(bad("response op mismatch"));
        }
        Ok(())
    }
}
