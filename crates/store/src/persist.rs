//! JSON-lines persistence for collections.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{json, Collection, StoreError, Value};

/// Writes every live document of `collection` as one JSON object per line.
///
/// Document ids are embedded under the reserved key `"_id"` so a reload
/// restores them.
pub fn save(collection: &Collection, path: &Path) -> Result<(), StoreError> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    let mut docs: Vec<_> = collection.scan().collect();
    docs.sort_by_key(|d| d.id);
    for doc in docs {
        let mut body = match &doc.body {
            Value::Object(map) => map.clone(),
            other => {
                // Non-object roots are wrapped to keep the line an object.
                let mut map = std::collections::BTreeMap::new();
                map.insert("_value".to_owned(), other.clone());
                map
            }
        };
        body.insert("_id".to_owned(), Value::Int(doc.id.0 as i64));
        writeln!(out, "{}", json::to_string(&Value::Object(body)))?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a JSON-lines file produced by [`save`] into a fresh collection
/// named `name`. Ids are re-assigned contiguously (documents keep their
/// relative order); the original id is preserved under `"_orig_id"` when it
/// differs.
pub fn load(name: &str, path: &Path) -> Result<Collection, StoreError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut collection = Collection::new(name);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(&line)?;
        let mut map = match value {
            Value::Object(map) => map,
            other => {
                // storm-analyzer: allow(A4): startup persistence path — one wrapper map per non-object document at load, not sampling work
                let mut m = std::collections::BTreeMap::new();
                // storm-analyzer: allow(A4): startup persistence path — one key string per wrapped document at load, not sampling work
                m.insert("_value".to_owned(), other);
                m
            }
        };
        let orig = map.remove("_id");
        // storm-analyzer: allow(A4): startup persistence path — one document copy per loaded row, not sampling work
        let new_id = collection.insert(Value::Object(map.clone()));
        if let Some(Value::Int(orig_id)) = orig {
            if orig_id as u64 != new_id.0 {
                // storm-analyzer: allow(A4): startup persistence path — one key string per re-keyed document at load, not sampling work
                map.insert("_orig_id".to_owned(), Value::Int(orig_id));
                collection.update(new_id, Value::Object(map))?;
            }
        }
    }
    Ok(collection)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("storm-store-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let mut c = Collection::new("weather");
        for i in 0..25i64 {
            c.insert(Value::object([
                ("temp".into(), Value::from(20.0 + i as f64)),
                ("station".into(), Value::from(format!("s{i}"))),
            ]));
        }
        let path = tmp("roundtrip");
        save(&c, &path).unwrap();
        let loaded = load("weather", &path).unwrap();
        assert_eq!(loaded.len(), 25);
        let doc = loaded
            .scan()
            .find(|d| d.text("station") == Some("s7"))
            .unwrap()
            .clone();
        assert_eq!(doc.number("temp"), Some(27.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn deleted_documents_do_not_survive() {
        let mut c = Collection::new("t");
        let a = c.insert(Value::object([("v".into(), Value::from(1i64))]));
        c.insert(Value::object([("v".into(), Value::from(2i64))]));
        c.remove(a);
        let path = tmp("deleted");
        save(&c, &path).unwrap();
        let loaded = load("t", &path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.scan().next().unwrap().int("v"), Some(2));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_bad_json() {
        let path = tmp("bad");
        std::fs::write(&path, "{\"ok\":1}\nnot json\n").unwrap();
        assert!(load("t", &path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let path = tmp("blank");
        std::fs::write(&path, "{\"v\":1}\n\n{\"v\":2}\n").unwrap();
        let loaded = load("t", &path).unwrap();
        assert_eq!(loaded.len(), 2);
        std::fs::remove_file(path).ok();
    }
}
