//! Hand-written JSON parser and serializer (the "free data module").

use std::collections::BTreeMap;

use crate::{StoreError, Value};

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, StoreError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Serializes a value to compact JSON. Object keys come out sorted
/// (`BTreeMap`), so serialization is deterministic.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

/// Maximum nesting depth accepted by the parser (stack-overflow guard).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> StoreError {
        StoreError::Json {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), StoreError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, StoreError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, StoreError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, StoreError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, StoreError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, StoreError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("missing low surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multi-byte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(c).ok_or_else(|| self.err("invalid UTF-8"))?;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, StoreError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, StoreError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ASCII byte inside number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("number out of range"))
        } else {
            // Large integers fall back to float like most JSON libraries.
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.err("number out of range"))
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Ensure floats round-trip as floats.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // storm-analyzer: allow(A4): persistence-path escape of rare control chars, not sampling work
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("3.25").unwrap(), Value::Float(3.25));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("-2.5E-2").unwrap(), Value::Float(-0.025));
        assert_eq!(parse("\"hi\"").unwrap(), Value::from("hi"));
    }

    #[test]
    fn parses_structures_with_whitespace() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , null ] , \"b\" : { } } ").unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0], Value::Int(1));
        assert!(v.get("b").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn string_escapes_round_trip() {
        let cases = [
            "plain",
            "with \"quotes\"",
            "line\nbreak\ttab\\slash",
            "unicode: ümlaut — em🌩storm",
            "control:\u{0001}",
        ];
        for s in cases {
            let v = Value::from(s);
            let text = to_string(&v);
            assert_eq!(parse(&text).unwrap(), v, "case {s:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""A""#).unwrap(), Value::from("A"));
        assert_eq!(parse(r#""🌩""#).unwrap(), Value::from("🌩"));
        assert!(parse(r#""\ud83c""#).is_err()); // lone high surrogate
        assert!(parse(r#""\udf29""#).is_err()); // lone low surrogate
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "{",
            "[1,",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "[1] extra",
            "{\"a\" 1}",
            "\u{0007}",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn serialization_is_deterministic_and_sorted() {
        let v = Value::object([
            ("b".into(), Value::from(1i64)),
            ("a".into(), Value::from(2i64)),
        ]);
        assert_eq!(to_string(&v), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn float_int_distinction_survives_round_trip() {
        let v = Value::object([
            ("i".into(), Value::from(5i64)),
            ("f".into(), Value::from(5.0)),
        ]);
        let back = parse(&to_string(&v)).unwrap();
        assert_eq!(back.get("i").unwrap(), &Value::Int(5));
        assert_eq!(back.get("f").unwrap(), &Value::Float(5.0));
    }

    #[test]
    fn huge_integers_degrade_to_float() {
        let v = parse("123456789012345678901234567890").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Float(f64::INFINITY)), "null");
    }
}
