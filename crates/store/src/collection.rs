//! Block-oriented collections.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use storm_faultkit::{FaultHook, FaultKind, FaultSite};

use crate::{DocId, Document, StoreError, Value};

/// Logical block-access counters for a collection (the simulated-DFS view
/// of the storage engine).
#[derive(Debug, Default)]
pub struct BlockStats {
    reads: AtomicU64,
    writes: AtomicU64,
    faults: AtomicU64,
}

impl BlockStats {
    /// Block reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Block writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Block reads that failed (corrupt or transient) so far.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Zeroes the counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
    }
}

/// A collection of documents packed into fixed-size logical blocks.
///
/// Documents are assigned monotonically increasing ids; a document's block
/// is `id / docs_per_block`, mimicking an append-only segment file. Reads
/// and writes charge the owning block once per operation.
#[derive(Debug)]
pub struct Collection {
    name: String,
    pub(crate) docs_per_block: usize,
    /// Live documents; tombstoned ids are simply absent.
    pub(crate) docs: HashMap<u64, Document>,
    pub(crate) next_id: u64,
    stats: BlockStats,
    /// Fault-injection hook for the block-read path (chaos/test runs
    /// only); one `Option` branch per read when absent.
    fault_hook: Option<Arc<dyn FaultHook>>,
    /// Monotone count of fault-aware reads: the op coordinate for
    /// transient-fault decisions (deliberately not reset with the stats,
    /// so fault schedules replay identically per collection lifetime).
    read_ops: AtomicU64,
}

/// Default number of documents per logical block.
pub const DEFAULT_DOCS_PER_BLOCK: usize = 64;

impl Collection {
    /// Creates an empty collection.
    pub fn new(name: impl Into<String>) -> Self {
        Collection::with_block_size(name, DEFAULT_DOCS_PER_BLOCK)
    }

    /// Creates an empty collection with a custom block size.
    ///
    /// # Panics
    /// Panics when `docs_per_block == 0`.
    pub fn with_block_size(name: impl Into<String>, docs_per_block: usize) -> Self {
        assert!(docs_per_block > 0, "block size must be positive");
        Collection {
            name: name.into(),
            docs_per_block,
            docs: HashMap::new(),
            next_id: 0,
            stats: BlockStats::default(),
            fault_hook: None,
            read_ops: AtomicU64::new(0),
        }
    }

    /// Installs a fault-injection hook on the block-read path
    /// ([`Collection::try_get`] consults it; [`Collection::get`] stays
    /// fault-oblivious for callers that cannot handle errors).
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Removes the fault hook.
    pub fn clear_fault_hook(&mut self) {
        self.fault_hook = None;
    }

    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Block-access counters.
    pub fn stats(&self) -> &BlockStats {
        &self.stats
    }

    /// Inserts a record body, returning its assigned id.
    pub fn insert(&mut self, body: Value) -> DocId {
        let id = DocId(self.next_id);
        self.next_id += 1;
        self.docs.insert(id.0, Document::new(id, body));
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.debug_audit();
        id
    }

    /// Debug-build audit: re-validates id/block bookkeeping after a
    /// mutation (every mutation while small, then sampled — full checks are
    /// `O(len)`). Release builds compile this to nothing.
    #[inline]
    fn debug_audit(&self) {
        #[cfg(debug_assertions)]
        {
            if self.len() <= 512 || self.next_id.is_multiple_of(64) {
                debug_assert_eq!(
                    crate::validate::check_collection(self),
                    Ok(()),
                    "collection invariant audit failed"
                );
            }
        }
    }

    /// Fetches a document (one block read).
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.docs.get(&id.0)
    }

    /// Fetches a document or errors.
    pub fn require(&self, id: DocId) -> Result<&Document, StoreError> {
        self.get(id).ok_or(StoreError::NotFound(id))
    }

    /// Fetches a document through the fault-aware read path (one block
    /// read). With no hook installed this is exactly [`Collection::get`];
    /// with one, the read may fail with [`StoreError::CorruptBlock`]
    /// (persistent per block — re-reading cannot help) or
    /// [`StoreError::TransientIo`] (a retry consults a fresh fault
    /// decision and may succeed).
    pub fn try_get(&self, id: DocId) -> Result<Option<&Document>, StoreError> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(hook) = &self.fault_hook {
            let block = self.block_of(id);
            // Corruption is a property of the block, not of the attempt:
            // pin the op coordinate so a corrupt block stays corrupt.
            if matches!(
                hook.fault(FaultSite::BlockRead, block as usize, 0),
                Some(FaultKind::CorruptBlock)
            ) {
                self.stats.faults.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::CorruptBlock { block });
            }
            let op = self.read_ops.fetch_add(1, Ordering::Relaxed);
            if matches!(
                hook.fault(FaultSite::BlockRead, block as usize, op),
                Some(FaultKind::TransientIo)
            ) {
                self.stats.faults.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::TransientIo { block });
            }
        }
        Ok(self.docs.get(&id.0))
    }

    /// Removes a document (one block write). Returns the removed document.
    pub fn remove(&mut self, id: DocId) -> Option<Document> {
        let doc = self.docs.remove(&id.0)?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.debug_audit();
        Some(doc)
    }

    /// Replaces a document body in place (one block write).
    pub fn update(&mut self, id: DocId, body: Value) -> Result<(), StoreError> {
        match self.docs.get_mut(&id.0) {
            Some(doc) => {
                doc.body = body;
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => Err(StoreError::NotFound(id)),
        }
    }

    /// Iterates over live documents in unspecified order (a full scan;
    /// charged one read per block).
    pub fn scan(&self) -> impl Iterator<Item = &Document> {
        let blocks = self.next_id.div_ceil(self.docs_per_block as u64);
        self.stats.reads.fetch_add(blocks, Ordering::Relaxed);
        self.docs.values()
    }

    /// The logical block a document id lives in.
    pub fn block_of(&self, id: DocId) -> u64 {
        id.0 / self.docs_per_block as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(v: i64) -> Value {
        Value::object([("v".into(), Value::from(v))])
    }

    #[test]
    fn insert_get_remove_cycle() {
        let mut c = Collection::new("test");
        let a = c.insert(body(1));
        let b = c.insert(body(2));
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(a).unwrap().int("v"), Some(1));
        assert!(c.remove(a).is_some());
        assert!(c.remove(a).is_none());
        assert!(c.get(a).is_none());
        assert!(matches!(c.require(a), Err(StoreError::NotFound(_))));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut c = Collection::new("test");
        let a = c.insert(body(1));
        c.remove(a);
        let b = c.insert(body(2));
        assert_ne!(a, b);
    }

    #[test]
    fn update_replaces_body() {
        let mut c = Collection::new("test");
        let a = c.insert(body(1));
        c.update(a, body(9)).unwrap();
        assert_eq!(c.get(a).unwrap().int("v"), Some(9));
        assert!(c.update(DocId(999), body(0)).is_err());
    }

    #[test]
    fn scan_charges_block_reads() {
        let mut c = Collection::with_block_size("test", 10);
        for i in 0..95 {
            c.insert(body(i));
        }
        c.stats().reset();
        let n = c.scan().count();
        assert_eq!(n, 95);
        assert_eq!(c.stats().reads(), 10); // ceil(95/10)
    }

    #[test]
    fn try_get_without_hook_is_plain_get() {
        let mut c = Collection::new("test");
        let a = c.insert(body(1));
        assert_eq!(c.try_get(a).unwrap().unwrap().int("v"), Some(1));
        assert!(c.try_get(DocId(99)).unwrap().is_none());
        assert_eq!(c.stats().faults(), 0);
    }

    #[test]
    fn corrupt_blocks_are_sticky_and_transients_are_not() {
        use storm_faultkit::FaultPlan;
        let mut c = Collection::with_block_size("test", 4);
        let ids: Vec<DocId> = (0..64).map(|i| c.insert(body(i))).collect();
        c.set_fault_hook(Arc::new(
            FaultPlan::seeded(5)
                .with_block_corruption(300)
                .with_transient_io(300),
        ));
        // Find a corrupt block: its reads fail identically forever.
        let corrupt = ids
            .iter()
            .find(|&&id| matches!(c.try_get(id), Err(StoreError::CorruptBlock { .. })))
            .copied()
            .expect("30% corruption over 16 blocks should hit at least one");
        for _ in 0..5 {
            assert!(matches!(
                c.try_get(corrupt),
                Err(StoreError::CorruptBlock { .. })
            ));
        }
        // Find a transiently failing read: a bounded number of retries
        // gets through (fresh decision per attempt).
        let transient = ids
            .iter()
            .find(|&&id| matches!(c.try_get(id), Err(StoreError::TransientIo { .. })))
            .copied()
            .expect("30% transient rate should hit at least one read");
        assert!(StoreError::TransientIo { block: 0 }.is_transient());
        let recovered = (0..20).any(|_| c.try_get(transient).is_ok());
        assert!(recovered, "transient fault never cleared in 20 retries");
        assert!(c.stats().faults() > 0);
        // Removing the hook restores clean reads.
        c.clear_fault_hook();
        assert!(c.try_get(corrupt).is_ok());
    }

    #[test]
    fn block_mapping() {
        let mut c = Collection::with_block_size("test", 4);
        let ids: Vec<DocId> = (0..9).map(|i| c.insert(body(i))).collect();
        assert_eq!(c.block_of(ids[0]), 0);
        assert_eq!(c.block_of(ids[3]), 0);
        assert_eq!(c.block_of(ids[4]), 1);
        assert_eq!(c.block_of(ids[8]), 2);
    }
}
