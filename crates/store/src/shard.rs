//! Sharding: partitioning documents across simulated cluster nodes.
//!
//! STORM "builds on a cluster of commodity machines to achieve its
//! scalability" and uses a *distributed Hilbert R-tree* (paper §3.1). The
//! distribution substrate is the partitioner: hash partitioning spreads
//! load uniformly; Hilbert-range partitioning keeps spatially adjacent
//! records on the same shard so a spatial query touches few shards.

use storm_geo::curve::{HilbertCurve, SpaceFillingCurve};
use storm_geo::{Point2, Rect2};

/// Assigns a shard to each record.
pub trait Partitioner {
    /// Number of shards.
    fn shards(&self) -> usize;

    /// The shard for a record with the given id and location.
    fn route(&self, id: u64, location: Option<Point2>) -> usize;

    /// Degraded-mode routing: the shard for a record when some shards are
    /// dead. When the primary route lands on a dead shard, the record is
    /// deterministically re-routed to the next surviving shard (wrapping),
    /// so placement stays a pure function of `(id, location, dead-set)`
    /// and a recovered run replays identically. Returns `None` when every
    /// shard is dead.
    ///
    /// `dead` is indexed by shard; shards beyond its length are live.
    fn route_surviving(&self, id: u64, location: Option<Point2>, dead: &[bool]) -> Option<usize> {
        let n = self.shards();
        let primary = self.route(id, location);
        (0..n)
            .map(|step| (primary + step) % n)
            .find(|&s| !dead.get(s).copied().unwrap_or(false))
    }
}

/// Uniform hash partitioning on the record id (ignores geometry).
#[derive(Debug, Clone, Copy)]
pub struct HashPartitioner {
    shards: usize,
}

impl HashPartitioner {
    /// Creates a hash partitioner over `shards` nodes.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        HashPartitioner { shards }
    }
}

impl Partitioner for HashPartitioner {
    fn shards(&self) -> usize {
        self.shards
    }

    fn route(&self, id: u64, _location: Option<Point2>) -> usize {
        // SplitMix64 finaliser as the hash.
        let mut x = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((x ^ (x >> 31)) % self.shards as u64) as usize
    }
}

/// Hilbert-range partitioning: the curve index space is cut into `shards`
/// equal ranges; records route by the Hilbert index of their location.
/// Records without a location fall back to hash routing.
#[derive(Debug, Clone, Copy)]
pub struct HilbertPartitioner {
    bounds: Rect2,
    curve: HilbertCurve,
    shards: usize,
}

impl HilbertPartitioner {
    /// Creates a Hilbert partitioner over `shards` nodes for data within
    /// `bounds`.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(bounds: Rect2, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        HilbertPartitioner {
            bounds,
            // storm-lint: allow(R1): constant order 16 is within HilbertCurve's static range
            curve: HilbertCurve::new(16).expect("order 16 is valid"),
            shards,
        }
    }
}

impl Partitioner for HilbertPartitioner {
    fn shards(&self) -> usize {
        self.shards
    }

    fn route(&self, id: u64, location: Option<Point2>) -> usize {
        match location {
            None => HashPartitioner::new(self.shards).route(id, None),
            Some(p) => {
                let d = self.curve.index_of_point(&self.bounds, &p);
                let range = self.curve.cells().div_ceil(self.shards as u64);
                ((d / range) as usize).min(self.shards - 1)
            }
        }
    }
}

/// Construction-time layout plan for frozen shard arenas.
///
/// The frozen tree layout (storm-rtree `FrozenRTree`) wants each shard's
/// records as one contiguous, Hilbert-coherent run. This plan computes
/// that layout once at shard-construction time: `order` lists record
/// positions shard by shard, sorted along the Hilbert curve within each
/// shard, and `ranges` gives each shard's contiguous slice of `order`.
/// Feeding `order[ranges[s]]` to a per-shard arena build hands the
/// packer an already-coherent run, and the assignment agrees exactly
/// with [`Partitioner::route`] so online routing and bulk construction
/// can never disagree about ownership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenShardPlan {
    /// Input record positions in arena order (shard-major, curve-sorted).
    pub order: Vec<usize>,
    /// Each shard's contiguous range over `order` (empty when the shard
    /// owns no records).
    pub ranges: Vec<std::ops::Range<usize>>,
}

impl HilbertPartitioner {
    /// Plans the frozen arena layout for `records` (id + optional
    /// location, as routed by [`Partitioner::route`]). Deterministic:
    /// ties sort by input position.
    pub fn frozen_plan(&self, records: &[(u64, Option<Point2>)]) -> FrozenShardPlan {
        let mut keyed: Vec<(usize, u64, usize)> = records
            .iter()
            .enumerate()
            .map(|(pos, &(id, loc))| {
                let shard = self.route(id, loc);
                // Location-less records sort to the shard's tail (their
                // placement is hash-driven, not spatial).
                let key = match loc {
                    Some(p) => self.curve.index_of_point(&self.bounds, &p),
                    None => u64::MAX,
                };
                (shard, key, pos)
            })
            .collect();
        keyed.sort_unstable();
        let order: Vec<usize> = keyed.iter().map(|&(_, _, pos)| pos).collect();
        let mut ranges = vec![0..0; self.shards];
        let mut start = 0usize;
        for (shard, range) in ranges.iter_mut().enumerate() {
            let end = start + keyed[start..].iter().take_while(|k| k.0 == shard).count();
            *range = start..end;
            start = end;
        }
        FrozenShardPlan { order, ranges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioning_is_balanced() {
        let p = HashPartitioner::new(8);
        let mut counts = vec![0usize; 8];
        for id in 0..8000u64 {
            counts[p.route(id, None)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn hilbert_partitioning_keeps_neighbours_together() {
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(100.0, 100.0));
        let p = HilbertPartitioner::new(bounds, 4);
        // Points in a tiny neighbourhood land on one shard.
        let base = p.route(0, Some(Point2::xy(10.0, 10.0)));
        for d in 0..10 {
            let shard = p.route(
                d,
                Some(Point2::xy(10.0 + d as f64 * 0.01, 10.0 + d as f64 * 0.01)),
            );
            assert_eq!(shard, base);
        }
    }

    #[test]
    fn hilbert_partitioning_covers_all_shards() {
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(100.0, 100.0));
        let p = HilbertPartitioner::new(bounds, 4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            for j in 0..100 {
                seen.insert(p.route(0, Some(Point2::xy(i as f64, j as f64))));
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn route_surviving_skips_dead_shards_deterministically() {
        let p = HashPartitioner::new(4);
        for id in 0..200u64 {
            let primary = p.route(id, None);
            // No dead shards: identical to the primary route.
            assert_eq!(p.route_surviving(id, None, &[]), Some(primary));
            // Primary dead: lands on the next surviving shard, stably.
            let mut dead = vec![false; 4];
            dead[primary] = true;
            let rerouted = p.route_surviving(id, None, &dead);
            assert_eq!(rerouted, Some((primary + 1) % 4));
            assert_eq!(rerouted, p.route_surviving(id, None, &dead));
        }
        // Everything dead: no route.
        assert_eq!(p.route_surviving(7, None, &[true; 4]), None);
    }

    #[test]
    fn frozen_plan_partitions_and_agrees_with_route() {
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(100.0, 100.0));
        let p = HilbertPartitioner::new(bounds, 4);
        let records: Vec<(u64, Option<Point2>)> = (0..500u64)
            .map(|i| {
                let loc = (i % 7 != 0).then(|| {
                    Point2::xy(
                        ((i * 37) % 101) as f64 * 0.99,
                        ((i * 61) % 97) as f64 * 1.01,
                    )
                });
                (i, loc)
            })
            .collect();
        let plan = p.frozen_plan(&records);
        // `order` is a permutation of record positions.
        let mut sorted = plan.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..records.len()).collect::<Vec<_>>());
        // Ranges tile `order` exactly, in shard order.
        assert_eq!(plan.ranges.len(), 4);
        let mut cursor = 0;
        for r in &plan.ranges {
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor, records.len());
        // Every record sits inside the range of its routed shard, and
        // located records within a shard run in Hilbert order.
        let curve = HilbertCurve::new(16).unwrap();
        for (shard, r) in plan.ranges.iter().enumerate() {
            let mut last_key = 0u64;
            for &pos in &plan.order[r.clone()] {
                let (id, loc) = records[pos];
                assert_eq!(p.route(id, loc), shard);
                let key = match loc {
                    Some(pt) => curve.index_of_point(&bounds, &pt),
                    None => u64::MAX,
                };
                assert!(key >= last_key, "arena run not curve-sorted");
                last_key = key;
            }
        }
    }

    #[test]
    fn frozen_plan_is_deterministic() {
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(10.0, 10.0));
        let p = HilbertPartitioner::new(bounds, 3);
        let records: Vec<(u64, Option<Point2>)> = (0..200u64)
            .map(|i| (i, Some(Point2::xy((i % 11) as f64, (i % 13) as f64))))
            .collect();
        assert_eq!(p.frozen_plan(&records), p.frozen_plan(&records));
    }

    #[test]
    fn missing_location_falls_back_to_hash() {
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(1.0, 1.0));
        let p = HilbertPartitioner::new(bounds, 4);
        let s = p.route(42, None);
        assert!(s < 4);
        // Deterministic.
        assert_eq!(s, p.route(42, None));
    }
}
