//! Documents: identified records.

use crate::Value;

/// A stable document identifier within one collection. The same id links
/// the record to its R-tree [`Item`](storm_geo::Point) entry, so samplers
/// return `DocId`s that the estimators resolve to attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

/// A record: an id plus its JSON-like body.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Collection-unique identifier.
    pub id: DocId,
    /// The record body.
    pub body: Value,
}

impl Document {
    /// Creates a document.
    pub fn new(id: DocId, body: Value) -> Self {
        Document { id, body }
    }

    /// Numeric field access with integer widening (`None` when the field is
    /// missing or non-numeric).
    pub fn number(&self, field: &str) -> Option<f64> {
        self.body.get_path(field)?.as_float()
    }

    /// String field access.
    pub fn text(&self, field: &str) -> Option<&str> {
        self.body.get_path(field)?.as_str()
    }

    /// Integer field access (exact ints only).
    pub fn int(&self, field: &str) -> Option<i64> {
        self.body.get_path(field)?.as_int()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_accessors() {
        let doc = Document::new(
            DocId(7),
            Value::object([
                ("temp".into(), Value::from(21.5)),
                ("count".into(), Value::from(3i64)),
                ("name".into(), Value::from("slc")),
                (
                    "geo".into(),
                    Value::object([("lat".into(), Value::from(40.7))]),
                ),
            ]),
        );
        assert_eq!(doc.number("temp"), Some(21.5));
        assert_eq!(doc.number("count"), Some(3.0));
        assert_eq!(doc.int("count"), Some(3));
        assert_eq!(doc.int("temp"), None);
        assert_eq!(doc.text("name"), Some("slc"));
        assert_eq!(doc.number("geo.lat"), Some(40.7));
        assert_eq!(doc.number("missing"), None);
    }
}
