//! Storage engine substrate for STORM.
//!
//! The deployed STORM system stores records as JSON documents in a
//! distributed MongoDB installation over a DFS (paper §2). This crate
//! provides an in-process equivalent built from scratch:
//!
//! * [`Value`] — a JSON-like document data model, with a hand-written
//!   parser and serializer in [`json`] (no external JSON dependency, per
//!   the "free data module ... converts between different record formats
//!   and JSON" description);
//! * [`Document`] / [`Collection`] — schema-flexible record storage with a
//!   **block layer**: records live in fixed-size logical blocks and every
//!   block touch is counted ([`BlockStats`]), simulating the DFS;
//! * [`shard`] — hash and Hilbert-range partitioning of documents across
//!   simulated cluster nodes (the substrate under the paper's
//!   "distributed Hilbert R-tree");
//! * [`persist`] — JSON-lines save/load for collections;
//! * [`runs`] — the epoch-pinned run registry under the LSM-style ingest
//!   tier (atomic delta/run-set replacement with crash-safe publishes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collection;
mod document;
pub mod json;
pub mod persist;
pub mod runs;
pub mod shard;
pub mod validate;
mod value;

pub use collection::{BlockStats, Collection};
pub use document::{DocId, Document};
pub use value::Value;

/// Errors from the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// JSON text failed to parse.
    Json {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// An I/O error from persistence, stringified.
    Io(String),
    /// A document id was not found.
    NotFound(DocId),
    /// A logical block failed its integrity check; re-reading cannot help
    /// until the block is repaired (corruption is a property of the block,
    /// not the attempt).
    CorruptBlock {
        /// The corrupt logical block.
        block: u64,
    },
    /// A logical block read failed transiently (flaky I/O); a retry may
    /// succeed.
    TransientIo {
        /// The affected logical block.
        block: u64,
    },
}

impl StoreError {
    /// Whether retrying the failed operation can possibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::TransientIo { .. } | StoreError::Io(_))
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Json { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::NotFound(id) => write!(f, "document {id:?} not found"),
            StoreError::CorruptBlock { block } => {
                write!(f, "block {block} failed its integrity check")
            }
            StoreError::TransientIo { block } => {
                write!(f, "transient I/O failure reading block {block}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}
