//! The JSON-like document data model.

use std::collections::BTreeMap;

/// A dynamically-typed record value, mirroring JSON's data model with a
/// distinct integer type (timestamps and counts should not round-trip
/// through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (no decimal point or exponent in the source).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with sorted keys (deterministic serialization).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Human-readable type name (for error messages and schema discovery).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float; integers widen losslessly within ±2^53.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }

    /// Dotted-path lookup: `get_path("user.location.lat")`.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for part in path.split('.') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    /// Builds an object from key/value pairs.
    pub fn object<I: IntoIterator<Item = (String, Value)>>(pairs: I) -> Value {
        Value::Object(pairs.into_iter().collect())
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::object([
            ("name".into(), Value::from("storm")),
            ("year".into(), Value::from(2015i64)),
            ("score".into(), Value::from(9.5)),
            (
                "loc".into(),
                Value::object([
                    ("lat".into(), Value::from(40.76)),
                    ("lon".into(), Value::from(-111.89)),
                ]),
            ),
            (
                "tags".into(),
                Value::Array(vec![Value::from("db"), Value::from("spatial")]),
            ),
        ])
    }

    #[test]
    fn typed_accessors() {
        let v = sample();
        assert_eq!(v.get("name").unwrap().as_str(), Some("storm"));
        assert_eq!(v.get("year").unwrap().as_int(), Some(2015));
        assert_eq!(v.get("year").unwrap().as_float(), Some(2015.0));
        assert_eq!(v.get("score").unwrap().as_float(), Some(9.5));
        assert_eq!(v.get("score").unwrap().as_int(), None);
        assert!(v.get("missing").is_none());
        assert_eq!(v.get("tags").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn path_lookup() {
        let v = sample();
        assert_eq!(v.get_path("loc.lat").unwrap().as_float(), Some(40.76));
        assert!(v.get_path("loc.alt").is_none());
        assert!(v.get_path("name.x").is_none());
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::from(1i64).type_name(), "int");
        assert_eq!(Value::from(1.0).type_name(), "float");
        assert_eq!(Value::from("x").type_name(), "string");
        assert!(Value::Null.is_null());
    }
}
