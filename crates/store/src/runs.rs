//! Epoch-pinned run registry for the LSM-style ingest tier.
//!
//! An ingest index is a *delta* (mutable, recent) plus a stack of immutable
//! *runs*; the whole arrangement changes only at **epoch boundaries** when a
//! minor freeze or compaction publishes a new run-set. This module provides
//! the generic registry that makes those transitions atomic and crash-safe:
//!
//! * readers [`pin`](RunRegistry::pin) an `Arc` of the current state and keep
//!   a consistent view for as long as they hold it;
//! * writers build the replacement state **aside** inside
//!   [`publish`](RunRegistry::publish) and install it as the final act —
//!   a panic anywhere during the build leaves the old epoch fully intact
//!   (the vendored `parking_lot` guards release on unwind and carry no
//!   poisoning), so a torn run-set is unrepresentable;
//! * in-place appends to the current delta run under
//!   [`with_current`](RunRegistry::with_current), which holds the read lock
//!   *across* the append so an insert can never race a freeze into the void.
//!
//! The payload type `T` is supplied by the caller (`storm-core` instantiates
//! it with its delta-plus-frozen-runs epoch state); the registry itself only
//! knows about pinning and atomic replacement.

use std::sync::Arc;

use parking_lot::RwLock;

/// A pinned view of the registry: the epoch number plus the state `Arc`.
///
/// Cloning is cheap (an `Arc` bump); holding a `Pinned` does not block
/// writers — it merely keeps that epoch's state alive.
#[derive(Debug)]
pub struct Pinned<T> {
    /// Monotone epoch counter; bumps by one per published state.
    pub epoch: u64,
    /// The state published at that epoch.
    pub state: Arc<T>,
}

impl<T> Clone for Pinned<T> {
    fn clone(&self) -> Self {
        Pinned {
            epoch: self.epoch,
            state: Arc::clone(&self.state),
        }
    }
}

/// An atomically-replaceable, epoch-counted state cell.
///
/// See the [module docs](self) for the reader/writer protocol.
#[derive(Debug)]
pub struct RunRegistry<T> {
    inner: RwLock<Pinned<T>>,
}

impl<T> RunRegistry<T> {
    /// Creates a registry at epoch 0 holding `initial`.
    pub fn new(initial: T) -> Self {
        RunRegistry {
            inner: RwLock::new(Pinned {
                epoch: 0,
                state: Arc::new(initial),
            }),
        }
    }

    /// Pins the current epoch: returns the epoch number and state `Arc`.
    pub fn pin(&self) -> Pinned<T> {
        self.inner.read().clone()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// Runs `f` against the current state **while holding the read lock**,
    /// so a concurrent [`publish`](Self::publish) cannot slide the state out
    /// from under `f`. This is the insert path: appending to the current
    /// delta under this lock guarantees the item lands in a state some
    /// future freeze will drain, never in an orphaned one.
    pub fn with_current<R>(&self, f: impl FnOnce(&Pinned<T>) -> R) -> R {
        f(&self.inner.read())
    }

    /// Builds a replacement state from the current one and installs it,
    /// bumping the epoch. The build closure `f` runs under the write lock
    /// (readers and inserters are excluded for its duration) and all
    /// fallible work belongs inside it: if `f` panics, nothing is installed
    /// and the old epoch remains exactly as it was. Returns the newly
    /// published pin.
    pub fn publish(&self, f: impl FnOnce(&Pinned<T>) -> T) -> Pinned<T> {
        let mut guard = self.inner.write();
        // Build aside; only a successful return reaches the install below.
        let next = f(&guard);
        *guard = Pinned {
            epoch: guard.epoch + 1,
            state: Arc::new(next),
        };
        guard.clone()
    }

    /// Like [`publish`](Self::publish), but the build may abandon: on
    /// `None` nothing is installed, the epoch does not bump, and `None` is
    /// returned. This models a compaction that detects it has nothing to
    /// do (empty delta) or is told by a fault hook to silently drop its
    /// work mid-merge.
    pub fn try_publish(&self, f: impl FnOnce(&Pinned<T>) -> Option<T>) -> Option<Pinned<T>> {
        let mut guard = self.inner.write();
        // Build aside; only a successful return reaches the install below.
        let next = f(&guard)?;
        *guard = Pinned {
            epoch: guard.epoch + 1,
            state: Arc::new(next),
        };
        Some(guard.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_survives_publish() {
        let reg = RunRegistry::new(vec![1, 2, 3]);
        let old = reg.pin();
        assert_eq!(old.epoch, 0);
        let new = reg.publish(|cur| {
            let mut v = (*cur.state).clone();
            v.push(4);
            v
        });
        assert_eq!(new.epoch, 1);
        assert_eq!(*new.state, vec![1, 2, 3, 4]);
        // The pinned old epoch is untouched.
        assert_eq!(*old.state, vec![1, 2, 3]);
        assert_eq!(reg.epoch(), 1);
    }

    #[test]
    fn panic_during_publish_leaves_old_epoch_intact() {
        let reg = RunRegistry::new(7u32);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.publish(|_| panic!("mid-build crash"));
        }));
        assert!(r.is_err());
        // No torn state: epoch and payload are exactly pre-crash.
        let pin = reg.pin();
        assert_eq!(pin.epoch, 0);
        assert_eq!(*pin.state, 7);
        // And the registry is still usable (no lock poisoning).
        let next = reg.publish(|cur| *cur.state + 1);
        assert_eq!(next.epoch, 1);
        assert_eq!(*next.state, 8);
    }

    #[test]
    fn abandoned_try_publish_changes_nothing() {
        let reg = RunRegistry::new(5u32);
        assert!(reg.try_publish(|_| None).is_none());
        let pin = reg.pin();
        assert_eq!((pin.epoch, *pin.state), (0, 5));
    }

    #[test]
    fn with_current_sees_published_state() {
        let reg = RunRegistry::new(String::from("a"));
        reg.publish(|cur| format!("{}b", cur.state));
        reg.with_current(|pin| {
            assert_eq!(pin.epoch, 1);
            assert_eq!(*pin.state, "ab");
        });
    }

    #[test]
    fn concurrent_inserts_never_lost_across_publishes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // Payload: an append-only cell (Mutex<Vec>) representing a delta.
        type Delta = parking_lot::Mutex<Vec<u64>>;
        struct State {
            frozen: Vec<u64>,
            delta: Delta,
        }
        let reg = Arc::new(RunRegistry::new(State {
            frozen: Vec::new(),
            delta: Delta::default(),
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Read lock held across the append: cannot race publish.
                    reg.with_current(|pin| pin.state.delta.lock().push(i));
                    i += 1;
                }
                i
            })
        };
        // Concurrent "freezes": drain delta into frozen a few times.
        for _ in 0..50 {
            reg.publish(|cur| {
                let mut frozen = cur.state.frozen.clone();
                frozen.extend(cur.state.delta.lock().iter().copied());
                State {
                    frozen,
                    delta: Delta::default(),
                }
            });
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let wrote = match writer.join() {
            Ok(count) => count,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        // Final tally: everything written is in frozen+delta exactly once.
        let pin = reg.pin();
        let mut all = pin.state.frozen.clone();
        all.extend(pin.state.delta.lock().iter().copied());
        all.sort_unstable();
        assert_eq!(all.len(), wrote as usize, "lost or duplicated inserts");
        for (i, v) in all.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }
}
