//! Invariant validators for the document store, modeled on
//! `storm_rtree::validate`.
//!
//! The store feeds the samplers: the engine resolves sampled record ids
//! back to documents, and the paper's I/O accounting charges whole blocks.
//! Both silently break if the id → block bookkeeping drifts, so the checks
//! here pin it down: ids agree with their documents, no id reaches
//! `next_id`, and the per-block document counts sum back to the collection
//! length and respect the block capacity.

use std::collections::HashMap;

use crate::collection::Collection;
use crate::shard::Partitioner;

/// Checks every collection invariant:
///
/// * every map key equals its document's own id;
/// * every id is below `next_id` (ids are append-only, never recycled);
/// * per-block doc counts never exceed `docs_per_block`, and their sum
///   equals `len()`.
pub fn check_collection(c: &Collection) -> Result<(), String> {
    let mut per_block: HashMap<u64, usize> = HashMap::new();
    for (&key, doc) in &c.docs {
        if doc.id.0 != key {
            // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
            return Err(format!("doc stored under key {key} claims id {}", doc.id.0));
        }
        if key >= c.next_id {
            // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
            return Err(format!(
                "id {key} >= next_id {} (ids are append-only)",
                c.next_id
            ));
        }
        *per_block.entry(c.block_of(doc.id)).or_insert(0) += 1;
    }
    let mut total = 0usize;
    for (&block, &count) in &per_block {
        if count > c.docs_per_block {
            // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
            return Err(format!(
                "block {block} holds {count} docs, capacity {}",
                c.docs_per_block
            ));
        }
        total += count;
    }
    if total != c.len() {
        return Err(format!(
            "block doc counts sum to {total}, len() is {}",
            c.len()
        ));
    }
    Ok(())
}

/// Checks that a partitioner is a total function into `0..shards` over the
/// given sample of records — a shard index out of range would silently
/// drop records from every distributed estimate.
pub fn check_partitioner<P: Partitioner>(
    p: &P,
    sample: impl IntoIterator<Item = (u64, Option<storm_geo::Point2>)>,
) -> Result<(), String> {
    let shards = p.shards();
    if shards == 0 {
        return Err("partitioner reports zero shards".into());
    }
    for (id, location) in sample {
        let s = p.route(id, location);
        if s >= shards {
            return Err(format!("record {id} routed to shard {s} of {shards}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::DocId;

    #[test]
    fn live_collection_validates() {
        let mut c = Collection::with_block_size("t", 4);
        let ids: Vec<DocId> = (0..23).map(|i| c.insert(Value::Int(i))).collect();
        assert_eq!(check_collection(&c), Ok(()));
        for id in ids.iter().step_by(3) {
            c.remove(*id);
        }
        assert_eq!(check_collection(&c), Ok(()));
    }

    #[test]
    fn id_drift_is_caught() {
        let mut c = Collection::with_block_size("t", 4);
        c.insert(Value::Int(1));
        c.next_id = 0; // simulate id-counter rollback / corruption
        let err = check_collection(&c).expect_err("id >= next_id");
        assert!(err.contains("next_id"), "{err}");
    }
}
