//! Property tests for the store validators: arbitrary insert/remove/update
//! interleavings keep the block bookkeeping consistent, and partitioners
//! stay total over arbitrary records.

use proptest::prelude::*;
use storm_geo::{Point2, Rect2};
use storm_store::shard::{HashPartitioner, HilbertPartitioner};
use storm_store::validate::{check_collection, check_partitioner};
use storm_store::{Collection, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    /// Remove the `i % live`-th live id.
    Remove(usize),
    /// Update the `i % live`-th live id.
    Update(usize, i64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (-1_000i64..1_000).prop_map(Op::Insert),
            1 => (0usize..1024).prop_map(Op::Remove),
            1 => ((0usize..1024), -1_000i64..1_000).prop_map(|(i, v)| Op::Update(i, v)),
        ],
        0..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn collection_block_bookkeeping_survives_random_workloads(
        ops in ops_strategy(),
        block_size in 1usize..9,
    ) {
        let mut c = Collection::with_block_size("prop", block_size);
        let mut live = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(v) => live.push(c.insert(Value::Int(*v))),
                Op::Remove(i) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(i % live.len());
                        prop_assert!(c.remove(id).is_some());
                    }
                }
                Op::Update(i, v) => {
                    if !live.is_empty() {
                        let id = live[i % live.len()];
                        prop_assert!(c.update(id, Value::Int(*v)).is_ok());
                    }
                }
            }
            if let Err(e) = check_collection(&c) {
                return Err(TestCaseError::fail(format!("after {op:?}: {e}")));
            }
        }
        prop_assert_eq!(c.len(), live.len());
    }

    #[test]
    fn partitioners_are_total(
        records in prop::collection::vec((0u64..u64::MAX, 0.0..500.0f64, 0.0..500.0f64), 1..100),
        shards in 1usize..12,
    ) {
        let hash = HashPartitioner::new(shards);
        let sample: Vec<(u64, Option<Point2>)> = records
            .iter()
            .map(|&(id, x, y)| (id, Some(Point2::xy(x, y))))
            .collect();
        prop_assert_eq!(check_partitioner(&hash, sample.clone()), Ok(()));
        // Points may fall outside the declared bounds; routing must still
        // land in range (clamping, not dropping).
        let bounds = Rect2::from_corners(Point2::xy(100.0, 100.0), Point2::xy(300.0, 300.0));
        let hilbert = HilbertPartitioner::new(bounds, shards);
        prop_assert_eq!(check_partitioner(&hilbert, sample), Ok(()));
    }
}
