//! Property tests for the storage engine: JSON round-trips over arbitrary
//! values and collection semantics under arbitrary operation sequences.

use proptest::prelude::*;
use storm_store::{json, Collection, Value};

/// Arbitrary JSON-like values (bounded depth/size).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: JSON has no NaN/Inf (serializer maps them to
        // null by design, which would not round-trip).
        (-1e15f64..1e15).prop_map(Value::Float),
        "[ -~]{0,20}".prop_map(Value::from), // printable ASCII
        "\\PC{0,8}".prop_map(Value::from),   // arbitrary unicode, short
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::btree_map("[a-z_]{1,8}", inner, 0..6).prop_map(Value::Object),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_round_trip(v in value_strategy()) {
        let text = json::to_string(&v);
        let back = json::parse(&text).expect("serializer output must parse");
        prop_assert_eq!(&back, &v, "text was: {}", text);
        // Second round trip is byte-stable (canonical form).
        prop_assert_eq!(json::to_string(&back), text);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in "\\PC{0,64}") {
        let _ = json::parse(&text); // may Err, must not panic
    }

    #[test]
    fn parser_never_panics_on_json_like_noise(
        text in "[\\{\\}\\[\\],:\"0-9a-z \\.\\-+eE]{0,80}"
    ) {
        let _ = json::parse(&text);
    }

    #[test]
    fn collection_matches_a_model(
        ops in prop::collection::vec((0u8..3, any::<u16>()), 0..200)
    ) {
        let mut collection = Collection::new("model");
        let mut model: std::collections::HashMap<u64, i64> = Default::default();
        let mut ids: Vec<u64> = Vec::new();
        for (op, payload) in ops {
            match op {
                0 => {
                    let id = collection.insert(Value::object([(
                        "v".into(),
                        Value::Int(i64::from(payload)),
                    )]));
                    model.insert(id.0, i64::from(payload));
                    ids.push(id.0);
                }
                1 if !ids.is_empty() => {
                    let id = ids[payload as usize % ids.len()];
                    let existed = collection.remove(storm_store::DocId(id)).is_some();
                    prop_assert_eq!(existed, model.remove(&id).is_some());
                }
                _ if !ids.is_empty() => {
                    let id = ids[payload as usize % ids.len()];
                    let got = collection
                        .get(storm_store::DocId(id))
                        .and_then(|d| d.int("v"));
                    prop_assert_eq!(got, model.get(&id).copied());
                }
                _ => {}
            }
            prop_assert_eq!(collection.len(), model.len());
        }
        // Scan returns exactly the live set.
        let scanned: std::collections::HashMap<u64, i64> = collection
            .scan()
            .map(|d| (d.id.0, d.int("v").expect("all docs carry v")))
            .collect();
        prop_assert_eq!(scanned, model);
    }
}
