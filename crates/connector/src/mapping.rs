//! Field mapping: from arbitrary schemas to STORM's spatio-temporal shape.

use storm_geo::StPoint;
use storm_store::Value;

use crate::ConnectorError;

/// Declares which record fields carry the spatio-temporal schema.
///
/// STORM indexes `(x, y, t)`; everything else rides along as attributes
/// that estimators read by name. A mapping is what the import wizard in the
/// paper's "data import" demo component produces.
#[derive(Debug, Clone)]
pub struct FieldMapping {
    /// Field holding the x coordinate (longitude).
    pub x: String,
    /// Field holding the y coordinate (latitude).
    pub y: String,
    /// Field holding the integer timestamp; `None` for purely spatial data
    /// (timestamp defaults to 0).
    pub t: Option<String>,
    /// Whether records with missing/invalid coordinates are skipped
    /// (`true`) or reported as errors (`false`).
    pub skip_invalid: bool,
}

impl FieldMapping {
    /// A mapping with the given coordinate fields and optional time field.
    pub fn new(x: impl Into<String>, y: impl Into<String>, t: Option<&str>) -> Self {
        FieldMapping {
            x: x.into(),
            y: y.into(),
            t: t.map(str::to_owned),
            skip_invalid: false,
        }
    }

    /// Makes the import skip records with missing coordinates instead of
    /// failing.
    #[must_use]
    pub fn lenient(mut self) -> Self {
        self.skip_invalid = true;
        self
    }

    /// Extracts the spatio-temporal point from a record.
    ///
    /// Returns `Ok(None)` when the record lacks usable coordinates and the
    /// mapping is lenient.
    pub fn extract(
        &self,
        record: &Value,
        record_no: usize,
    ) -> Result<Option<StRecord>, ConnectorError> {
        let coord = |field: &str| -> Result<Option<f64>, ConnectorError> {
            match record.get_path(field).and_then(Value::as_float) {
                Some(v) if v.is_finite() => Ok(Some(v)),
                _ if self.skip_invalid => Ok(None),
                _ => Err(ConnectorError::MissingField {
                    record: record_no,
                    field: field.to_owned(),
                }),
            }
        };
        let Some(x) = coord(&self.x)? else {
            return Ok(None);
        };
        let Some(y) = coord(&self.y)? else {
            return Ok(None);
        };
        let t = match &self.t {
            None => 0,
            Some(field) => match record.get_path(field).and_then(Value::as_int) {
                Some(t) => t,
                None if self.skip_invalid => return Ok(None),
                None => {
                    return Err(ConnectorError::MissingField {
                        record: record_no,
                        field: field.clone(),
                    })
                }
            },
        };
        Ok(Some(StRecord {
            point: StPoint::new(x, y, t),
            body: record.clone(),
        }))
    }
}

/// A record after mapping: the indexable point plus the original body.
#[derive(Debug, Clone)]
pub struct StRecord {
    /// The spatio-temporal location to index.
    pub point: StPoint,
    /// The full record, for attribute lookups.
    pub body: Value,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet(lat: f64, lon: f64, t: i64) -> Value {
        Value::object([
            ("lat".into(), Value::Float(lat)),
            ("lon".into(), Value::Float(lon)),
            ("created_at".into(), Value::Int(t)),
            ("text".into(), Value::from("hello")),
        ])
    }

    #[test]
    fn extracts_mapped_fields() {
        let m = FieldMapping::new("lon", "lat", Some("created_at"));
        let r = m
            .extract(&tweet(40.7, -111.9, 1_390_000_000), 1)
            .unwrap()
            .unwrap();
        assert_eq!(r.point.xy.x(), -111.9);
        assert_eq!(r.point.xy.y(), 40.7);
        assert_eq!(r.point.t, 1_390_000_000);
        assert_eq!(r.body.get("text").unwrap().as_str(), Some("hello"));
    }

    #[test]
    fn nested_paths_work() {
        let m = FieldMapping::new("geo.lon", "geo.lat", None);
        let record = Value::object([(
            "geo".into(),
            Value::object([
                ("lat".into(), Value::Float(1.0)),
                ("lon".into(), Value::Float(2.0)),
            ]),
        )]);
        let r = m.extract(&record, 1).unwrap().unwrap();
        assert_eq!(r.point.xy.x(), 2.0);
        assert_eq!(r.point.t, 0);
    }

    #[test]
    fn strict_mapping_reports_missing_fields() {
        let m = FieldMapping::new("lon", "lat", Some("created_at"));
        let record = Value::object([("lat".into(), Value::Float(1.0))]);
        match m.extract(&record, 7) {
            Err(ConnectorError::MissingField { record, field }) => {
                assert_eq!(record, 7);
                assert_eq!(field, "lon");
            }
            other => panic!("expected MissingField, got {other:?}"),
        }
    }

    #[test]
    fn lenient_mapping_skips_bad_records() {
        let m = FieldMapping::new("lon", "lat", Some("created_at")).lenient();
        let record = Value::object([("lat".into(), Value::Float(1.0))]);
        assert!(m.extract(&record, 1).unwrap().is_none());
        // Non-finite coordinates are also skipped.
        let record = tweet(f64::NAN, 0.0, 1);
        let m2 = FieldMapping::new("lon", "lat", Some("created_at")).lenient();
        assert!(m2.extract(&record, 1).unwrap().is_none());
    }

    #[test]
    fn integer_coordinates_widen() {
        let m = FieldMapping::new("x", "y", None);
        let record = Value::object([("x".into(), Value::Int(3)), ("y".into(), Value::Int(4))]);
        let r = m.extract(&record, 1).unwrap().unwrap();
        assert_eq!(r.point.xy.x(), 3.0);
    }
}
