//! CSV/TSV data source (RFC-4180-style quoting).

use std::io::{BufRead, BufReader, Read};

use storm_store::Value;

use crate::{ConnectorError, DataSource};

/// Streams CSV (or TSV) rows as flat objects keyed by the header row.
///
/// Values are typed eagerly: integers, floats, booleans, and `null`/empty
/// become their typed [`Value`]s; everything else stays a string. STORM's
/// schema discovery then refines the types across records.
pub struct CsvSource<R: Read> {
    reader: BufReader<R>,
    delimiter: char,
    header: Option<Vec<String>>,
    line_no: usize,
}

impl<R: Read> CsvSource<R> {
    /// Creates a comma-separated source; the first row is the header.
    pub fn new(input: R) -> Self {
        CsvSource {
            reader: BufReader::new(input),
            delimiter: ',',
            header: None,
            line_no: 0,
        }
    }

    /// Creates a tab-separated source.
    pub fn tsv(input: R) -> Self {
        let mut s = Self::new(input);
        s.delimiter = '\t';
        s
    }

    /// Reads one raw line, `None` at EOF.
    fn read_line(&mut self) -> Option<Result<String, ConnectorError>> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Err(e) => return Some(Err(e.into())),
                Ok(0) => return None,
                Ok(_) => {
                    self.line_no += 1;
                    let trimmed = line.trim_end_matches(['\n', '\r']);
                    if trimmed.is_empty() {
                        continue;
                    }
                    return Some(Ok(trimmed.to_owned()));
                }
            }
        }
    }

    /// Splits a record line into fields, honouring quotes.
    fn split(&self, line: &str) -> Result<Vec<String>, ConnectorError> {
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut chars = line.chars().peekable();
        let mut in_quotes = false;
        while let Some(c) = chars.next() {
            if in_quotes {
                match c {
                    '"' => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    c => field.push(c),
                }
            } else if c == '"' {
                if field.is_empty() {
                    in_quotes = true;
                } else {
                    field.push(c); // interior quote in unquoted field
                }
            } else if c == self.delimiter {
                fields.push(std::mem::take(&mut field));
            } else {
                field.push(c);
            }
        }
        if in_quotes {
            return Err(ConnectorError::Parse {
                record: self.line_no,
                message: "unterminated quoted field".into(),
            });
        }
        fields.push(field);
        Ok(fields)
    }
}

/// Types a raw CSV cell.
fn type_cell(cell: &str) -> Value {
    let trimmed = cell.trim();
    if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("null") {
        return Value::Null;
    }
    if trimmed.eq_ignore_ascii_case("true") {
        return Value::Bool(true);
    }
    if trimmed.eq_ignore_ascii_case("false") {
        return Value::Bool(false);
    }
    if let Ok(i) = trimmed.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = trimmed.parse::<f64>() {
        if f.is_finite() {
            return Value::Float(f);
        }
    }
    Value::Str(cell.to_owned())
}

impl<R: Read> DataSource for CsvSource<R> {
    fn next_record(&mut self) -> Option<Result<Value, ConnectorError>> {
        if self.header.is_none() {
            match self.read_line()? {
                Err(e) => return Some(Err(e)),
                Ok(line) => match self.split(&line) {
                    Err(e) => return Some(Err(e)),
                    Ok(cols) => {
                        self.header = Some(cols.iter().map(|c| c.trim().to_owned()).collect());
                    }
                },
            }
        }
        let line = match self.read_line()? {
            Err(e) => return Some(Err(e)),
            Ok(line) => line,
        };
        let fields = match self.split(&line) {
            Err(e) => return Some(Err(e)),
            Ok(f) => f,
        };
        let header = self.header.as_ref().expect("header parsed above");
        if fields.len() != header.len() {
            return Some(Err(ConnectorError::Parse {
                record: self.line_no,
                message: format!("expected {} fields, found {}", header.len(), fields.len()),
            }));
        }
        let pairs = header
            .iter()
            .zip(fields)
            .map(|(k, v)| (k.clone(), type_cell(&v)));
        Some(Ok(Value::object(pairs)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(text: &str) -> CsvSource<&[u8]> {
        CsvSource::new(text.as_bytes())
    }

    #[test]
    fn parses_typed_rows() {
        let mut s = source("station,temp,active,note\nKSLC,21.5,true,ok\nKPVU,-3,false,\n");
        let rows = s.collect_records().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("station").unwrap().as_str(), Some("KSLC"));
        assert_eq!(rows[0].get("temp").unwrap().as_float(), Some(21.5));
        assert_eq!(rows[0].get("active").unwrap().as_bool(), Some(true));
        assert_eq!(rows[1].get("temp").unwrap().as_int(), Some(-3));
        assert!(rows[1].get("note").unwrap().is_null());
    }

    #[test]
    fn quoted_fields_with_delimiters_and_quotes() {
        let mut s = source("a,b\n\"x, y\",\"he said \"\"hi\"\"\"\n");
        let rows = s.collect_records().unwrap();
        assert_eq!(rows[0].get("a").unwrap().as_str(), Some("x, y"));
        assert_eq!(rows[0].get("b").unwrap().as_str(), Some("he said \"hi\""));
    }

    #[test]
    fn tsv_mode() {
        let mut s = CsvSource::tsv("a\tb\n1\ttwo\n".as_bytes());
        let rows = s.collect_records().unwrap();
        assert_eq!(rows[0].get("a").unwrap().as_int(), Some(1));
        assert_eq!(rows[0].get("b").unwrap().as_str(), Some("two"));
    }

    #[test]
    fn field_count_mismatch_is_an_error() {
        let mut s = source("a,b\n1\n");
        assert!(matches!(
            s.next_record(),
            Some(Err(ConnectorError::Parse { .. }))
        ));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let mut s = source("a\n\"oops\n");
        assert!(s.next_record().is_some_and(|r| r.is_err()));
    }

    #[test]
    fn blank_lines_and_crlf_are_tolerated() {
        let mut s = source("a,b\r\n\r\n1,2\r\n\n3,4\n");
        let rows = s.collect_records().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("a").unwrap().as_int(), Some(3));
    }

    #[test]
    fn empty_input_yields_no_records() {
        let mut s = source("");
        assert!(s.next_record().is_none());
        // Header only:
        let mut s = source("a,b\n");
        assert!(s.next_record().is_none());
    }
}
