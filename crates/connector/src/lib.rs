//! The STORM data connector.
//!
//! "To make it easy for users and different applications to enjoy the
//! benefit of spatio-temporal online analytics ... STORM also implements a
//! data connector, so that it can easily import data in different formats
//! and schemas" (paper §1). The connector has three layers:
//!
//! * [`DataSource`] — a uniform record-stream abstraction with
//!   implementations for CSV/TSV ([`csv::CsvSource`]) and JSON-lines
//!   ([`jsonl::JsonLinesSource`]); additional engines plug in by
//!   implementing the trait ("additional storage engines can be added by
//!   extending the code-base for the data connector", §3.2);
//! * [`schema`] — schema discovery: field-type inference over a sample of
//!   records;
//! * [`mapping`] — the declarative bridge from discovered fields to
//!   STORM's spatio-temporal schema (`x`, `y`, `t`, measures, text, user).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod jsonl;
pub mod mapping;
pub mod schema;

pub use csv::CsvSource;
pub use jsonl::JsonLinesSource;
pub use mapping::{FieldMapping, StRecord};
pub use schema::{FieldType, Schema};

use storm_store::Value;

/// Errors raised while importing external data.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnectorError {
    /// Input could not be read.
    Io(String),
    /// A record failed to parse.
    Parse {
        /// 1-based record (line) number.
        record: usize,
        /// Explanation.
        message: String,
    },
    /// The field mapping references a field the record lacks.
    MissingField {
        /// 1-based record number.
        record: usize,
        /// The missing field.
        field: String,
    },
}

impl std::fmt::Display for ConnectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectorError::Io(e) => write!(f, "I/O error: {e}"),
            ConnectorError::Parse { record, message } => {
                write!(f, "parse error in record {record}: {message}")
            }
            ConnectorError::MissingField { record, field } => {
                write!(f, "record {record} is missing mapped field '{field}'")
            }
        }
    }
}

impl std::error::Error for ConnectorError {}

impl From<std::io::Error> for ConnectorError {
    fn from(e: std::io::Error) -> Self {
        ConnectorError::Io(e.to_string())
    }
}

/// A source of records from some external storage engine.
///
/// Sources are consumed once, like an import cursor.
pub trait DataSource {
    /// Fetches the next record, or `None` at the end.
    fn next_record(&mut self) -> Option<Result<Value, ConnectorError>>;

    /// Collects every remaining record (convenience for small imports).
    fn collect_records(&mut self) -> Result<Vec<Value>, ConnectorError> {
        let mut out = Vec::new();
        while let Some(record) = self.next_record() {
            out.push(record?);
        }
        Ok(out)
    }
}
