//! JSON-lines data source.

use std::io::{BufRead, BufReader, Read};

use storm_store::{json, Value};

use crate::{ConnectorError, DataSource};

/// Streams one JSON object per line (the format MongoDB exports and the
/// native format of STORM's storage engine).
pub struct JsonLinesSource<R: Read> {
    reader: BufReader<R>,
    line_no: usize,
}

impl<R: Read> JsonLinesSource<R> {
    /// Creates a JSON-lines source.
    pub fn new(input: R) -> Self {
        JsonLinesSource {
            reader: BufReader::new(input),
            line_no: 0,
        }
    }
}

impl<R: Read> DataSource for JsonLinesSource<R> {
    fn next_record(&mut self) -> Option<Result<Value, ConnectorError>> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Err(e) => return Some(Err(e.into())),
                Ok(0) => return None,
                Ok(_) => {
                    self.line_no += 1;
                    if line.trim().is_empty() {
                        continue;
                    }
                    return Some(json::parse(line.trim()).map_err(|e| ConnectorError::Parse {
                        record: self.line_no,
                        message: e.to_string(),
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_objects() {
        let text = "{\"a\":1}\n{\"a\":2, \"b\":\"x\"}\n\n{\"a\":3}\n";
        let mut s = JsonLinesSource::new(text.as_bytes());
        let rows = s.collect_records().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "{\"ok\":true}\nnot json\n";
        let mut s = JsonLinesSource::new(text.as_bytes());
        assert!(s.next_record().unwrap().is_ok());
        match s.next_record().unwrap() {
            Err(ConnectorError::Parse { record, .. }) => assert_eq!(record, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input() {
        let mut s = JsonLinesSource::new("".as_bytes());
        assert!(s.next_record().is_none());
    }
}
