//! Schema discovery.
//!
//! "The data connector uses schema discovery and data parser for a number
//! of data sources ... in order to import and index a data source from a
//! specified storage engine" (paper §3.2). Discovery scans (a sample of)
//! the records, unions the observed types per field, and flags which
//! fields could serve as coordinates or timestamps.

use std::collections::BTreeMap;

use storm_store::Value;

/// The inferred type of one field, the least upper bound of everything
/// observed for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// Only booleans seen.
    Bool,
    /// Only integers seen.
    Int,
    /// Integers and/or floats seen.
    Float,
    /// Strings (or a mix that only strings can hold).
    String,
    /// Arrays.
    Array,
    /// Nested objects.
    Object,
    /// Only nulls seen.
    Null,
}

impl FieldType {
    /// Least upper bound of two observed types.
    fn join(self, other: FieldType) -> FieldType {
        use FieldType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Null, t) | (t, Null) => t,
            (Int, Float) | (Float, Int) => Float,
            _ => String,
        }
    }
}

/// Statistics about one discovered field.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Inferred type.
    pub ty: FieldType,
    /// In how many records the field appeared (non-null).
    pub present: usize,
    /// Minimum numeric value seen (for numeric fields).
    pub min: Option<f64>,
    /// Maximum numeric value seen.
    pub max: Option<f64>,
}

/// A discovered schema: field name → info.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    fields: BTreeMap<String, FieldInfo>,
    records: usize,
}

impl Schema {
    /// Discovers a schema from records (typically a prefix sample of the
    /// source).
    pub fn discover<'a, I: IntoIterator<Item = &'a Value>>(records: I) -> Schema {
        let mut schema = Schema::default();
        for record in records {
            schema.records += 1;
            if let Value::Object(map) = record {
                for (key, value) in map {
                    schema.observe(key, value);
                }
            }
        }
        schema
    }

    fn observe(&mut self, key: &str, value: &Value) {
        let ty = match value {
            Value::Null => FieldType::Null,
            Value::Bool(_) => FieldType::Bool,
            Value::Int(_) => FieldType::Int,
            Value::Float(_) => FieldType::Float,
            Value::Str(_) => FieldType::String,
            Value::Array(_) => FieldType::Array,
            Value::Object(_) => FieldType::Object,
        };
        let numeric = value.as_float();
        let entry = self.fields.entry(key.to_owned()).or_insert(FieldInfo {
            ty,
            present: 0,
            min: None,
            max: None,
        });
        entry.ty = entry.ty.join(ty);
        if !value.is_null() {
            entry.present += 1;
        }
        if let Some(x) = numeric {
            entry.min = Some(entry.min.map_or(x, |m| m.min(x)));
            entry.max = Some(entry.max.map_or(x, |m| m.max(x)));
        }
    }

    /// Number of records scanned.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Info for one field.
    pub fn field(&self, name: &str) -> Option<&FieldInfo> {
        self.fields.get(name)
    }

    /// All fields, sorted by name.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &FieldInfo)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Field names that look like geographic coordinates: numeric, present
    /// in most records, with a plausible lat/lon range.
    pub fn coordinate_candidates(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|(_, info)| {
                matches!(info.ty, FieldType::Int | FieldType::Float)
                    && info.present * 2 > self.records
                    && info.min.is_some_and(|m| m >= -180.0)
                    && info.max.is_some_and(|m| m <= 180.0)
            })
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Field names that look like epoch timestamps: integers, large and
    /// positive.
    pub fn timestamp_candidates(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|(_, info)| {
                info.ty == FieldType::Int && info.min.is_some_and(|m| m > 1_000_000.0)
            })
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pairs: Vec<(&str, Value)>) -> Value {
        Value::object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)))
    }

    #[test]
    fn infers_types_and_ranges() {
        let rows = vec![
            record(vec![
                ("lat", Value::Float(40.5)),
                ("n", Value::Int(3)),
                ("name", Value::from("a")),
            ]),
            record(vec![
                ("lat", Value::Float(41.5)),
                ("n", Value::Float(2.5)),
                ("name", Value::Null),
            ]),
        ];
        let s = Schema::discover(&rows);
        assert_eq!(s.records(), 2);
        assert_eq!(s.field("lat").unwrap().ty, FieldType::Float);
        assert_eq!(s.field("n").unwrap().ty, FieldType::Float); // Int ⊔ Float
        assert_eq!(s.field("name").unwrap().ty, FieldType::String); // String ⊔ Null
        assert_eq!(s.field("name").unwrap().present, 1);
        assert_eq!(s.field("lat").unwrap().min, Some(40.5));
        assert_eq!(s.field("lat").unwrap().max, Some(41.5));
    }

    #[test]
    fn incompatible_types_fall_back_to_string() {
        let rows = vec![
            record(vec![("x", Value::Int(1))]),
            record(vec![("x", Value::from("two"))]),
        ];
        let s = Schema::discover(&rows);
        assert_eq!(s.field("x").unwrap().ty, FieldType::String);
    }

    #[test]
    fn coordinate_and_timestamp_detection() {
        let rows: Vec<Value> = (0..10)
            .map(|i| {
                record(vec![
                    ("lat", Value::Float(40.0 + i as f64 * 0.1)),
                    ("lon", Value::Float(-111.0 - i as f64 * 0.1)),
                    ("created_at", Value::Int(1_390_000_000 + i)),
                    ("retweets", Value::Int(i)),
                    ("text", Value::from("hello")),
                ])
            })
            .collect();
        let s = Schema::discover(&rows);
        let coords = s.coordinate_candidates();
        assert!(coords.contains(&"lat") && coords.contains(&"lon"));
        assert!(!coords.contains(&"created_at"));
        assert_eq!(s.timestamp_candidates(), vec!["created_at"]);
    }
}
