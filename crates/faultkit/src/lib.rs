//! `storm-faultkit`: deterministic, seeded fault injection for the sharded
//! sampling pipeline, plus the recovery-policy and degraded-result types the
//! executor and engine share.
//!
//! STORM's contract (paper Definition 1) is that an estimate with a
//! confidence interval is trustworthy *at any termination point*. That
//! contract is easiest to break not in the happy path but when a shard is
//! slow, a worker dies, or a block read fails — so this crate makes those
//! regimes **replayable**: a [`FaultPlan`] is a pure function from
//! `(seed, site, shard, op)` to an optional fault, which means the exact
//! same schedule of delays, drops, panics, and I/O errors can be re-run
//! byte-for-byte and asserted against.
//!
//! Layering: this crate sits below `storm-store` and `storm-core` (both
//! inject faults through the [`FaultHook`] trait) and below `storm-engine`
//! (which surfaces [`DegradedInfo`] in progress ticks and query outcomes).
//! It depends on nothing, costs nothing when no hook is installed (one
//! `Option` branch per injection site), and contains no wall-clock or
//! ambient entropy — determinism is the whole point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// One injected fault, decided by a [`FaultHook`] at an injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The shard worker sleeps this many milliseconds before replying
    /// (a slow shard / network hiccup). Recoverable: the reply eventually
    /// arrives, or the coordinator's retry replays it.
    DelayReplyMs(u64),
    /// The shard worker serves the request but never sends the reply
    /// (a lost message). Recoverable via retry: the worker caches the
    /// batch and replays it when the coordinator asks again.
    DropReply,
    /// The shard worker panics mid-request (a crashed task). The worker
    /// loop contains the unwind; the current stream is lost but the
    /// shard's tree survives for subsequent queries.
    WorkerPanic,
    /// A storage block read returns corrupt data (checksum failure).
    /// Not retryable — the block is bad until repaired.
    CorruptBlock,
    /// A storage block read fails transiently (flaky I/O). Retryable:
    /// the next attempt consults the schedule again.
    TransientIo,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::DelayReplyMs(ms) => write!(f, "delay-reply({ms}ms)"),
            FaultKind::DropReply => f.write_str("drop-reply"),
            FaultKind::WorkerPanic => f.write_str("worker-panic"),
            FaultKind::CorruptBlock => f.write_str("corrupt-block"),
            FaultKind::TransientIo => f.write_str("transient-io"),
        }
    }
}

/// Where in the pipeline a fault decision is being made. Each site sees a
/// disjoint slice of the schedule, so e.g. block-read faults never perturb
/// the shard-reply fault sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A shard worker opening a sampling stream (count phase).
    Open,
    /// A shard worker serving one `Fill` request.
    Fill,
    /// The storage engine reading one document block.
    BlockRead,
    /// The ingest tier building a new run-set (minor freeze or compaction).
    /// `op` is the merge step index inside one build, so a hook can crash
    /// the build at an exact seeded step. The vocabulary is
    /// [`FaultKind::WorkerPanic`] (unwind mid-merge; the old epoch must
    /// survive intact) and [`FaultKind::DropReply`] (the build is silently
    /// abandoned without publishing — a crash without an unwind).
    Compaction,
}

/// The injection interface: every fault-capable call site asks its hook
/// (when one is installed) whether operation `op` at `site` on `shard`
/// should fault. Implementations must be pure per `(site, shard, op)` —
/// that purity is what makes fault runs replayable.
pub trait FaultHook: Send + Sync + std::fmt::Debug {
    /// The fault (if any) for operation `op` at `site` on `shard`.
    fn fault(&self, site: FaultSite, shard: usize, op: u64) -> Option<FaultKind>;
}

/// A seeded, rate-based fault schedule — the standard [`FaultHook`].
///
/// Every decision is `mix64(seed, site, shard, op)` reduced to a
/// per-mille draw and compared against the configured rates, so a plan is
/// fully determined by its seed and rates: replaying a run with the same
/// plan injects the identical fault sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-mille probability that a shard reply is delayed.
    pub delay_permille: u16,
    /// The injected delay, in milliseconds.
    pub delay_ms: u64,
    /// Per-mille probability that a shard reply is dropped.
    pub drop_permille: u16,
    /// Per-mille probability that a shard worker panics serving a request.
    pub panic_permille: u16,
    /// Per-mille probability that a block read returns corrupt data.
    pub corrupt_permille: u16,
    /// Per-mille probability that a block read fails transiently.
    pub transient_permille: u16,
}

impl FaultPlan {
    /// A quiet plan (no faults) with the given seed. Compose with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_permille: 0,
            delay_ms: 0,
            drop_permille: 0,
            panic_permille: 0,
            corrupt_permille: 0,
            transient_permille: 0,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds delayed shard replies: `permille`/1000 of replies sleep
    /// `delay_ms` before sending.
    pub fn with_delays(mut self, permille: u16, delay_ms: u64) -> Self {
        self.delay_permille = permille.min(1000);
        self.delay_ms = delay_ms;
        self
    }

    /// Adds dropped shard replies (served but never sent).
    pub fn with_drops(mut self, permille: u16) -> Self {
        self.drop_permille = permille.min(1000);
        self
    }

    /// Adds worker panics while serving shard requests.
    pub fn with_panics(mut self, permille: u16) -> Self {
        self.panic_permille = permille.min(1000);
        self
    }

    /// Adds corrupt (non-retryable) block reads in the store.
    pub fn with_block_corruption(mut self, permille: u16) -> Self {
        self.corrupt_permille = permille.min(1000);
        self
    }

    /// Adds transient (retryable) block-read I/O errors in the store.
    pub fn with_transient_io(mut self, permille: u16) -> Self {
        self.transient_permille = permille.min(1000);
        self
    }

    /// True when every rate is zero — the plan can never fault.
    pub fn is_quiet(&self) -> bool {
        self.delay_permille == 0
            && self.drop_permille == 0
            && self.panic_permille == 0
            && self.corrupt_permille == 0
            && self.transient_permille == 0
    }

    /// The per-mille draw for one decision: a pure function of the plan
    /// seed and the decision coordinates.
    fn draw(&self, site: FaultSite, shard: usize, op: u64) -> u64 {
        let site_tag = match site {
            FaultSite::Open => 0x4F50_454E,
            FaultSite::Fill => 0x4649_4C4C,
            FaultSite::BlockRead => 0x424C_4F43,
            FaultSite::Compaction => 0x434F_4D50,
        };
        let x =
            mix64(self.seed ^ mix64(site_tag ^ mix64((shard as u64) << 32 | (op & 0xFFFF_FFFF))));
        x % 1000
    }
}

impl FaultHook for FaultPlan {
    fn fault(&self, site: FaultSite, shard: usize, op: u64) -> Option<FaultKind> {
        let roll = self.draw(site, shard, op);
        // Each site owns a disjoint fault vocabulary; within a site the
        // rates stack cumulatively over the same per-mille roll.
        let mut bar = 0u64;
        let mut hit = |permille: u16, kind: FaultKind| -> Option<FaultKind> {
            bar += u64::from(permille);
            (roll < bar).then_some(kind)
        };
        match site {
            FaultSite::Open | FaultSite::Fill => hit(self.panic_permille, FaultKind::WorkerPanic)
                .or_else(|| hit(self.drop_permille, FaultKind::DropReply))
                .or_else(|| hit(self.delay_permille, FaultKind::DelayReplyMs(self.delay_ms))),
            FaultSite::BlockRead => hit(self.corrupt_permille, FaultKind::CorruptBlock)
                .or_else(|| hit(self.transient_permille, FaultKind::TransientIo)),
            FaultSite::Compaction => hit(self.panic_permille, FaultKind::WorkerPanic)
                .or_else(|| hit(self.drop_permille, FaultKind::DropReply)),
        }
    }
}

/// A surgical [`FaultHook`]: faults exactly once, at one exact
/// `(site, shard, op)` coordinate, and is quiet everywhere else. This is
/// the crash-matrix primitive — a proptest can sweep `op` over every merge
/// step of a compaction and assert the invariant at each crash point,
/// something a rate-based [`FaultPlan`] cannot pin down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepFault {
    /// The site to fault at.
    pub site: FaultSite,
    /// The shard coordinate to match.
    pub shard: usize,
    /// The exact operation/step index to fault at.
    pub op: u64,
    /// What to inject there.
    pub kind: FaultKind,
}

impl StepFault {
    /// A hook that injects `kind` at step `op` of any shard-0 compaction.
    pub fn at_compaction_step(op: u64, kind: FaultKind) -> Self {
        StepFault {
            site: FaultSite::Compaction,
            shard: 0,
            op,
            kind,
        }
    }
}

impl FaultHook for StepFault {
    fn fault(&self, site: FaultSite, shard: usize, op: u64) -> Option<FaultKind> {
        (site == self.site && shard == self.shard && op == self.op).then_some(self.kind)
    }
}

/// Timeout / retry / backoff parameters for the parallel executor's
/// scatter-gather recovery loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt before a shard is declared dead.
    pub max_retries: u32,
    /// Base per-attempt reply timeout, in milliseconds.
    pub timeout_ms: u64,
    /// Timeout multiplier per retry (exponential backoff).
    pub backoff: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            timeout_ms: 200,
            backoff: 2,
        }
    }
}

impl RetryPolicy {
    /// The reply timeout for attempt `attempt` (0-based): base × backoff^attempt.
    pub fn timeout_for(&self, attempt: u32) -> Duration {
        let mult = u64::from(self.backoff).saturating_pow(attempt);
        Duration::from_millis(self.timeout_ms.saturating_mul(mult.max(1)))
    }

    /// Total attempts (first try + retries).
    pub fn attempts(&self) -> u32 {
        self.max_retries + 1
    }
}

/// Why a shard was written out of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The shard never answered the stream-open (count) request.
    OpenFailed,
    /// Every fill attempt timed out (slow or silent shard).
    Timeout,
    /// The worker's channels disconnected (thread gone).
    Disconnected,
    /// The worker reported its stream aborted (contained panic).
    Aborted,
    /// The shard delivered fewer samples than its declared count.
    UnderDelivered,
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailReason::OpenFailed => "open-failed",
            FailReason::Timeout => "timeout",
            FailReason::Disconnected => "disconnected",
            FailReason::Aborted => "aborted",
            FailReason::UnderDelivered => "under-delivered",
        };
        f.write_str(s)
    }
}

/// One shard written out of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFailure {
    /// The shard index.
    pub shard: usize,
    /// Why it was declared dead for this query.
    pub reason: FailReason,
    /// Result-set mass (unemitted count) lost with it.
    pub lost: u64,
}

/// Degraded-query accounting: which shards died, why, and how much of the
/// declared result set became unreachable. The estimator layer widens its
/// confidence interval by [`DegradedInfo::missing_fraction`]; the session
/// layer surfaces the whole struct to the user.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedInfo {
    /// Per-shard failures, in the order they were declared.
    pub failures: Vec<ShardFailure>,
    /// The query's initial declared result size `q` across all shards.
    pub initial_total: u64,
}

impl DegradedInfo {
    /// A fresh record for a query with declared result size `initial_total`.
    pub fn new(initial_total: u64) -> Self {
        DegradedInfo {
            failures: Vec::new(),
            initial_total,
        }
    }

    /// Records one shard failure.
    pub fn record(&mut self, shard: usize, reason: FailReason, lost: u64) {
        self.failures.push(ShardFailure {
            shard,
            reason,
            lost,
        });
    }

    /// True once any shard has been written off.
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Total result-set mass lost to dead shards.
    pub fn lost_mass(&self) -> u64 {
        self.failures.iter().map(|f| f.lost).sum()
    }

    /// The dead shard indices, in declaration order.
    pub fn dead_shards(&self) -> Vec<usize> {
        self.failures.iter().map(|f| f.shard).collect()
    }

    /// The missing-mass bound `φ = lost / q`: the fraction of the declared
    /// result set that became unobservable. Zero for a clean query.
    pub fn missing_fraction(&self) -> f64 {
        if self.initial_total == 0 {
            return 0.0;
        }
        (self.lost_mass() as f64 / self.initial_total as f64).clamp(0.0, 1.0)
    }

    /// A compact human-readable reason string, e.g.
    /// `"shard 2: timeout; shard 5: aborted"`.
    pub fn reason(&self) -> String {
        self.failures
            .iter()
            .map(|f| format!("shard {}: {}", f.shard, f.reason))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

impl std::fmt::Display for DegradedInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degraded: {{dead_shards: {:?}, reason: \"{}\", missing: {:.4}}}",
            self.dead_shards(),
            self.reason(),
            self.missing_fraction()
        )
    }
}

/// SplitMix64 finaliser — the same mix the samplers use for deterministic
/// id hashing, duplicated here so the crate stays dependency-free.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_per_coordinates() {
        let plan = FaultPlan::seeded(42)
            .with_delays(100, 5)
            .with_drops(100)
            .with_panics(50);
        for shard in 0..8 {
            for op in 0..200 {
                let a = plan.fault(FaultSite::Fill, shard, op);
                let b = plan.fault(FaultSite::Fill, shard, op);
                assert_eq!(a, b, "impure decision at shard {shard} op {op}");
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::seeded(1).with_drops(500);
        let b = FaultPlan::seeded(2).with_drops(500);
        let seq = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..64).map(|op| p.fault(FaultSite::Fill, 0, op)).collect()
        };
        assert_ne!(seq(&a), seq(&b));
    }

    #[test]
    fn quiet_plan_never_faults() {
        let plan = FaultPlan::seeded(7);
        assert!(plan.is_quiet());
        for op in 0..1000 {
            assert_eq!(plan.fault(FaultSite::Fill, 3, op), None);
            assert_eq!(plan.fault(FaultSite::BlockRead, 0, op), None);
        }
    }

    #[test]
    fn rates_are_roughly_calibrated() {
        // 10% drop rate over 10k ops lands near 1000 hits.
        let plan = FaultPlan::seeded(9).with_drops(100);
        let hits = (0..10_000u64)
            .filter(|&op| plan.fault(FaultSite::Fill, 0, op).is_some())
            .count();
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn sites_are_independent_domains() {
        // A block-read plan never perturbs the fill site and vice versa.
        let plan = FaultPlan::seeded(11).with_block_corruption(500);
        for op in 0..500 {
            assert_eq!(plan.fault(FaultSite::Fill, 0, op), None);
        }
        let hits = (0..500u64)
            .filter(|&op| plan.fault(FaultSite::BlockRead, 0, op).is_some())
            .count();
        assert!(hits > 150);
    }

    #[test]
    fn site_faults_use_their_vocabulary() {
        let plan = FaultPlan::seeded(3)
            .with_delays(400, 7)
            .with_drops(300)
            .with_panics(300)
            .with_block_corruption(500)
            .with_transient_io(500);
        for op in 0..200 {
            match plan.fault(FaultSite::Fill, 1, op) {
                Some(
                    FaultKind::DelayReplyMs(7) | FaultKind::DropReply | FaultKind::WorkerPanic,
                )
                | None => {}
                other => panic!("wrong fill fault: {other:?}"),
            }
            match plan.fault(FaultSite::BlockRead, 1, op) {
                Some(FaultKind::CorruptBlock | FaultKind::TransientIo) | None => {}
                other => panic!("wrong block fault: {other:?}"),
            }
        }
    }

    #[test]
    fn step_fault_hits_exactly_one_coordinate() {
        let hook = StepFault::at_compaction_step(3, FaultKind::WorkerPanic);
        for shard in 0..4 {
            for op in 0..16 {
                let got = hook.fault(FaultSite::Compaction, shard, op);
                if shard == 0 && op == 3 {
                    assert_eq!(got, Some(FaultKind::WorkerPanic));
                } else {
                    assert_eq!(got, None, "spurious fault at shard {shard} op {op}");
                }
            }
        }
        // Other sites never trigger it, even at the matching coordinate.
        assert_eq!(hook.fault(FaultSite::Fill, 0, 3), None);
    }

    #[test]
    fn compaction_site_uses_panic_drop_vocabulary() {
        let plan = FaultPlan::seeded(13)
            .with_panics(400)
            .with_drops(400)
            .with_delays(200, 9)
            .with_block_corruption(500);
        for op in 0..300 {
            match plan.fault(FaultSite::Compaction, 0, op) {
                Some(FaultKind::WorkerPanic | FaultKind::DropReply) | None => {}
                other => panic!("wrong compaction fault: {other:?}"),
            }
        }
        // And it is an independent schedule domain from Fill.
        let comp: Vec<_> = (0..300u64)
            .map(|op| plan.fault(FaultSite::Compaction, 0, op))
            .collect();
        let fill: Vec<_> = (0..300u64)
            .map(|op| plan.fault(FaultSite::Fill, 0, op))
            .collect();
        assert_ne!(comp, fill);
    }

    #[test]
    fn retry_policy_backoff_doubles() {
        let p = RetryPolicy {
            max_retries: 3,
            timeout_ms: 50,
            backoff: 2,
        };
        assert_eq!(p.timeout_for(0), Duration::from_millis(50));
        assert_eq!(p.timeout_for(1), Duration::from_millis(100));
        assert_eq!(p.timeout_for(2), Duration::from_millis(200));
        assert_eq!(p.attempts(), 4);
    }

    #[test]
    fn degraded_info_accounting() {
        let mut d = DegradedInfo::new(1000);
        assert!(!d.is_degraded());
        assert_eq!(d.missing_fraction(), 0.0);
        d.record(2, FailReason::Timeout, 250);
        d.record(5, FailReason::Aborted, 250);
        assert!(d.is_degraded());
        assert_eq!(d.dead_shards(), vec![2, 5]);
        assert_eq!(d.lost_mass(), 500);
        assert!((d.missing_fraction() - 0.5).abs() < 1e-12);
        let s = d.to_string();
        assert!(s.contains("dead_shards: [2, 5]"), "{s}");
        assert!(s.contains("timeout") && s.contains("aborted"), "{s}");
    }

    #[test]
    fn empty_result_set_has_zero_missing_fraction() {
        let d = DegradedInfo::new(0);
        assert_eq!(d.missing_fraction(), 0.0);
    }
}
