//! Bulk loading: Sort-Tile-Recursive and Hilbert packing.

use storm_geo::curve::{default_bits, hilbert_key};

use storm_geo::{Point, Rect};

use crate::node::{Entries, Item, Node, NodeId, NIL};
use crate::tree::{BulkMethod, RTree};

impl<const D: usize> RTree<D> {
    /// Fills an empty tree from `items` using the chosen packing order.
    ///
    /// # Panics
    /// Panics if the tree is not empty.
    pub(crate) fn bulk_fill(&mut self, mut items: Vec<Item<D>>, method: BulkMethod) {
        assert!(self.is_empty(), "bulk_fill requires an empty tree");
        if items.is_empty() {
            return;
        }
        self.len = items.len();
        match method {
            BulkMethod::Str => str_order(&mut items, 0, self.cfg.max_entries),
            BulkMethod::Hilbert => curve_order(&mut items, CurveKind::Hilbert),
            BulkMethod::ZOrder => curve_order(&mut items, CurveKind::ZOrder),
        }

        // Pack leaves: consecutive runs of up to B points.
        let cap = self.cfg.max_entries;
        let mut level_ids: Vec<u32> = Vec::with_capacity(items.len().div_ceil(cap));
        for chunk in items.chunks(cap) {
            // storm-analyzer: allow(A4): bulk-load construction — one leaf Vec per block, O(n) once per build, never per draw
            level_ids.push(self.alloc(Node::new_leaf(chunk.to_vec())));
        }

        // Pack upper levels until a single root remains; the packing order
        // keeps spatially coherent leaves under common parents.
        let mut level = 0u32;
        while level_ids.len() > 1 {
            level += 1;
            // storm-analyzer: allow(A4): bulk-load construction — per-level packing buffers, O(n log n) once per build
            let mut next: Vec<u32> = Vec::with_capacity(level_ids.len().div_ceil(cap));
            // storm-analyzer: allow(A4): bulk-load construction — per-level packing buffers, O(n log n) once per build
            let groups: Vec<Vec<u32>> = level_ids.chunks(cap).map(<[u32]>::to_vec).collect();
            for group in groups {
                // storm-analyzer: allow(A4): bulk-load construction — one child list per inner node, once per build
                let children: Vec<NodeId> = group.iter().map(|&c| NodeId(c)).collect();
                let id = self.alloc(Node {
                    rect: Rect::from_point(Point::origin()),
                    count: 0,
                    level,
                    parent: NIL,
                    entries: Entries::Inner(children),
                    free: false,
                });
                for &c in &group {
                    self.node_mut(c).parent = id;
                }
                self.refresh(id);
                next.push(id);
            }
            level_ids = next;
        }
        self.root = level_ids[0];
    }
}

/// Reorders `items` Sort-Tile-Recursive style: sort along the current axis,
/// cut into slabs sized so the final `B`-chunks tile space, recurse on the
/// remaining axes inside each slab.
fn str_order<const D: usize>(items: &mut [Item<D>], dim: usize, cap: usize) {
    let n = items.len();
    if n <= cap {
        return;
    }
    items.sort_unstable_by(|a, b| a.point.get(dim).total_cmp(&b.point.get(dim)));
    if dim + 1 == D {
        return;
    }
    let leaves = n.div_ceil(cap);
    let remaining_dims = (D - dim) as f64;
    let slabs = (leaves as f64).powf(1.0 / remaining_dims).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        str_order(&mut items[start..end], dim + 1, cap);
        start = end;
    }
}

/// Reorders `items` along the Hilbert curve — the exact ordering
/// `BulkMethod::Hilbert` packs leaves with, shared with the frozen
/// arena builder so both layouts agree on item order.
pub fn hilbert_sort<const D: usize>(items: &mut [Item<D>]) {
    curve_order(items, CurveKind::Hilbert);
}

#[derive(Clone, Copy)]
enum CurveKind {
    Hilbert,
    ZOrder,
}

/// Reorders `items` along a `D`-dimensional space-filling curve over the
/// data's bounding box.
fn curve_order<const D: usize>(items: &mut [Item<D>], kind: CurveKind) {
    let bits = default_bits(D);
    let side = (1u64 << bits) as f64;
    let mut lo = [f64::INFINITY; D];
    let mut hi = [f64::NEG_INFINITY; D];
    for item in items.iter() {
        for axis in 0..D {
            let c = item.point.get(axis);
            lo[axis] = lo[axis].min(c);
            hi[axis] = hi[axis].max(c);
        }
    }
    items.sort_by_cached_key(|item| {
        let mut cell = [0u32; D];
        for axis in 0..D {
            let (l, h) = (lo[axis], hi[axis]);
            cell[axis] = if h > l {
                let t = ((item.point.get(axis) - l) / (h - l)).clamp(0.0, 1.0);
                // storm-lint: allow(R5): cell < side = 2^bits and default_bits() <= 31
                ((t * side) as u64).min(side as u64 - 1) as u32
            } else {
                0
            };
        }
        match kind {
            CurveKind::Hilbert => hilbert_key(cell, bits),
            CurveKind::ZOrder => morton_key(&cell, bits),
        }
    });
}

/// Interleaves the low `bits` of each coordinate, most significant first.
fn morton_key<const D: usize>(cell: &[u32; D], bits: u32) -> u64 {
    let mut key = 0u64;
    for j in (0..bits).rev() {
        for c in cell.iter().take(D) {
            key = (key << 1) | u64::from((c >> j) & 1);
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use crate::validate;
    use storm_geo::{Point2, Point3};

    fn random_items(n: usize, seed: u64) -> Vec<Item<2>> {
        // Small xorshift so the test has no RNG dependency surprises.
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Item::new(Point2::xy(next() * 1000.0, next() * 1000.0), i as u64))
            .collect()
    }

    #[test]
    fn str_tree_is_valid_and_complete() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000, 4096] {
            let t = RTree::bulk_load(
                random_items(n, 42),
                RTreeConfig::with_fanout(8),
                BulkMethod::Str,
            );
            assert_eq!(t.len(), n);
            validate::check(&t).unwrap();
        }
    }

    #[test]
    fn hilbert_tree_is_valid_and_complete() {
        for n in [0usize, 1, 8, 65, 1000] {
            let t = RTree::bulk_load(
                random_items(n, 7),
                RTreeConfig::with_fanout(8),
                BulkMethod::Hilbert,
            );
            assert_eq!(t.len(), n);
            validate::check(&t).unwrap();
        }
    }

    #[test]
    fn zorder_tree_is_valid_and_complete() {
        for n in [0usize, 1, 8, 65, 1000] {
            let t = RTree::bulk_load(
                random_items(n, 3),
                RTreeConfig::with_fanout(8),
                BulkMethod::ZOrder,
            );
            assert_eq!(t.len(), n);
            validate::check(&t).unwrap();
        }
        // Query correctness matches a reference scan.
        let items = random_items(2000, 11);
        let t = RTree::bulk_load(
            items.clone(),
            RTreeConfig::with_fanout(16),
            BulkMethod::ZOrder,
        );
        let q = storm_geo::Rect2::from_corners(Point2::xy(100.0, 100.0), Point2::xy(600.0, 500.0));
        let expected = items
            .iter()
            .filter(|it| q.contains_point(&it.point))
            .count();
        assert_eq!(t.query(&q).len(), expected);
    }

    #[test]
    fn bulk_load_3d_points() {
        let items: Vec<Item<3>> = (0..500)
            .map(|i| {
                Item::new(
                    Point3::xyz((i % 10) as f64, ((i / 10) % 10) as f64, (i / 100) as f64),
                    i as u64,
                )
            })
            .collect();
        for method in [BulkMethod::Str, BulkMethod::Hilbert] {
            let t = RTree::bulk_load(items.clone(), RTreeConfig::with_fanout(16), method);
            assert_eq!(t.len(), 500);
            validate::check(&t).unwrap();
        }
    }

    #[test]
    fn hilbert_packing_gives_small_leaf_rects() {
        // Locality sanity check: with Hilbert ordering, the average leaf
        // bounding-box area should be far below a random partition's.
        let items = random_items(4096, 99);
        let t = RTree::bulk_load(items, RTreeConfig::with_fanout(32), BulkMethod::Hilbert);
        let mut leaf_area = 0.0;
        let mut leaves = 0usize;
        let mut stack = vec![t.root_id().unwrap()];
        while let Some(id) = stack.pop() {
            let v = t.view_free_of_charge(id);
            if v.is_leaf() {
                leaf_area += v.rect.area();
                leaves += 1;
            } else {
                stack.extend(v.children());
            }
        }
        let avg = leaf_area / leaves as f64;
        // Total domain is 1000x1000 = 1e6; 128 leaves of perfect tiling
        // would average ~7.8e3. Allow generous slack.
        assert!(
            avg < 1e5,
            "avg leaf area {avg} too large — packing is broken"
        );
    }

    #[test]
    fn duplicate_points_survive_bulk_load() {
        let items: Vec<Item<2>> = (0..100)
            .map(|i| Item::new(Point2::xy(1.0, 1.0), i as u64))
            .collect();
        let t = RTree::bulk_load(items, RTreeConfig::with_fanout(8), BulkMethod::Str);
        assert_eq!(t.len(), 100);
        assert_eq!(
            t.count_in(&storm_geo::Rect2::from_point(Point2::xy(1.0, 1.0))),
            100
        );
    }
}
