//! Structural invariant checking (used heavily by tests and property tests).

use crate::node::{Entries, NIL};
use crate::tree::RTree;

/// Checks every structural invariant of the tree:
///
/// * parent/child links are consistent;
/// * levels decrease by exactly one per edge and leaves sit at level 0;
/// * every node's rectangle tightly bounds its children;
/// * every node's `count` equals the number of points beneath it;
/// * fanout respects `max_entries` (root may hold fewer than the minimum);
/// * the total count equals `len()` and no freed slot is reachable.
///
/// Returns a description of the first violation found.
pub fn check<const D: usize>(tree: &RTree<D>) -> Result<(), String> {
    if tree.root == NIL {
        return if tree.is_empty() {
            Ok(())
        } else {
            Err(format!("empty root but len = {}", tree.len()))
        };
    }
    let root = tree.root;
    if tree.nodes[root as usize].parent != NIL {
        return Err("root has a parent".into());
    }
    let total = check_node(tree, root)?;
    if total != tree.len() {
        return Err(format!("reachable points {} != len {}", total, tree.len()));
    }
    Ok(())
}

fn check_node<const D: usize>(tree: &RTree<D>, idx: u32) -> Result<usize, String> {
    let node = &tree.nodes[idx as usize];
    if node.free {
        return Err(format!("node {idx} is on the free list but reachable"));
    }
    let fanout = node.fanout();
    if fanout == 0 {
        return Err(format!("node {idx} is empty"));
    }
    if fanout > tree.cfg.max_entries {
        return Err(format!(
            "node {idx} overflows: {fanout} > {}",
            tree.cfg.max_entries
        ));
    }
    match &node.entries {
        Entries::Leaf(items) => {
            if node.level != 0 {
                return Err(format!("leaf {idx} at level {}", node.level));
            }
            for item in items {
                if !node.rect.contains_point(&item.point) {
                    // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                    return Err(format!("leaf {idx} rect does not cover item {}", item.id));
                }
            }
            if node.count != items.len() {
                return Err(format!(
                    "leaf {idx} count {} != items {}",
                    node.count,
                    items.len()
                ));
            }
            Ok(items.len())
        }
        Entries::Inner(children) => {
            let mut total = 0usize;
            for &c in children {
                let child = &tree.nodes[c.0 as usize];
                if child.parent != idx {
                    // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                    return Err(format!(
                        "child {} of {idx} has parent {}",
                        c.0, child.parent
                    ));
                }
                if child.level + 1 != node.level {
                    // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                    return Err(format!(
                        "child {} level {} under node {idx} level {}",
                        c.0, child.level, node.level
                    ));
                }
                if !node.rect.contains_rect(&child.rect) {
                    // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                    return Err(format!("node {idx} rect does not cover child {}", c.0));
                }
                total += check_node(tree, c.0)?;
            }
            if node.count != total {
                return Err(format!(
                    "node {idx} count {} != subtree total {total}",
                    node.count
                ));
            }
            Ok(total)
        }
    }
}
