//! Arena nodes.

use storm_geo::{Point, Rect};

/// A record stored in the tree: a location plus an opaque record id.
///
/// Payload attributes (the `e.x` of the paper's estimators) live in the
/// storage engine and are looked up by `id`; keeping the tree entry at two
/// words plus the point keeps nodes block-sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item<const D: usize> {
    /// The indexed location.
    pub point: Point<D>,
    /// Opaque record identifier (unique per data set).
    pub id: u64,
}

impl<const D: usize> Item<D> {
    /// Creates an item.
    pub const fn new(point: Point<D>, id: u64) -> Self {
        Item { point, id }
    }
}

/// Opaque handle to a tree node. Valid only for the tree that produced it
/// and only until the next structural update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

pub(crate) const NIL: u32 = u32::MAX;

/// Node contents: leaf items or child node ids.
#[derive(Debug, Clone)]
pub(crate) enum Entries<const D: usize> {
    Leaf(Vec<Item<D>>),
    Inner(Vec<NodeId>),
}

#[derive(Debug, Clone)]
pub(crate) struct Node<const D: usize> {
    pub rect: Rect<D>,
    /// `|P(u)|` — number of data points under this subtree (Table 1 of the
    /// paper; the weight used by RandomPath and the RS-tree).
    pub count: usize,
    /// Distance from the leaf level (leaves are level 0).
    pub level: u32,
    pub parent: u32,
    pub entries: Entries<D>,
    /// True when the slot is on the free list.
    pub free: bool,
}

impl<const D: usize> Node<D> {
    pub fn new_leaf(items: Vec<Item<D>>) -> Self {
        let rect = bounding_of_items(&items);
        Node {
            rect,
            count: items.len(),
            level: 0,
            parent: NIL,
            entries: Entries::Leaf(items),
            free: false,
        }
    }

    pub fn fanout(&self) -> usize {
        match &self.entries {
            Entries::Leaf(v) => v.len(),
            Entries::Inner(v) => v.len(),
        }
    }
}

/// Bounding rect of a set of items; a degenerate rect at the origin for an
/// empty set (never exposed: empty nodes are only transient during splits).
pub(crate) fn bounding_of_items<const D: usize>(items: &[Item<D>]) -> Rect<D> {
    let mut it = items.iter();
    match it.next() {
        None => Rect::from_point(Point::origin()),
        Some(first) => {
            let mut r = Rect::from_point(first.point);
            for item in it {
                r = r.enlarged_to_point(&item.point);
            }
            r
        }
    }
}
