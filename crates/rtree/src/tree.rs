//! The `RTree` type: construction, queries, and node access for samplers.

use std::sync::Arc;

use storm_geo::{Point, Rect};

use crate::io::IoStats;
use crate::node::{Entries, Item, Node, NodeId, NIL};

/// Tuning parameters for an [`RTree`].
#[derive(Debug, Clone, Copy)]
pub struct RTreeConfig {
    /// Maximum entries per node — the block size `B` of the paper's cost
    /// model. A node is one simulated disk block.
    pub max_entries: usize,
    /// Minimum fill fraction enforced after splits and deletions
    /// (`min_entries = max(2, max_entries * min_fill)`).
    pub min_fill: f64,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            max_entries: 64,
            min_fill: 0.4,
        }
    }
}

impl RTreeConfig {
    /// Creates a config with the given fanout and the default fill factor.
    pub fn with_fanout(max_entries: usize) -> Self {
        RTreeConfig {
            max_entries,
            ..Default::default()
        }
    }

    /// Minimum entries per non-root node.
    pub fn min_entries(&self) -> usize {
        ((self.max_entries as f64 * self.min_fill) as usize).max(2)
    }

    fn validated(self) -> Self {
        assert!(
            self.max_entries >= 4,
            "R-tree fanout must be at least 4, got {}",
            self.max_entries
        );
        assert!(
            (0.0..=0.5).contains(&self.min_fill),
            "min_fill must be in [0, 0.5], got {}",
            self.min_fill
        );
        self
    }
}

/// Which bulk-loading algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkMethod {
    /// Sort-Tile-Recursive packing.
    Str,
    /// Hilbert-curve packing (the paper's RS-tree substrate).
    Hilbert,
    /// Z-order (Morton) packing — cheaper keys, weaker locality; kept for
    /// the curve ablation benchmark.
    ZOrder,
}

/// A dynamic R-tree over `D`-dimensional points with per-node subtree
/// counts and simulated I/O accounting.
#[derive(Debug)]
pub struct RTree<const D: usize> {
    pub(crate) nodes: Vec<Node<D>>,
    pub(crate) free_list: Vec<u32>,
    pub(crate) root: u32,
    pub(crate) len: usize,
    pub(crate) cfg: RTreeConfig,
    pub(crate) io: Arc<IoStats>,
}

/// A read-only view of one node, obtained via [`RTree::visit`].
///
/// Constructing the view records one simulated block read, so samplers that
/// traverse the tree through `visit` are charged exactly like the query
/// engine itself.
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a, const D: usize> {
    /// Bounding rectangle of the subtree.
    pub rect: Rect<D>,
    /// `|P(u)|`, number of data points below this node.
    pub count: usize,
    /// Level above the leaves (0 = leaf).
    pub level: u32,
    children: Option<&'a [NodeId]>,
    items: Option<&'a [Item<D>]>,
}

impl<'a, const D: usize> NodeView<'a, D> {
    /// Child node ids (empty for leaves).
    pub fn children(&self) -> &'a [NodeId] {
        self.children.unwrap_or(&[])
    }

    /// Leaf items (empty for inner nodes).
    pub fn items(&self) -> &'a [Item<D>] {
        self.items.unwrap_or(&[])
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.items.is_some()
    }
}

impl<const D: usize> RTree<D> {
    /// Creates an empty tree with the given configuration.
    pub fn new(cfg: RTreeConfig) -> Self {
        Self::with_io(cfg, IoStats::shared())
    }

    /// Creates an empty tree sharing an existing I/O counter (used by the
    /// LS-tree so the whole forest reports aggregate cost).
    pub fn with_io(cfg: RTreeConfig, io: Arc<IoStats>) -> Self {
        RTree {
            nodes: Vec::new(),
            free_list: Vec::new(),
            root: NIL,
            len: 0,
            cfg: cfg.validated(),
            io,
        }
    }

    /// Bulk loads a tree from items.
    pub fn bulk_load(items: Vec<Item<D>>, cfg: RTreeConfig, method: BulkMethod) -> Self {
        Self::bulk_load_with_io(items, cfg, method, IoStats::shared())
    }

    /// Bulk loads a tree sharing an existing I/O counter.
    pub fn bulk_load_with_io(
        items: Vec<Item<D>>,
        cfg: RTreeConfig,
        method: BulkMethod,
        io: Arc<IoStats>,
    ) -> Self {
        let mut tree = Self::with_io(cfg, io);
        tree.bulk_fill(items, method);
        tree
    }

    /// Number of data points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (0 for an empty tree, 1 for a single leaf root).
    pub fn height(&self) -> u32 {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].level + 1
        }
    }

    /// The tree's configuration.
    pub fn config(&self) -> RTreeConfig {
        self.cfg
    }

    /// Bounding rectangle of all stored points, or `None` when empty.
    pub fn bounds(&self) -> Option<Rect<D>> {
        (self.root != NIL).then(|| self.nodes[self.root as usize].rect)
    }

    /// The root node id, or `None` when empty.
    pub fn root_id(&self) -> Option<NodeId> {
        (self.root != NIL).then_some(NodeId(self.root))
    }

    /// The simulated-I/O counter.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// A clone of the shared I/O counter handle.
    pub fn io_handle(&self) -> Arc<IoStats> {
        Arc::clone(&self.io)
    }

    /// True when `id` refers to a currently allocated node. Sample layers
    /// use this to discard references that a structural update freed.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.nodes.get(id.0 as usize).is_some_and(|node| !node.free)
    }

    /// Reads a node, recording one simulated block read.
    ///
    /// # Panics
    /// Panics if `id` is stale (points at a freed slot) or out of range.
    pub fn visit(&self, id: NodeId) -> NodeView<'_, D> {
        self.io.record_reads(1);
        self.view_free_of_charge(id)
    }

    /// Reads a node *without* charging an I/O. Intended for planners that
    /// consult cached statistics (counts are assumed to be cached in RAM,
    /// as STORM's query optimizer does) — not for data traversal.
    pub fn view_free_of_charge(&self, id: NodeId) -> NodeView<'_, D> {
        let node = self.node(id.0);
        let (children, items) = match &node.entries {
            Entries::Leaf(v) => (None, Some(v.as_slice())),
            Entries::Inner(v) => (Some(v.as_slice()), None),
        };
        NodeView {
            rect: node.rect,
            count: node.count,
            level: node.level,
            children,
            items,
        }
    }

    /// Reports all items inside `query` (the `RangeReport` baseline).
    pub fn query(&self, query: &Rect<D>) -> Vec<Item<D>> {
        let mut out = Vec::new();
        self.for_each_in(query, |item| out.push(*item));
        out
    }

    /// Visits every item inside `query`.
    pub fn for_each_in<F: FnMut(&Item<D>)>(&self, query: &Rect<D>, mut f: F) {
        if self.root == NIL {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            self.io.record_reads(1);
            let node = self.node(idx);
            match &node.entries {
                Entries::Leaf(items) => {
                    for item in items {
                        if query.contains_point(&item.point) {
                            f(item);
                        }
                    }
                }
                Entries::Inner(children) => {
                    for &child in children {
                        if query.intersects(&self.node(child.0).rect) {
                            stack.push(child.0);
                        }
                    }
                }
            }
        }
    }

    /// Counts items inside `query` using subtree counts: fully-contained
    /// subtrees contribute `|P(u)|` without being descended, so the cost is
    /// `O(r(N))` rather than `O(q)`.
    pub fn count_in(&self, query: &Rect<D>) -> usize {
        if self.root == NIL {
            return 0;
        }
        let mut total = 0usize;
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            self.io.record_reads(1);
            let node = self.node(idx);
            match &node.entries {
                Entries::Leaf(items) => {
                    total += items
                        .iter()
                        .filter(|it| query.contains_point(&it.point))
                        .count();
                }
                Entries::Inner(children) => {
                    for &child in children {
                        let c = self.node(child.0);
                        if query.contains_rect(&c.rect) {
                            total += c.count;
                        } else if query.intersects(&c.rect) {
                            stack.push(child.0);
                        }
                    }
                }
            }
        }
        total
    }

    /// Visits every stored item (no I/O charge; used for ground truth and
    /// tests).
    pub fn for_each<F: FnMut(&Item<D>)>(&self, mut f: F) {
        if self.root == NIL {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.node(idx).entries {
                Entries::Leaf(items) => items.iter().for_each(&mut f),
                Entries::Inner(children) => stack.extend(children.iter().map(|c| c.0)),
            }
        }
    }

    /// Collects every stored item into a vector.
    pub fn items(&self) -> Vec<Item<D>> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|it| out.push(*it));
        out
    }

    // ---- internal arena helpers -------------------------------------------------

    pub(crate) fn node(&self, idx: u32) -> &Node<D> {
        let node = &self.nodes[idx as usize];
        assert!(!node.free, "stale NodeId {idx}");
        node
    }

    pub(crate) fn node_mut(&mut self, idx: u32) -> &mut Node<D> {
        let node = &mut self.nodes[idx as usize];
        assert!(!node.free, "stale NodeId {idx}");
        node
    }

    pub(crate) fn alloc(&mut self, node: Node<D>) -> u32 {
        self.io.record_writes(1);
        if let Some(idx) = self.free_list.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("too many R-tree nodes");
            self.nodes.push(node);
            idx
        }
    }

    pub(crate) fn dealloc(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        debug_assert!(!node.free);
        node.free = true;
        node.entries = Entries::Inner(Vec::new());
        self.free_list.push(idx);
    }

    /// Recomputes `rect` and `count` of `idx` from its entries.
    pub(crate) fn refresh(&mut self, idx: u32) {
        let (rect, count) = match &self.node(idx).entries {
            Entries::Leaf(items) => (crate::node::bounding_of_items(items), items.len()),
            Entries::Inner(children) => {
                let mut rect: Option<Rect<D>> = None;
                let mut count = 0usize;
                for &c in children {
                    let child = self.node(c.0);
                    count += child.count;
                    rect = Some(match rect {
                        None => child.rect,
                        Some(r) => r.union(&child.rect),
                    });
                }
                (
                    rect.unwrap_or_else(|| Rect::from_point(Point::origin())),
                    count,
                )
            }
        };
        let node = self.node_mut(idx);
        node.rect = rect;
        node.count = count;
        self.io.record_writes(1);
    }

    /// Refreshes `idx` and all of its ancestors.
    pub(crate) fn refresh_upward(&mut self, mut idx: u32) {
        loop {
            self.refresh(idx);
            let parent = self.node(idx).parent;
            if parent == NIL {
                break;
            }
            idx = parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_geo::{Point2, Rect2};

    fn pts(n: usize) -> Vec<Item<2>> {
        // Deterministic pseudo-grid.
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = (i / 100) as f64;
                Item::new(Point2::xy(x, y), i as u64)
            })
            .collect()
    }

    #[test]
    fn empty_tree_basics() {
        let t: RTree<2> = RTree::new(RTreeConfig::default());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.bounds().is_none());
        assert!(t.root_id().is_none());
        assert!(t.query(&Rect2::everything()).is_empty());
        assert_eq!(t.count_in(&Rect2::everything()), 0);
    }

    #[test]
    fn config_validation_rejects_tiny_fanout() {
        let result = std::panic::catch_unwind(|| {
            RTree::<2>::new(RTreeConfig {
                max_entries: 2,
                min_fill: 0.4,
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn query_and_count_agree_after_bulk_load() {
        let items = pts(1000);
        for method in [BulkMethod::Str, BulkMethod::Hilbert] {
            let t = RTree::bulk_load(items.clone(), RTreeConfig::with_fanout(8), method);
            assert_eq!(t.len(), 1000);
            let q = Rect2::from_corners(Point2::xy(10.0, 2.0), Point2::xy(30.0, 7.0));
            let reported = t.query(&q);
            let expected: Vec<_> = items
                .iter()
                .filter(|it| q.contains_point(&it.point))
                .collect();
            assert_eq!(reported.len(), expected.len());
            assert_eq!(t.count_in(&q), expected.len());
            crate::validate::check(&t).unwrap();
        }
    }

    #[test]
    fn count_in_is_cheaper_than_query() {
        let items = pts(10_000);
        let t = RTree::bulk_load(items, RTreeConfig::with_fanout(16), BulkMethod::Str);
        let q = Rect2::from_corners(Point2::xy(5.0, 5.0), Point2::xy(95.0, 95.0));
        t.io().reset();
        let _ = t.query(&q);
        let query_io = t.io().reads();
        t.io().reset();
        let _ = t.count_in(&q);
        let count_io = t.io().reads();
        assert!(
            count_io < query_io / 2,
            "count_in ({count_io}) should be far cheaper than query ({query_io})"
        );
    }

    #[test]
    fn visit_records_reads() {
        let t = RTree::bulk_load(pts(100), RTreeConfig::with_fanout(8), BulkMethod::Str);
        t.io().reset();
        let root = t.root_id().unwrap();
        let v = t.visit(root);
        assert_eq!(t.io().reads(), 1);
        assert_eq!(v.count, 100);
        let _ = t.view_free_of_charge(root);
        assert_eq!(t.io().reads(), 1);
    }

    #[test]
    fn items_round_trip() {
        let items = pts(500);
        let t = RTree::bulk_load(
            items.clone(),
            RTreeConfig::with_fanout(8),
            BulkMethod::Hilbert,
        );
        let mut got = t.items();
        got.sort_by_key(|it| it.id);
        assert_eq!(got.len(), items.len());
        for (a, b) in got.iter().zip(items.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.point, b.point);
        }
    }
}
