//! Canonical sets — the `R_Q` of the paper (Table 1).

use storm_geo::Rect;

use crate::node::{Entries, Item, NodeId, NIL};
use crate::tree::RTree;

/// One piece of the canonical decomposition of `P ∩ Q`.
#[derive(Debug, Clone, Copy)]
pub enum CanonicalPart<const D: usize> {
    /// A maximal node whose subtree lies entirely inside the query; it
    /// contributes `count` points without being opened.
    Node {
        /// The node id.
        id: NodeId,
        /// `|P(u)|` for that node.
        count: usize,
    },
    /// A single qualifying point from a partially-overlapping leaf.
    Item(Item<D>),
}

impl<const D: usize> CanonicalPart<D> {
    /// Number of data points this part stands for.
    pub fn count(&self) -> usize {
        match self {
            CanonicalPart::Node { count, .. } => *count,
            CanonicalPart::Item(_) => 1,
        }
    }
}

/// The canonical set `R_Q`: a partition of `P ∩ Q` into `O(r(N))` disjoint
/// pieces — whole subtrees plus boundary points. The RS-tree samples
/// proportionally to the piece counts.
#[derive(Debug, Clone, Default)]
pub struct CanonicalSet<const D: usize> {
    /// The disjoint pieces.
    pub parts: Vec<CanonicalPart<D>>,
    /// Exact `q = |P ∩ Q|`, the sum of the part counts.
    pub total: usize,
}

impl<const D: usize> CanonicalSet<D> {
    /// True when the query matches no points.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of pieces.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// The largest piece count (used by acceptance/rejection sampling).
    pub fn max_count(&self) -> usize {
        self.parts
            .iter()
            .map(CanonicalPart::count)
            .max()
            .unwrap_or(0)
    }
}

impl<const D: usize> RTree<D> {
    /// Computes the canonical set of `query`.
    ///
    /// Visits `O(r(N))` nodes: fully-contained children become
    /// [`CanonicalPart::Node`] without descent; partially-cut paths are
    /// followed down to leaves whose qualifying items become
    /// [`CanonicalPart::Item`]s.
    pub fn canonical_set(&self, query: &Rect<D>) -> CanonicalSet<D> {
        let mut set = CanonicalSet::default();
        if self.root == NIL {
            return set;
        }
        // The root itself may be fully contained.
        if query.contains_rect(&self.node(self.root).rect) {
            self.io.record_reads(1);
            let count = self.node(self.root).count;
            set.parts.push(CanonicalPart::Node {
                id: NodeId(self.root),
                count,
            });
            set.total = count;
            return set;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            self.io.record_reads(1);
            match &self.node(idx).entries {
                Entries::Leaf(items) => {
                    for item in items {
                        if query.contains_point(&item.point) {
                            set.parts.push(CanonicalPart::Item(*item));
                            set.total += 1;
                        }
                    }
                }
                Entries::Inner(children) => {
                    for &c in children {
                        let child = self.node(c.0);
                        if query.contains_rect(&child.rect) {
                            set.parts.push(CanonicalPart::Node {
                                id: c,
                                count: child.count,
                            });
                            set.total += child.count;
                        } else if query.intersects(&child.rect) {
                            stack.push(c.0);
                        }
                    }
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{BulkMethod, RTreeConfig};
    use storm_geo::{Point2, Rect2};

    fn grid(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect()
    }

    #[test]
    fn canonical_total_equals_exact_count() {
        let t = RTree::bulk_load(grid(5000), RTreeConfig::with_fanout(8), BulkMethod::Hilbert);
        for q in [
            Rect2::from_corners(Point2::xy(3.0, 3.0), Point2::xy(61.5, 40.2)),
            Rect2::from_corners(Point2::xy(-5.0, -5.0), Point2::xy(200.0, 200.0)),
            Rect2::from_corners(Point2::xy(500.0, 500.0), Point2::xy(600.0, 600.0)),
            Rect2::from_point(Point2::xy(10.0, 10.0)),
        ] {
            let set = t.canonical_set(&q);
            assert_eq!(set.total, t.query(&q).len(), "query {q}");
            assert_eq!(
                set.total,
                set.parts.iter().map(CanonicalPart::count).sum::<usize>()
            );
        }
    }

    #[test]
    fn fully_covering_query_returns_single_root_part() {
        let t = RTree::bulk_load(grid(1000), RTreeConfig::with_fanout(8), BulkMethod::Str);
        let set = t.canonical_set(&Rect2::everything());
        assert_eq!(set.len(), 1);
        assert_eq!(set.total, 1000);
        assert!(matches!(
            set.parts[0],
            CanonicalPart::Node { count: 1000, .. }
        ));
    }

    #[test]
    fn canonical_parts_are_disjoint_and_complete() {
        let t = RTree::bulk_load(grid(2000), RTreeConfig::with_fanout(8), BulkMethod::Str);
        let q = Rect2::from_corners(Point2::xy(10.0, 2.0), Point2::xy(80.0, 15.0));
        let set = t.canonical_set(&q);
        let mut ids = Vec::new();
        for part in &set.parts {
            match part {
                CanonicalPart::Item(item) => ids.push(item.id),
                CanonicalPart::Node { id, count } => {
                    // Expand the subtree.
                    let mut stack = vec![*id];
                    let mut found = 0usize;
                    while let Some(nid) = stack.pop() {
                        let v = t.view_free_of_charge(nid);
                        if v.is_leaf() {
                            for it in v.items() {
                                assert!(q.contains_point(&it.point));
                                ids.push(it.id);
                                found += 1;
                            }
                        } else {
                            stack.extend(v.children());
                        }
                    }
                    assert_eq!(found, *count);
                }
            }
        }
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "canonical parts overlap");
        let mut expected: Vec<u64> = t.query(&q).iter().map(|it| it.id).collect();
        expected.sort_unstable();
        assert_eq!(ids, expected);
    }

    #[test]
    fn canonical_is_cheap_relative_to_reporting() {
        let t = RTree::bulk_load(
            grid(100_000),
            RTreeConfig::with_fanout(32),
            BulkMethod::Hilbert,
        );
        let q = Rect2::from_corners(Point2::xy(5.0, 5.0), Point2::xy(95.0, 900.0));
        t.io().reset();
        let _ = t.query(&q);
        let report_io = t.io().reads();
        t.io().reset();
        let set = t.canonical_set(&q);
        let canon_io = t.io().reads();
        assert!(set.total > 0);
        assert!(
            canon_io <= report_io,
            "canonical ({canon_io}) should not exceed full reporting ({report_io})"
        );
    }

    #[test]
    fn empty_query_yields_empty_set() {
        let t = RTree::bulk_load(grid(100), RTreeConfig::with_fanout(8), BulkMethod::Str);
        let set = t.canonical_set(&Rect2::from_corners(
            Point2::xy(1000.0, 1000.0),
            Point2::xy(1001.0, 1001.0),
        ));
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.max_count(), 0);
    }
}
