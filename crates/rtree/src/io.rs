//! Simulated block-I/O accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts logical block accesses.
///
/// The paper's cost analysis is phrased in I/Os: e.g. RandomPath needs
/// `Ω(k)` I/Os because every sample walks a fresh root-to-leaf path, while
/// the LS-tree's range reports cost `O(k/B)` I/Os. On real hardware those
/// differences come from the disk; here every *node visit* is counted as one
/// logical block read (a node holds up to `B` entries, i.e. one block), so
/// experiments can report the exact quantity the analysis talks about.
///
/// `IoStats` is internally atomic and can be shared (via [`IoStats::shared`])
/// across the many R-trees of an LS-forest so their costs aggregate.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl IoStats {
    /// Creates a fresh, zeroed counter.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Creates a shareable, zeroed counter.
    pub fn shared() -> Arc<Self> {
        Arc::new(IoStats::new())
    }

    /// Records `n` block reads.
    #[inline]
    pub fn record_reads(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` block writes.
    #[inline]
    pub fn record_writes(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Total block reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total block writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Reads + writes.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let io = IoStats::new();
        io.record_reads(3);
        io.record_writes(2);
        io.record_reads(1);
        assert_eq!(io.reads(), 4);
        assert_eq!(io.writes(), 2);
        assert_eq!(io.total(), 6);
        io.reset();
        assert_eq!(io.total(), 0);
    }

    #[test]
    fn shared_counter_aggregates() {
        let io = IoStats::shared();
        let a = Arc::clone(&io);
        let b = Arc::clone(&io);
        a.record_reads(5);
        b.record_reads(7);
        assert_eq!(io.reads(), 12);
    }
}
