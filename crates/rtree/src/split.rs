//! Guttman's quadratic node split.

use storm_geo::Rect;

/// Splits `entries` into two groups using the quadratic-cost heuristic from
/// Guttman's original R-tree paper: pick the pair of entries that would
/// waste the most area if grouped together as seeds, then assign the rest
/// greedily by enlargement preference, honouring the `min` fill bound.
pub(crate) fn quadratic_split<T, const D: usize>(
    mut entries: Vec<T>,
    rect_of: impl Fn(&T) -> Rect<D>,
    min: usize,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(entries.len() >= 2 * min.max(1));

    // Seed selection: maximise dead space.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        let ri = rect_of(&entries[i]);
        for (j, entry) in entries.iter().enumerate().skip(i + 1) {
            let rj = rect_of(entry);
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    // Remove seeds (larger index first so the smaller stays valid).
    let second = entries.swap_remove(seed_b.max(seed_a));
    let first = entries.swap_remove(seed_b.min(seed_a));
    let mut rect_a = rect_of(&first);
    let mut rect_b = rect_of(&second);
    let mut group_a = vec![first];
    let mut group_b = vec![second];

    while let Some(next) = pick_next(&entries, &rect_a, &rect_b, &rect_of) {
        // If one group needs every remaining entry to reach `min`, dump.
        let remaining = entries.len();
        if group_a.len() + remaining <= min {
            for e in entries.drain(..) {
                rect_a = rect_a.union(&rect_of(&e));
                group_a.push(e);
            }
            break;
        }
        if group_b.len() + remaining <= min {
            for e in entries.drain(..) {
                rect_b = rect_b.union(&rect_of(&e));
                group_b.push(e);
            }
            break;
        }

        let entry = entries.swap_remove(next);
        let r = rect_of(&entry);
        let grow_a = rect_a.enlargement(&r);
        let grow_b = rect_b.enlargement(&r);
        let to_a = match grow_a.partial_cmp(&grow_b) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => match rect_a.area().partial_cmp(&rect_b.area()) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => group_a.len() <= group_b.len(),
            },
        };
        if to_a {
            rect_a = rect_a.union(&r);
            group_a.push(entry);
        } else {
            rect_b = rect_b.union(&r);
            group_b.push(entry);
        }
    }
    (group_a, group_b)
}

/// Index of the entry with the strongest preference for one group, per
/// Guttman's `PickNext`.
fn pick_next<T, const D: usize>(
    entries: &[T],
    rect_a: &Rect<D>,
    rect_b: &Rect<D>,
    rect_of: &impl Fn(&T) -> Rect<D>,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, e) in entries.iter().enumerate() {
        let r = rect_of(e);
        let diff = (rect_a.enlargement(&r) - rect_b.enlargement(&r)).abs();
        if best.is_none_or(|(_, d)| diff > d) {
            best = Some((i, diff));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_geo::{Point2, Rect2};

    fn rects(points: &[(f64, f64)]) -> Vec<Rect2> {
        points
            .iter()
            .map(|&(x, y)| Rect2::from_point(Point2::xy(x, y)))
            .collect()
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two well-separated clusters should land in different groups.
        let entries = rects(&[
            (0.0, 0.0),
            (1.0, 0.5),
            (0.5, 1.0),
            (100.0, 100.0),
            (101.0, 100.5),
            (100.5, 101.0),
        ]);
        let (a, b) = quadratic_split(entries, |r| *r, 2);
        assert_eq!(a.len() + b.len(), 6);
        let near = |r: &Rect2| r.lo().x() < 50.0;
        assert!(
            a.iter().all(near) != b.iter().all(near) || a.iter().all(near) || b.iter().all(near)
        );
        // All members of each group are from the same cluster.
        assert!(a.iter().all(near) || a.iter().all(|r| !near(r)));
        assert!(b.iter().all(near) || b.iter().all(|r| !near(r)));
    }

    #[test]
    fn split_honours_min_fill() {
        for n in [4usize, 5, 9, 16] {
            let entries: Vec<Rect2> = (0..n)
                .map(|i| Rect2::from_point(Point2::xy(i as f64, (i * 7 % 5) as f64)))
                .collect();
            let min = 2;
            let (a, b) = quadratic_split(entries, |r| *r, min);
            assert_eq!(a.len() + b.len(), n);
            assert!(a.len() >= min, "group a has {} < {min}", a.len());
            assert!(b.len() >= min, "group b has {} < {min}", b.len());
        }
    }

    #[test]
    fn split_handles_identical_entries() {
        let entries = rects(&[(1.0, 1.0); 8]);
        let (a, b) = quadratic_split(entries, |r| *r, 3);
        assert_eq!(a.len() + b.len(), 8);
        assert!(a.len() >= 3 && b.len() >= 3);
    }
}
