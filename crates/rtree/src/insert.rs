//! Dynamic insertion (Guttman `Insert` + `ChooseLeaf` + quadratic split).

use storm_geo::{Point, Rect};

use crate::events::{UpdateEvent, UpdateObserver};
use crate::node::{Entries, Item, Node, NodeId, NIL};
use crate::split::quadratic_split;
use crate::tree::RTree;

impl<const D: usize> RTree<D> {
    /// Inserts one item, maintaining rectangles and subtree counts along the
    /// insertion path (the counts are what keep the samplers correct after
    /// ad-hoc updates, paper §3.1).
    pub fn insert(&mut self, item: Item<D>) {
        self.insert_with(item, &mut |_| {});
    }

    /// Like [`RTree::insert`], reporting every structural effect to `obs`
    /// so sample layers (the RS-tree) can maintain their per-node buffers.
    pub fn insert_with(&mut self, item: Item<D>, obs: &mut UpdateObserver<'_>) {
        self.insert_impl(item, obs);
        self.len += 1;
    }

    /// Insertion without touching `len` — shared with the delete path's
    /// orphan re-insertion.
    pub(crate) fn insert_impl(&mut self, item: Item<D>, obs: &mut UpdateObserver<'_>) {
        if self.root == NIL {
            self.root = self.alloc(Node::new_leaf(vec![item]));
            obs(UpdateEvent::Gained(NodeId(self.root)));
            return;
        }
        let leaf = self.choose_leaf(&item.point, obs);
        match &mut self.node_mut(leaf).entries {
            Entries::Leaf(items) => items.push(item),
            Entries::Inner(_) => unreachable!("choose_leaf returned an inner node"),
        }
        self.io.record_writes(1);
        if self.node(leaf).fanout() > self.cfg.max_entries {
            self.split_overflowing(leaf, obs);
        } else {
            self.refresh_upward(leaf);
        }
    }

    /// Walks from the root to the leaf whose enlargement is minimal at every
    /// level (ties broken by smaller area, then smaller fanout), emitting a
    /// [`UpdateEvent::Gained`] for every node on the path.
    fn choose_leaf(&self, p: &Point<D>, obs: &mut UpdateObserver<'_>) -> u32 {
        let target = Rect::from_point(*p);
        let mut idx = self.root;
        loop {
            self.io.record_reads(1);
            obs(UpdateEvent::Gained(NodeId(idx)));
            match &self.node(idx).entries {
                Entries::Leaf(_) => return idx,
                Entries::Inner(children) => {
                    let mut best = children[0].0;
                    let mut best_key = self.choose_key(best, &target);
                    for &c in &children[1..] {
                        let key = self.choose_key(c.0, &target);
                        if key < best_key {
                            best_key = key;
                            best = c.0;
                        }
                    }
                    idx = best;
                }
            }
        }
    }

    fn choose_key(&self, idx: u32, target: &Rect<D>) -> (f64, f64, usize) {
        let node = self.node(idx);
        (
            node.rect.enlargement(target),
            node.rect.area(),
            node.fanout(),
        )
    }

    /// Splits `idx`, inserting the new sibling into the parent; cascades
    /// upward, growing a new root if the old root splits.
    fn split_overflowing(&mut self, idx: u32, obs: &mut UpdateObserver<'_>) {
        let min = self.cfg.min_entries();
        let level = self.node(idx).level;
        let parent = self.node(idx).parent;

        // Partition the node's entries into two groups.
        let sibling_entries: Entries<D>;
        match std::mem::replace(&mut self.node_mut(idx).entries, Entries::Inner(Vec::new())) {
            Entries::Leaf(items) => {
                let (a, b) = quadratic_split(items, |it| Rect::from_point(it.point), min);
                self.node_mut(idx).entries = Entries::Leaf(a);
                sibling_entries = Entries::Leaf(b);
            }
            Entries::Inner(children) => {
                let rects: Vec<(NodeId, Rect<D>)> =
                    children.iter().map(|&c| (c, self.node(c.0).rect)).collect();
                let (a, b) = quadratic_split(rects, |(_, r)| *r, min);
                self.node_mut(idx).entries =
                    Entries::Inner(a.into_iter().map(|(c, _)| c).collect());
                sibling_entries = Entries::Inner(b.into_iter().map(|(c, _)| c).collect());
            }
        }

        let sibling = self.alloc(Node {
            rect: Rect::from_point(Point::origin()),
            count: 0,
            level,
            parent,
            entries: sibling_entries,
            free: false,
        });
        obs(UpdateEvent::Split {
            from: NodeId(idx),
            new: NodeId(sibling),
        });
        // Re-point children moved into the sibling.
        if let Entries::Inner(children) = &self.node(sibling).entries {
            let moved: Vec<u32> = children.iter().map(|c| c.0).collect();
            for c in moved {
                self.node_mut(c).parent = sibling;
            }
        }
        self.refresh(idx);
        self.refresh(sibling);

        if parent == NIL {
            // Root split: grow the tree by one level.
            let new_root = self.alloc(Node {
                rect: Rect::from_point(Point::origin()),
                count: 0,
                level: level + 1,
                parent: NIL,
                entries: Entries::Inner(vec![NodeId(idx), NodeId(sibling)]),
                free: false,
            });
            self.node_mut(idx).parent = new_root;
            self.node_mut(sibling).parent = new_root;
            self.refresh(new_root);
            self.root = new_root;
            return;
        }

        match &mut self.node_mut(parent).entries {
            Entries::Inner(children) => children.push(NodeId(sibling)),
            Entries::Leaf(_) => unreachable!("parent of a node must be inner"),
        }
        self.io.record_writes(1);
        if self.node(parent).fanout() > self.cfg.max_entries {
            self.split_overflowing(parent, obs);
        } else {
            self.refresh_upward(parent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use crate::validate;
    use storm_geo::{Point2, Rect2};

    fn item(x: f64, y: f64, id: u64) -> Item<2> {
        Item::new(Point2::xy(x, y), id)
    }

    #[test]
    fn insert_into_empty_tree() {
        let mut t: RTree<2> = RTree::new(RTreeConfig::with_fanout(4));
        t.insert(item(1.0, 2.0, 7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        let found = t.query(&Rect2::from_point(Point2::xy(1.0, 2.0)));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, 7);
        validate::check(&t).unwrap();
    }

    #[test]
    fn sequential_inserts_keep_tree_valid() {
        let mut t: RTree<2> = RTree::new(RTreeConfig::with_fanout(4));
        for i in 0..500u64 {
            let x = (i % 31) as f64 * 3.7;
            let y = (i % 17) as f64 * 5.1;
            t.insert(item(x, y, i));
            if i % 50 == 0 {
                validate::check(&t).unwrap();
            }
        }
        assert_eq!(t.len(), 500);
        validate::check(&t).unwrap();
        assert!(t.height() >= 3, "tree should have grown: {}", t.height());
        assert_eq!(t.count_in(&Rect2::everything()), 500);
    }

    #[test]
    fn inserted_points_are_all_findable() {
        let mut t: RTree<2> = RTree::new(RTreeConfig::with_fanout(5));
        let n = 300u64;
        for i in 0..n {
            // Deterministic scatter.
            let x = ((i * 2_654_435_761) % 1000) as f64;
            let y = ((i * 40_503) % 1000) as f64;
            t.insert(item(x, y, i));
        }
        for i in 0..n {
            let x = ((i * 2_654_435_761) % 1000) as f64;
            let y = ((i * 40_503) % 1000) as f64;
            let hits = t.query(&Rect2::from_point(Point2::xy(x, y)));
            assert!(hits.iter().any(|it| it.id == i), "lost item {i}");
        }
    }

    #[test]
    fn counts_follow_inserts() {
        let mut t: RTree<2> = RTree::new(RTreeConfig::with_fanout(4));
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(10.0, 10.0));
        for i in 0..50u64 {
            t.insert(item((i % 20) as f64, (i % 20) as f64, i));
        }
        let expected = (0..50u64).filter(|i| i % 20 <= 10).count();
        assert_eq!(t.count_in(&q), expected);
    }

    #[test]
    fn duplicate_locations_allowed() {
        let mut t: RTree<2> = RTree::new(RTreeConfig::with_fanout(4));
        for i in 0..100u64 {
            t.insert(item(5.0, 5.0, i));
        }
        assert_eq!(t.len(), 100);
        validate::check(&t).unwrap();
        assert_eq!(t.query(&Rect2::from_point(Point2::xy(5.0, 5.0))).len(), 100);
    }

    #[test]
    fn observer_sees_full_gain_path_and_splits() {
        use crate::events::UpdateEvent;
        let mut t: RTree<2> = RTree::new(RTreeConfig::with_fanout(4));
        // Fill enough to force at least one split.
        let mut split_seen = false;
        for i in 0..40u64 {
            let mut gains = 0usize;
            let mut events = Vec::new();
            t.insert_with(item(i as f64, (i * 3 % 11) as f64, i), &mut |e| {
                events.push(e);
            });
            for e in &events {
                match e {
                    UpdateEvent::Gained(_) => gains += 1,
                    UpdateEvent::Split { .. } => split_seen = true,
                    _ => {}
                }
            }
            // The gain path covers every level that existed during descent.
            assert!(gains >= 1);
            assert!(gains as u32 <= t.height() + 1);
        }
        assert!(split_seen, "40 inserts at fanout 4 must split");
        validate::check(&t).unwrap();
    }
}
