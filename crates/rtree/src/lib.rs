//! R-tree substrate for the STORM system.
//!
//! STORM's ST-indexing module (paper §3.1) builds both of its sampling
//! indexes — the LS-tree (a forest of R-trees over level samples) and the
//! RS-tree (a single sample-augmented Hilbert R-tree) — on top of a plain
//! R-tree. This crate provides that substrate, built from scratch:
//!
//! * arena-allocated nodes with configurable fanout `B` (the disk-block
//!   analogue from the paper's cost model, Table 1);
//! * **bulk loading** via Sort-Tile-Recursive packing and via Hilbert-curve
//!   packing (the paper's RS-tree is "based on a single Hilbert R-tree");
//! * **dynamic updates** — Guttman insertion with quadratic splits, and
//!   deletion with tree condensation — maintaining, on every path, the
//!   per-node subtree cardinalities `|P(u)|` that Olken-style random
//!   descent and the RS-tree's weighted sampling require;
//! * **canonical sets** `R_Q`: the maximal nodes fully contained in a query
//!   rectangle plus the qualifying items of partially-cut leaves;
//! * **simulated I/O accounting** ([`IoStats`]): every node visit counts as
//!   one logical block access, so the `O(k/B)` vs `Ω(k)` behaviour the
//!   paper analyses is directly measurable without a disk.
//!
//! The tree stores [`Item`]s — a point plus an opaque `u64` record id; the
//! record payloads themselves live in the storage engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod canonical;
mod delete;
mod events;
mod frozen;
mod insert;
mod io;
mod node;
mod split;
mod tree;
pub mod validate;

pub use bulk::hilbert_sort;
pub use canonical::{CanonicalPart, CanonicalSet};
pub use events::{UpdateEvent, UpdateObserver};
pub use frozen::{FrozenCone, FrozenConeEntry, FrozenRTree};
pub use io::IoStats;
pub use node::{Item, NodeId};
pub use tree::{BulkMethod, NodeView, RTree, RTreeConfig};
