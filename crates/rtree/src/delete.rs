//! Deletion with tree condensation (Guttman `Delete` + `CondenseTree`).

use storm_geo::Point;

use crate::events::{UpdateEvent, UpdateObserver};
use crate::node::{Entries, Item, NodeId, NIL};
use crate::tree::RTree;

impl<const D: usize> RTree<D> {
    /// Removes the item with the given location and id.
    ///
    /// Returns `false` when no such item exists. Under-full nodes on the
    /// deletion path are dissolved and their points re-inserted, and subtree
    /// counts are maintained exactly — STORM relies on this so the sampler
    /// stays correct "with respect to the latest records" (paper §2).
    pub fn remove(&mut self, point: &Point<D>, id: u64) -> bool {
        self.remove_with(point, id, &mut |_| {})
    }

    /// Like [`RTree::remove`], reporting every structural effect to `obs`.
    pub fn remove_with(&mut self, point: &Point<D>, id: u64, obs: &mut UpdateObserver<'_>) -> bool {
        let Some(leaf) = self.find_leaf(point, id) else {
            return false;
        };
        // Every ancestor (root..=leaf) loses the item.
        let mut path = Vec::new();
        let mut cur = leaf;
        loop {
            path.push(cur);
            let parent = self.node(cur).parent;
            if parent == NIL {
                break;
            }
            cur = parent;
        }
        for idx in path.into_iter().rev() {
            obs(UpdateEvent::Lost(NodeId(idx)));
        }
        match &mut self.node_mut(leaf).entries {
            Entries::Leaf(items) => {
                let pos = items
                    .iter()
                    .position(|it| it.id == id && it.point == *point)
                    .expect("find_leaf returned a leaf without the item");
                items.swap_remove(pos);
            }
            Entries::Inner(_) => unreachable!(),
        }
        self.io.record_writes(1);
        self.len -= 1;
        self.condense(leaf, obs);
        true
    }

    /// Depth-first search for the leaf containing the exact item.
    fn find_leaf(&self, point: &Point<D>, id: u64) -> Option<u32> {
        if self.root == NIL {
            return None;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            self.io.record_reads(1);
            let node = self.node(idx);
            if !node.rect.contains_point(point) {
                continue;
            }
            match &node.entries {
                Entries::Leaf(items) => {
                    if items.iter().any(|it| it.id == id && it.point == *point) {
                        return Some(idx);
                    }
                }
                Entries::Inner(children) => {
                    for &c in children {
                        if self.node(c.0).rect.contains_point(point) {
                            stack.push(c.0);
                        }
                    }
                }
            }
        }
        None
    }

    /// Walks from `start` to the root dissolving under-full nodes, then
    /// re-inserts the orphaned points and shrinks the root if needed.
    fn condense(&mut self, start: u32, obs: &mut UpdateObserver<'_>) {
        let min = self.cfg.min_entries();
        let mut orphans: Vec<Item<D>> = Vec::new();
        let mut idx = start;
        loop {
            let parent = self.node(idx).parent;
            if parent == NIL {
                break;
            }
            if self.node(idx).fanout() < min {
                // Detach from parent and dissolve the subtree.
                match &mut self.node_mut(parent).entries {
                    Entries::Inner(children) => {
                        let pos = children
                            .iter()
                            .position(|c| c.0 == idx)
                            .expect("parent/child link broken");
                        children.swap_remove(pos);
                    }
                    Entries::Leaf(_) => unreachable!(),
                }
                self.io.record_writes(1);
                self.collect_subtree(idx, &mut orphans, obs);
            } else {
                self.refresh(idx);
            }
            idx = parent;
        }
        self.refresh(idx); // the root

        // Shrink: an inner root with a single child (or an empty tree).
        loop {
            let root = self.root;
            if root == NIL {
                break;
            }
            let node = self.node(root);
            match &node.entries {
                Entries::Inner(children) if children.len() == 1 => {
                    let child = children[0].0;
                    self.node_mut(child).parent = NIL;
                    self.dealloc(root);
                    obs(UpdateEvent::Freed(NodeId(root)));
                    self.root = child;
                }
                Entries::Inner(children) if children.is_empty() => {
                    self.dealloc(root);
                    obs(UpdateEvent::Freed(NodeId(root)));
                    self.root = NIL;
                    break;
                }
                Entries::Leaf(items) if items.is_empty() => {
                    self.dealloc(root);
                    obs(UpdateEvent::Freed(NodeId(root)));
                    self.root = NIL;
                    break;
                }
                _ => break,
            }
        }

        for item in orphans {
            self.insert_impl(item, obs);
        }
    }

    /// Moves every point under `idx` into `out` and frees the subtree.
    fn collect_subtree(&mut self, idx: u32, out: &mut Vec<Item<D>>, obs: &mut UpdateObserver<'_>) {
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            self.io.record_reads(1);
            // storm-analyzer: allow(A4): delete-and-reinsert maintenance — one empty Vec per orphaned node, never on the draw path
            match std::mem::replace(&mut self.node_mut(i).entries, Entries::Inner(Vec::new())) {
                Entries::Leaf(mut items) => out.append(&mut items),
                Entries::Inner(children) => stack.extend(children.iter().map(|c| c.0)),
            }
            self.dealloc(i);
            obs(UpdateEvent::Freed(NodeId(i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::node::Item;
    use crate::tree::{BulkMethod, RTree, RTreeConfig};
    use crate::validate;
    use storm_geo::{Point2, Rect2};

    fn scatter(n: u64) -> Vec<Item<2>> {
        (0..n)
            .map(|i| {
                let x = ((i * 2_654_435_761) % 997) as f64;
                let y = ((i * 40_503) % 991) as f64;
                Item::new(Point2::xy(x, y), i)
            })
            .collect()
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t = RTree::bulk_load(scatter(100), RTreeConfig::with_fanout(8), BulkMethod::Str);
        assert!(!t.remove(&Point2::xy(-1.0, -1.0), 0));
        assert!(!t.remove(&scatter(100)[5].point, 9999));
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn remove_then_queries_forget_the_point() {
        let items = scatter(200);
        let mut t = RTree::bulk_load(items.clone(), RTreeConfig::with_fanout(8), BulkMethod::Str);
        let victim = items[37];
        assert!(t.remove(&victim.point, victim.id));
        assert_eq!(t.len(), 199);
        let hits = t.query(&Rect2::from_point(victim.point));
        assert!(!hits.iter().any(|it| it.id == victim.id));
        validate::check(&t).unwrap();
    }

    #[test]
    fn drain_entire_tree() {
        let items = scatter(300);
        let mut t = RTree::bulk_load(items.clone(), RTreeConfig::with_fanout(4), BulkMethod::Str);
        for (i, it) in items.iter().enumerate() {
            assert!(t.remove(&it.point, it.id), "failed to remove {}", it.id);
            if i % 37 == 0 {
                validate::check(&t).unwrap();
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.count_in(&Rect2::everything()), 0);
    }

    #[test]
    fn tree_remains_usable_after_drain_and_refill() {
        let items = scatter(64);
        let mut t = RTree::bulk_load(items.clone(), RTreeConfig::with_fanout(4), BulkMethod::Str);
        for it in &items {
            assert!(t.remove(&it.point, it.id));
        }
        for it in &items {
            t.insert(*it);
        }
        assert_eq!(t.len(), 64);
        validate::check(&t).unwrap();
        assert_eq!(t.count_in(&Rect2::everything()), 64);
    }

    #[test]
    fn interleaved_inserts_and_deletes_keep_counts_exact() {
        let mut t: RTree<2> = RTree::new(RTreeConfig::with_fanout(4));
        let mut live: Vec<Item<2>> = Vec::new();
        let mut next_id = 0u64;
        for round in 0..60u64 {
            // Insert three, delete one.
            for j in 0..3 {
                let i = round * 3 + j;
                let item = Item::new(
                    Point2::xy(((i * 97) % 101) as f64, ((i * 31) % 103) as f64),
                    next_id,
                );
                next_id += 1;
                t.insert(item);
                live.push(item);
            }
            let victim = live.swap_remove((round as usize * 13) % live.len());
            assert!(t.remove(&victim.point, victim.id));
            assert_eq!(t.len(), live.len());
        }
        validate::check(&t).unwrap();
        assert_eq!(t.count_in(&Rect2::everything()), live.len());
        // Every live item is still findable.
        for it in &live {
            let hits = t.query(&Rect2::from_point(it.point));
            assert!(hits.iter().any(|h| h.id == it.id));
        }
    }
}
