//! Structural update events.
//!
//! STORM's RS-tree attaches a sample buffer `S(u)` to every R-tree node and
//! must "properly update the associated samples" when the underlying data
//! changes (paper §3.1). Rather than duplicating the R-tree logic inside the
//! RS-tree, the substrate reports what happened during each update through
//! an observer callback, and the sample layer reacts (reservoir updates,
//! buffer eviction).

use crate::node::NodeId;

/// One structural effect of an insert or delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateEvent {
    /// The subtree rooted at this node *gained* the item being inserted
    /// (emitted for every node on the insertion path, root to leaf).
    Gained(NodeId),
    /// The subtree rooted at this node *lost* the item being removed
    /// (emitted for every node on the deletion path, root to leaf).
    Lost(NodeId),
    /// `from` was split; roughly half of its subtree now lives under `new`.
    /// Samples cached for `from` are no longer a sample of its subtree.
    Split {
        /// The overflowing node that was halved.
        from: NodeId,
        /// The freshly created sibling.
        new: NodeId,
    },
    /// The node was deallocated (its id may be reused later).
    Freed(NodeId),
}

/// Observer alias used by [`RTree::insert_with`](crate::RTree::insert_with)
/// and [`RTree::remove_with`](crate::RTree::remove_with).
pub type UpdateObserver<'a> = dyn FnMut(UpdateEvent) + 'a;
