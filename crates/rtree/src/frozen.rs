//! Read-optimized frozen tree layout: SoA leaves, implicit node indexing.
//!
//! The mutable [`RTree`](crate::RTree) is the build/ingest-facing form:
//! `Vec<Node>`-indirected nodes whose `Entries::Leaf(Vec<Item>)` /
//! `Entries::Inner(Vec<NodeId>)` each own a heap allocation, so every
//! descent step chases two pointers and every leaf read lands on a cold
//! cache line. [`FrozenRTree`] is the read-optimized form produced by an
//! explicit [`RTree::freeze`] step:
//!
//! * **SoA arena** — every item is Hilbert-sorted into one contiguous
//!   arena; record ids live in one column (`ids`) and coordinates in a
//!   column-major block (`coords[axis * n + i]`), so a sampling kernel
//!   that only touches ids streams a single dense array;
//! * **implicit node indexing** — level `l` node `i` covers the arena
//!   range `[i·span(l), min(n, (i+1)·span(l)))` with
//!   `span(l) = fanout^(l+1)`, and its children are level `l-1` nodes
//!   `i·fanout ..`; child addressing, subtree counts, and canonical-range
//!   extraction are all arithmetic — no `NodeId` indirection, no per-node
//!   count field, no hash lookups;
//! * **bounding rects only** — the sole per-node storage is one `Rect`
//!   per node, packed level-by-level (leaves first) in `rects` with a
//!   `level_off` directory, because rects are the only node attribute the
//!   arithmetic cannot derive.
//!
//! A fully-contained canonical node is therefore a *contiguous arena
//! range*, and a uniform draw from it is one `random_range` plus one
//! array read — the constant-factor win the paper's O(k/B) sampling
//! bound needs to show up in wall-clock terms.
//!
//! I/O accounting: freezing shares the source tree's [`IoStats`] handle.
//! Structure walks (`query`, `for_each_in`, `count_in`, `cone`) charge
//! one read per visited node, like the boxed tree; arena reads are
//! charged by the samplers at block (`fanout`) granularity, which is the
//! frozen analogue of the boxed buffer-block reads.

use std::sync::Arc;

use storm_geo::{Point, Rect};

use crate::io::IoStats;
use crate::node::Item;
use crate::tree::RTree;

/// A read-only, cache-dense snapshot of an [`RTree`]'s items.
///
/// Build one with [`RTree::freeze`] or [`FrozenRTree::build`]. The frozen
/// form does not support updates: re-freeze after mutating the source
/// tree.
#[derive(Debug, Clone)]
pub struct FrozenRTree<const D: usize> {
    fanout: usize,
    /// Record ids, Hilbert order.
    ids: Vec<u64>,
    /// Column-major coordinates: axis `a` of item `i` is `coords[a*n+i]`.
    coords: Vec<f64>,
    /// Node bounding rects, levels concatenated bottom-up (leaves first).
    rects: Vec<Rect<D>>,
    /// Start of each level's run in `rects`; `level_off.len()` = height.
    level_off: Vec<usize>,
    /// `span(l) = fanout^(l+1)` (saturating): items per level-`l` node.
    spans: Vec<usize>,
    io: Arc<IoStats>,
}

/// One fully-contained canonical node in a [`FrozenCone`]: its implicit
/// coordinates plus the arena range it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrozenConeEntry {
    /// Level of the node (leaves are 0).
    pub level: usize,
    /// Index of the node within its level.
    pub idx: usize,
    /// First arena index covered (inclusive).
    pub lo: usize,
    /// One past the last arena index covered.
    pub hi: usize,
}

/// The frozen analogue of the canonical set `R_Q`: maximal fully-contained
/// nodes as contiguous arena ranges, plus the qualifying items of cut
/// leaves as individual arena indices.
#[derive(Debug, Clone, Default)]
pub struct FrozenCone {
    /// Maximal nodes fully inside the query, as arena ranges.
    pub nodes: Vec<FrozenConeEntry>,
    /// Arena indices of qualifying items in partially-overlapped leaves.
    pub singles: Vec<usize>,
    /// Exact `|P ∩ Q|` = sum of node ranges + singles.
    pub total: usize,
}

impl<const D: usize> FrozenRTree<D> {
    /// Packs `items` (any order; they are Hilbert-sorted internally) into
    /// a frozen arena with the given leaf fanout, charging build reads to
    /// the shared `io` counter.
    ///
    /// # Panics
    /// Panics if `fanout < 2` or `items.len() > u32::MAX` (samplers use
    /// `u32` arena offsets).
    pub fn build(mut items: Vec<Item<D>>, fanout: usize, io: Arc<IoStats>) -> Self {
        crate::bulk::hilbert_sort(&mut items);
        Self::build_presorted(&items, fanout, io)
    }

    /// Packs already-ordered `items` into a frozen arena **without
    /// re-sorting** — the ingest tier's run builder uses this when it has
    /// presorted a batch itself via [`hilbert_sort`](crate::hilbert_sort).
    ///
    /// Caller contract: `items` must be in the order [`hilbert_sort`]
    /// would produce **for this exact item set** — Hilbert keys are
    /// computed over the set's own bounding box, so an order inherited
    /// from a different (e.g. larger or merged) set is *not* valid here.
    /// Structure invariants (rect containment) hold for any order, but
    /// range-query locality degrades if the contract is broken.
    ///
    /// # Panics
    /// Panics if `fanout < 2` or `items.len() > u32::MAX` (samplers use
    /// `u32` arena offsets).
    pub fn build_presorted(items: &[Item<D>], fanout: usize, io: Arc<IoStats>) -> Self {
        assert!(fanout >= 2, "frozen fanout must be at least 2");
        assert!(
            u32::try_from(items.len()).is_ok(),
            "frozen arena limited to u32::MAX items"
        );
        let n = items.len();
        let mut ids = Vec::with_capacity(n);
        let mut coords = vec![0.0f64; n * D];
        for (i, item) in items.iter().enumerate() {
            ids.push(item.id);
            for axis in 0..D {
                coords[axis * n + i] = item.point.get(axis);
            }
        }

        // Leaf rects: one per fanout-chunk of the arena.
        let mut rects: Vec<Rect<D>> = Vec::new();
        let mut level_off = Vec::new();
        let mut spans = Vec::new();
        if n > 0 {
            level_off.push(0);
            spans.push(fanout);
            for chunk in items.chunks(fanout) {
                rects.push(bounding_rect(chunk));
            }
            // Upper levels: union runs of `fanout` child rects until one
            // node remains.
            let mut lo = 0usize;
            while rects.len() - lo > 1 {
                let hi = rects.len();
                level_off.push(hi);
                spans.push(
                    spans
                        .last()
                        .copied()
                        .unwrap_or(fanout)
                        .saturating_mul(fanout),
                );
                let mut i = lo;
                while i < hi {
                    let end = (i + fanout).min(hi);
                    let mut r = rects[i];
                    for other in &rects[i + 1..end] {
                        r = r.union(other);
                    }
                    rects.push(r);
                    i = end;
                }
                lo = hi;
            }
        }
        FrozenRTree {
            fanout,
            ids,
            coords,
            rects,
            level_off,
            spans,
            io,
        }
    }

    /// Number of items in the arena.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Leaf capacity / inner-node child count.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of levels (leaves are level 0); 0 for an empty tree.
    pub fn height(&self) -> usize {
        self.level_off.len()
    }

    /// The simulated-I/O counter (shared with the source tree).
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// A shared handle to the I/O counter.
    pub fn io_handle(&self) -> Arc<IoStats> {
        Arc::clone(&self.io)
    }

    /// Number of nodes at `level`.
    pub fn nodes_at(&self, level: usize) -> usize {
        let end = self
            .level_off
            .get(level + 1)
            .copied()
            .unwrap_or(self.rects.len());
        end - self.level_off[level]
    }

    /// Total node count across all levels.
    pub fn node_count(&self) -> usize {
        self.rects.len()
    }

    /// Arena range `[lo, hi)` covered by level-`level` node `idx`.
    pub fn node_range(&self, level: usize, idx: usize) -> (usize, usize) {
        let span = self.spans[level];
        let lo = idx.saturating_mul(span).min(self.len());
        let hi = lo.saturating_add(span).min(self.len());
        (lo, hi)
    }

    /// Bounding rect of level-`level` node `idx`.
    pub fn node_rect(&self, level: usize, idx: usize) -> &Rect<D> {
        &self.rects[self.level_off[level] + idx]
    }

    /// Record id of arena slot `i`.
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Location of arena slot `i`, gathered from the coordinate columns.
    pub fn point(&self, i: usize) -> Point<D> {
        let n = self.len();
        let mut c = [0.0f64; D];
        for (axis, slot) in c.iter_mut().enumerate() {
            *slot = self.coords[axis * n + i];
        }
        Point::new(c)
    }

    /// The item at arena slot `i`, reassembled from the SoA columns.
    pub fn item(&self, i: usize) -> Item<D> {
        Item::new(self.point(i), self.ids[i])
    }

    /// True when arena slot `i` falls inside `query`, answered straight
    /// from the coordinate columns without assembling a `Point`.
    #[inline]
    pub fn slot_in(&self, i: usize, query: &Rect<D>) -> bool {
        let n = self.len();
        for axis in 0..D {
            let c = self.coords[axis * n + i];
            if c < query.lo().get(axis) || c > query.hi().get(axis) {
                return false;
            }
        }
        true
    }

    /// Every item intersecting `query`, in arena (Hilbert) order.
    pub fn query(&self, query: &Rect<D>) -> Vec<Item<D>> {
        let mut out = Vec::new();
        self.for_each_in(query, |item| out.push(item));
        out
    }

    /// Calls `f` for every item inside `query`, charging one read per
    /// visited node (the boxed tree's traversal accounting).
    pub fn for_each_in<F: FnMut(Item<D>)>(&self, query: &Rect<D>, mut f: F) {
        let Some(root_level) = self.height().checked_sub(1) else {
            return;
        };
        let mut visits = 0usize;
        let mut stack = vec![(root_level, 0usize)];
        while let Some((level, idx)) = stack.pop() {
            visits += 1;
            let rect = self.node_rect(level, idx);
            if !rect.intersects(query) {
                continue;
            }
            let (lo, hi) = self.node_range(level, idx);
            if query.contains_rect(rect) {
                // Whole subtree qualifies: emit the arena range directly,
                // charging the leaf blocks it spans.
                visits += (hi - lo).div_ceil(self.fanout);
                for i in lo..hi {
                    f(self.item(i));
                }
            } else if level == 0 {
                for i in lo..hi {
                    if self.slot_in(i, query) {
                        f(self.item(i));
                    }
                }
            } else {
                for child in self.children(level, idx) {
                    stack.push((level - 1, child));
                }
            }
        }
        self.io.record_reads(visits as u64);
    }

    /// Child index range (at `level - 1`) of level-`level` node `idx`.
    pub fn children(&self, level: usize, idx: usize) -> std::ops::Range<usize> {
        let below = self.nodes_at(level - 1);
        let lo = (idx * self.fanout).min(below);
        let hi = (lo + self.fanout).min(below);
        lo..hi
    }

    /// Exact `|P ∩ Q|` from the implicit counts (free of charge, like the
    /// boxed tree's aggregate-count path).
    pub fn count_in(&self, query: &Rect<D>) -> usize {
        let Some(root_level) = self.height().checked_sub(1) else {
            return 0;
        };
        let mut count = 0usize;
        let mut stack = vec![(root_level, 0usize)];
        while let Some((level, idx)) = stack.pop() {
            let rect = self.node_rect(level, idx);
            if !rect.intersects(query) {
                continue;
            }
            let (lo, hi) = self.node_range(level, idx);
            if query.contains_rect(rect) {
                count += hi - lo;
            } else if level == 0 {
                for i in lo..hi {
                    if self.slot_in(i, query) {
                        count += 1;
                    }
                }
            } else {
                for child in self.children(level, idx) {
                    stack.push((level - 1, child));
                }
            }
        }
        count
    }

    /// The canonical decomposition of `query` over the frozen layout:
    /// maximal fully-contained nodes become arena *ranges*, qualifying
    /// items of cut leaves become individual arena indices. Charges one
    /// read per node visited while carving the cone (the stream's open
    /// cost); drawing from the cone afterwards is pure arithmetic.
    pub fn cone(&self, query: &Rect<D>) -> FrozenCone {
        let mut cone = FrozenCone::default();
        let Some(root_level) = self.height().checked_sub(1) else {
            return cone;
        };
        let mut visits = 0usize;
        let mut stack = vec![(root_level, 0usize)];
        while let Some((level, idx)) = stack.pop() {
            visits += 1;
            let rect = self.node_rect(level, idx);
            if !rect.intersects(query) {
                continue;
            }
            let (lo, hi) = self.node_range(level, idx);
            if query.contains_rect(rect) {
                cone.total += hi - lo;
                cone.nodes.push(FrozenConeEntry { level, idx, lo, hi });
            } else if level == 0 {
                for i in lo..hi {
                    if self.slot_in(i, query) {
                        cone.singles.push(i);
                        cone.total += 1;
                    }
                }
            } else {
                for child in self.children(level, idx) {
                    stack.push((level - 1, child));
                }
            }
        }
        self.io.record_reads(visits as u64);
        cone
    }
}

impl<const D: usize> RTree<D> {
    /// Snapshots this tree into the read-optimized [`FrozenRTree`] form:
    /// items are re-packed Hilbert-sorted into a contiguous SoA arena
    /// with implicitly-indexed nodes. The frozen view shares this tree's
    /// I/O counter; the walk that extracts the items charges its reads
    /// here as the one-time freeze cost.
    pub fn freeze(&self) -> FrozenRTree<D> {
        FrozenRTree::build(self.items(), self.cfg.max_entries, self.io_handle())
    }
}

fn bounding_rect<const D: usize>(items: &[Item<D>]) -> Rect<D> {
    let mut rect = Rect::from_point(items[0].point);
    for item in &items[1..] {
        rect = rect.enlarged_to_point(&item.point);
    }
    rect
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{BulkMethod, RTreeConfig};
    use storm_geo::{Point2, Rect2};

    fn random_items(n: usize, seed: u64) -> Vec<Item<2>> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Item::new(Point2::xy(next() * 1000.0, next() * 1000.0), i as u64))
            .collect()
    }

    fn freeze(n: usize, fanout: usize, seed: u64) -> (RTree<2>, FrozenRTree<2>) {
        let t = RTree::bulk_load(
            random_items(n, seed),
            RTreeConfig::with_fanout(fanout),
            BulkMethod::Hilbert,
        );
        let f = t.freeze();
        (t, f)
    }

    #[test]
    fn build_presorted_matches_build_on_sorted_input() {
        for n in [1usize, 7, 64, 513] {
            let items = random_items(n, 99);
            let via_build = FrozenRTree::build(items.clone(), 8, Arc::new(IoStats::default()));
            let mut sorted = items;
            crate::bulk::hilbert_sort(&mut sorted);
            let via_presorted =
                FrozenRTree::build_presorted(&sorted, 8, Arc::new(IoStats::default()));
            assert_eq!(via_build.len(), via_presorted.len());
            for i in 0..n {
                assert_eq!(via_build.id(i), via_presorted.id(i), "n={n} slot {i}");
                assert_eq!(via_build.point(i), via_presorted.point(i), "n={n} slot {i}");
            }
            for level in 0..via_build.height() {
                for idx in 0..via_build.nodes_at(level) {
                    assert_eq!(
                        via_build.node_rect(level, idx),
                        via_presorted.node_rect(level, idx),
                        "n={n} level={level} node={idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn implicit_arithmetic_is_consistent() {
        for n in [0usize, 1, 7, 8, 9, 64, 65, 513, 4096] {
            let (_, f) = freeze(n, 8, 42);
            assert_eq!(f.len(), n);
            if n == 0 {
                assert_eq!(f.height(), 0);
                continue;
            }
            // Top level is a single root covering everything.
            let top = f.height() - 1;
            assert_eq!(f.nodes_at(top), 1);
            assert_eq!(f.node_range(top, 0), (0, n));
            // Every level tiles the arena exactly.
            for level in 0..f.height() {
                let mut covered = 0usize;
                for i in 0..f.nodes_at(level) {
                    let (lo, hi) = f.node_range(level, i);
                    assert_eq!(lo, covered, "n={n} level={level} node={i}");
                    assert!(hi > lo);
                    covered = hi;
                }
                assert_eq!(covered, n, "n={n} level={level}");
            }
            // Children partition the parent's range.
            for level in 1..f.height() {
                for i in 0..f.nodes_at(level) {
                    let (lo, hi) = f.node_range(level, i);
                    let kids = f.children(level, i);
                    assert!(!kids.is_empty());
                    assert_eq!(f.node_range(level - 1, kids.start).0, lo);
                    assert_eq!(f.node_range(level - 1, kids.end - 1).1, hi);
                }
            }
        }
    }

    #[test]
    fn rects_cover_their_ranges() {
        let (_, f) = freeze(2000, 16, 7);
        for level in 0..f.height() {
            for i in 0..f.nodes_at(level) {
                let rect = f.node_rect(level, i);
                let (lo, hi) = f.node_range(level, i);
                for j in lo..hi {
                    assert!(rect.contains_point(&f.point(j)), "level={level} node={i}");
                }
            }
        }
    }

    #[test]
    fn query_matches_boxed_tree() {
        let (t, f) = freeze(3000, 16, 11);
        for (a, b, c, d) in [
            (100.0, 100.0, 600.0, 500.0),
            (0.0, 0.0, 1000.0, 1000.0),
            (400.0, 400.0, 401.0, 401.0),
            (2000.0, 2000.0, 2100.0, 2100.0),
        ] {
            let q = Rect2::from_corners(Point2::xy(a, b), Point2::xy(c, d));
            let mut boxed: Vec<u64> = t.query(&q).iter().map(|i| i.id).collect();
            let mut frozen: Vec<u64> = f.query(&q).iter().map(|i| i.id).collect();
            boxed.sort_unstable();
            frozen.sort_unstable();
            assert_eq!(boxed, frozen);
            assert_eq!(f.count_in(&q), boxed.len());
        }
    }

    #[test]
    fn cone_partitions_the_result_set() {
        let (t, f) = freeze(5000, 8, 3);
        let q = Rect2::from_corners(Point2::xy(120.0, 80.0), Point2::xy(770.0, 640.0));
        let cone = f.cone(&q);
        let expected: std::collections::HashSet<u64> = t.query(&q).iter().map(|i| i.id).collect();
        let mut got = std::collections::HashSet::new();
        for e in &cone.nodes {
            assert!(q.contains_rect(f.node_rect(e.level, e.idx)));
            for i in e.lo..e.hi {
                assert!(got.insert(f.id(i)), "range overlap at {i}");
            }
        }
        for &i in &cone.singles {
            assert!(q.contains_point(&f.point(i)));
            assert!(got.insert(f.id(i)), "single duplicates a range at {i}");
        }
        assert_eq!(got, expected);
        assert_eq!(cone.total, expected.len());
    }

    #[test]
    fn cone_nodes_are_maximal() {
        // Everything-query collapses to the root alone.
        let (_, f) = freeze(1000, 8, 9);
        let cone = f.cone(&Rect2::everything());
        assert_eq!(cone.nodes.len(), 1);
        assert_eq!(cone.nodes[0].level, f.height() - 1);
        assert!(cone.singles.is_empty());
        assert_eq!(cone.total, 1000);
    }

    #[test]
    fn soa_columns_round_trip() {
        let items = random_items(257, 5);
        let t = RTree::bulk_load(
            items.clone(),
            RTreeConfig::with_fanout(8),
            BulkMethod::Hilbert,
        );
        let f = t.freeze();
        let mut expect: Vec<(u64, [f64; 2])> =
            items.iter().map(|i| (i.id, i.point.coords())).collect();
        let mut got: Vec<(u64, [f64; 2])> = (0..f.len())
            .map(|i| (f.id(i), f.point(i).coords()))
            .collect();
        expect.sort_by_key(|e| e.0);
        got.sort_by_key(|e| e.0);
        assert_eq!(expect, got);
    }

    #[test]
    fn freeze_shares_the_io_counter() {
        let (t, f) = freeze(500, 8, 13);
        t.io().reset();
        let _ = f.query(&Rect2::everything());
        assert!(
            t.io().reads() > 0,
            "frozen reads must land on the shared counter"
        );
    }
}
