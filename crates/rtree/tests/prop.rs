//! Property tests: the tree keeps its invariants and answers queries
//! exactly under arbitrary interleavings of inserts and deletes.

use proptest::prelude::*;
use storm_geo::{Point2, Rect2};
use storm_rtree::{validate, BulkMethod, Item, RTree, RTreeConfig};

#[derive(Debug, Clone)]
enum Op {
    Insert { x: f64, y: f64 },
    DeleteNth(usize),
    Query { x: f64, y: f64, w: f64, h: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Op::Insert { x, y }),
        1 => (0usize..10_000).prop_map(Op::DeleteNth),
        1 => (0.0..100.0f64, 0.0..100.0f64, 0.0..60.0f64, 0.0..60.0f64)
            .prop_map(|(x, y, w, h)| Op::Query { x, y, w, h }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_update_sequences_stay_exact(
        ops in prop::collection::vec(op_strategy(), 1..120),
        fanout in 4usize..10,
    ) {
        let mut tree: RTree<2> = RTree::new(RTreeConfig::with_fanout(fanout));
        let mut live: Vec<Item<2>> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Insert { x, y } => {
                    let item = Item::new(Point2::xy(x, y), next_id);
                    next_id += 1;
                    tree.insert(item);
                    live.push(item);
                }
                Op::DeleteNth(n) => {
                    if !live.is_empty() {
                        let victim = live.swap_remove(n % live.len());
                        prop_assert!(tree.remove(&victim.point, victim.id));
                    }
                }
                Op::Query { x, y, w, h } => {
                    let q = Rect2::from_corners(Point2::xy(x, y), Point2::xy(x + w, y + h));
                    let mut got: Vec<u64> = tree.query(&q).iter().map(|i| i.id).collect();
                    got.sort_unstable();
                    let mut expected: Vec<u64> = live
                        .iter()
                        .filter(|i| q.contains_point(&i.point))
                        .map(|i| i.id)
                        .collect();
                    expected.sort_unstable();
                    prop_assert_eq!(got, expected);
                    prop_assert_eq!(tree.count_in(&q), tree.query(&q).len());
                    let canon = tree.canonical_set(&q);
                    prop_assert_eq!(canon.total, tree.query(&q).len());
                }
            }
            prop_assert_eq!(tree.len(), live.len());
        }
        validate::check(&tree).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn bulk_loads_match_reference_queries(
        points in prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 0..300),
        qx in 0.0..1000.0f64, qy in 0.0..1000.0f64, qw in 0.0..500.0f64, qh in 0.0..500.0f64,
        fanout in 4usize..33,
    ) {
        let items: Vec<Item<2>> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Item::new(Point2::xy(x, y), i as u64))
            .collect();
        let q = Rect2::from_corners(Point2::xy(qx, qy), Point2::xy(qx + qw, qy + qh));
        let mut expected: Vec<u64> = items
            .iter()
            .filter(|i| q.contains_point(&i.point))
            .map(|i| i.id)
            .collect();
        expected.sort_unstable();

        for method in [BulkMethod::Str, BulkMethod::Hilbert] {
            let tree = RTree::bulk_load(items.clone(), RTreeConfig::with_fanout(fanout), method);
            validate::check(&tree).map_err(TestCaseError::fail)?;
            let mut got: Vec<u64> = tree.query(&q).iter().map(|i| i.id).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected);
        }
    }
}
