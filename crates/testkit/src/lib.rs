//! Shared statistical test toolkit for the STORM workspace.
//!
//! Every sampling method in STORM makes the same promises — uniformity
//! over `P ∩ Q`, WOR exhaustion to the exact result set, fixed-seed
//! determinism, honest confidence intervals — and before this crate each
//! test suite re-derived the math to check them. `storm-testkit` hoists
//! those checks into one audited place:
//!
//! * [`chi_square_uniform`] / [`assert_uniform`] — frequency uniformity
//!   with a Wilson–Hilferty critical value (no lookup tables);
//! * [`ks_distance`] / [`assert_ks_uniform`] — distributional closeness
//!   via the two-sample / one-sample Kolmogorov–Smirnov statistic;
//! * [`drain_wor`] / [`assert_exhausts_to`] — WOR streams never repeat
//!   and exhaust to exactly the expected id set;
//! * [`assert_deterministic`] — a seeded computation replays identically
//!   across repeated runs;
//! * [`CoverageCheck`] — reported confidence intervals cover the truth at
//!   (at least) their nominal rate;
//! * [`stress_concurrent`] — a barrier-released interleaving harness for
//!   assertion-based concurrency tests (exact atomic-counter totals under
//!   contention);
//! * [`Interleaver`] — a scripted-interleaving sequencer: each thread runs
//!   its operations at numbered script steps, so one named schedule of a
//!   cross-thread race replays deterministically (the loom-style
//!   counterpart to `stress_concurrent`'s randomized schedules);
//! * [`watchdog`] — a hang guard for fault-injection suites: the test
//!   fails loudly instead of wedging CI.
//!
//! The assertion helpers panic with labelled diagnostics — they are meant
//! for `#[test]` bodies, not production paths.

use std::collections::HashSet;
use std::fmt::Debug;
use std::time::Duration;

use rand::Rng;
use storm_core::SpatialSampler;
use storm_rtree::Item;

// ---------------------------------------------------------------------------
// Chi-square uniformity
// ---------------------------------------------------------------------------

/// The chi-square statistic of observed `counts` against the uniform
/// expectation (equal mass per cell). Returns 0 for fewer than two cells.
pub fn chi_square_uniform(counts: &[u64]) -> f64 {
    if counts.len() < 2 {
        return 0.0;
    }
    let total: u64 = counts.iter().sum();
    let expected = total as f64 / counts.len() as f64;
    if expected <= 0.0 {
        return 0.0;
    }
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Approximate upper critical value of the chi-square distribution with
/// `dof` degrees of freedom at significance `p ≈ 0.001`, via the
/// Wilson–Hilferty cube transform. Accurate to a few percent for
/// `dof ≥ 3`, conservative enough for test gating everywhere.
pub fn chi_square_critical_p001(dof: usize) -> f64 {
    let k = dof.max(1) as f64;
    // z-score for the 99.9th percentile of the standard normal.
    let z = 3.090;
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// Asserts that `counts` are consistent with uniform sampling at
/// `p ≈ 0.001` (so a correct sampler flakes roughly once per thousand
/// runs, and a biased one fails immediately).
///
/// # Panics
/// Panics when the chi-square statistic exceeds the critical value.
pub fn assert_uniform(counts: &[u64], label: &str) {
    let chi = chi_square_uniform(counts);
    let crit = chi_square_critical_p001(counts.len().saturating_sub(1));
    assert!(
        chi <= crit,
        "{label}: chi² = {chi:.2} > critical {crit:.2} over {} cells \
         (counts not consistent with uniform sampling)",
        counts.len()
    );
}

// ---------------------------------------------------------------------------
// Kolmogorov–Smirnov distance
// ---------------------------------------------------------------------------

/// The two-sample Kolmogorov–Smirnov distance `sup |F_a - F_b|` between
/// the empirical CDFs of `a` and `b`. Returns 1.0 when either sample is
/// empty (maximal distance: nothing was observed).
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        if sa[i] <= sb[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// The one-sample KS distance of `samples` against the uniform
/// distribution on `[0, 1]`.
pub fn ks_uniform_distance(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len() as f64;
    s.iter()
        .enumerate()
        .map(|(i, &x)| {
            let x = x.clamp(0.0, 1.0);
            let lo = (x - i as f64 / n).abs();
            let hi = ((i + 1) as f64 / n - x).abs();
            lo.max(hi)
        })
        .fold(0.0, f64::max)
}

/// Asserts that `samples` (values in `[0, 1]`) are consistent with the
/// uniform distribution at `p ≈ 0.001` (`D < c(α)/√n`, `c(0.001) ≈ 1.95`).
///
/// # Panics
/// Panics when the KS distance exceeds the critical value.
pub fn assert_ks_uniform(samples: &[f64], label: &str) {
    let d = ks_uniform_distance(samples);
    let crit = 1.95 / (samples.len().max(1) as f64).sqrt();
    assert!(
        d <= crit,
        "{label}: KS distance {d:.4} > critical {crit:.4} over {} samples",
        samples.len()
    );
}

/// Asserts that two samples come from the same distribution at
/// `p ≈ 0.001` (two-sample KS bound `c(α)·√((n+m)/(n·m))`).
///
/// # Panics
/// Panics when the two-sample KS distance exceeds the critical value.
pub fn assert_same_distribution(a: &[f64], b: &[f64], label: &str) {
    let d = ks_distance(a, b);
    let (n, m) = (a.len().max(1) as f64, b.len().max(1) as f64);
    let crit = 1.95 * ((n + m) / (n * m)).sqrt();
    assert!(
        d <= crit,
        "{label}: two-sample KS distance {d:.4} > critical {crit:.4} \
         ({} vs {} samples)",
        a.len(),
        b.len()
    );
}

// ---------------------------------------------------------------------------
// WOR set equality
// ---------------------------------------------------------------------------

/// Drains a without-replacement sampler to exhaustion, asserting that no
/// id is ever delivered twice. Returns the delivered id set.
///
/// # Panics
/// Panics on the first duplicate id.
pub fn drain_wor<const D: usize>(
    sampler: &mut dyn SpatialSampler<D>,
    rng: &mut dyn Rng,
    label: &str,
) -> HashSet<u64> {
    let mut out = HashSet::new();
    while let Some(item) = sampler.next_sample(rng) {
        assert!(
            out.insert(item.id),
            "{label}: WOR stream delivered id {} twice",
            item.id
        );
    }
    out
}

/// Drains a WOR sampler and asserts it delivers exactly `expected` — the
/// cross-method guarantee that every sampler covers the same `P ∩ Q`.
///
/// # Panics
/// Panics on duplicates, missing ids, or extra ids (reporting a small
/// sample of the difference).
pub fn assert_exhausts_to<const D: usize>(
    sampler: &mut dyn SpatialSampler<D>,
    rng: &mut dyn Rng,
    expected: &HashSet<u64>,
    label: &str,
) {
    let got = drain_wor(sampler, rng, label);
    if got != *expected {
        let missing: Vec<u64> = expected.difference(&got).take(5).copied().collect();
        let extra: Vec<u64> = got.difference(expected).take(5).copied().collect();
        panic!(
            "{label}: WOR stream drained {} ids, expected {} \
             (missing e.g. {missing:?}, extra e.g. {extra:?})",
            got.len(),
            expected.len()
        );
    }
}

/// The expected id set for [`assert_exhausts_to`]: every item whose point
/// a predicate admits.
pub fn expected_ids<const D: usize>(
    items: &[Item<D>],
    mut admit: impl FnMut(&Item<D>) -> bool,
) -> HashSet<u64> {
    items
        .iter()
        .filter(|it| admit(it))
        .map(|it| it.id)
        .collect()
}

// ---------------------------------------------------------------------------
// Fixed-seed determinism
// ---------------------------------------------------------------------------

/// Runs a seeded computation `runs` times and asserts every run produces
/// an identical value — the fixed-seed replay guarantee that fault
/// injection must preserve (same seed + same plan → same output).
///
/// # Panics
/// Panics when any run differs from the first.
pub fn assert_deterministic<T: PartialEq + Debug>(
    runs: usize,
    label: &str,
    mut f: impl FnMut() -> T,
) {
    assert!(runs >= 2, "{label}: need at least 2 runs to compare");
    let first = f();
    for run in 1..runs {
        let again = f();
        assert!(
            again == first,
            "{label}: run {run} diverged from run 0\n  run 0: {first:?}\n  run {run}: {again:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// CI coverage
// ---------------------------------------------------------------------------

/// Tallies confidence-interval coverage over repeated trials: intervals
/// reported at confidence `c` must contain the truth in at least `~c` of
/// trials (estimator intervals may be conservative, never permissive).
#[derive(Debug, Default, Clone)]
pub struct CoverageCheck {
    trials: u64,
    hits: u64,
}

impl CoverageCheck {
    /// An empty tally.
    pub fn new() -> Self {
        CoverageCheck::default()
    }

    /// Records one trial: did `[value ± half_width]` cover `truth`?
    pub fn record(&mut self, value: f64, half_width: f64, truth: f64) {
        self.trials += 1;
        if (value - truth).abs() <= half_width {
            self.hits += 1;
        }
    }

    /// Trials recorded so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Fraction of trials whose interval covered the truth.
    pub fn coverage(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.hits as f64 / self.trials as f64
    }

    /// Asserts empirical coverage is at least `confidence` minus a
    /// binomial sampling allowance of three standard errors — a one-sided
    /// gate, since conservative (wider) intervals are acceptable.
    ///
    /// # Panics
    /// Panics when coverage falls below the allowed floor or no trials
    /// were recorded.
    pub fn assert_at_least(&self, confidence: f64, label: &str) {
        assert!(self.trials > 0, "{label}: no coverage trials recorded");
        let n = self.trials as f64;
        let se = (confidence * (1.0 - confidence) / n).sqrt();
        let floor = confidence - 3.0 * se;
        let got = self.coverage();
        assert!(
            got >= floor,
            "{label}: CI coverage {got:.3} < {floor:.3} \
             (nominal {confidence}, {} trials) — intervals are permissive",
            self.trials
        );
    }
}

// ---------------------------------------------------------------------------
// Concurrency stress harness
// ---------------------------------------------------------------------------

/// Runs `op(thread, iter)` from `threads` OS threads concurrently, `iters`
/// times each, released together from a start barrier so the interleaving
/// window is as wide as the scheduler allows. Returns once every thread
/// finished; a panic in any `op` propagates to the caller.
///
/// This is the assertion-based stand-in for a loom-style interleaving
/// test: pair it with an exact-count assertion (e.g. an atomic statistic
/// counter must equal `threads * iters` afterwards) to pin lock-free
/// bookkeeping like `ParallelRsCluster::dropped_sends` under real
/// contention. It explores real schedules, not the exhaustive model —
/// run it with a high iteration count.
///
/// # Panics
/// Propagates the first panic raised inside `op` (scoped threads re-raise
/// on join).
pub fn stress_concurrent(threads: usize, iters: usize, op: impl Fn(usize, usize) + Sync) {
    let barrier = std::sync::Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let barrier = &barrier;
            let op = &op;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    op(t, i);
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Scripted interleaving
// ---------------------------------------------------------------------------

/// A deterministic cross-thread schedule: operations tagged with script
/// step numbers execute in exactly that global order, whatever the OS
/// scheduler does.
///
/// Where [`stress_concurrent`] explores *random* schedules under real
/// contention, `Interleaver` replays one *named* schedule — the loom-style
/// tool for pinning a specific race window (e.g. a reader observing a
/// shared structure between two writer operations). Each participating
/// thread calls [`Interleaver::at`] with the steps it owns; the step
/// counter admits exactly one owner at a time and every operation runs
/// while holding the sequencer lock, so the schedule is a total order with
/// happens-before edges between consecutive steps.
///
/// The script must cover consecutive steps `0..n` with exactly one owner
/// per step, or the missing step wedges every later one — pair test
/// bodies with [`watchdog`] when in doubt.
#[derive(Debug, Default)]
pub struct Interleaver {
    step: parking_lot::Mutex<usize>,
}

impl Interleaver {
    /// A sequencer positioned at step 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until the script reaches step `n`, runs `f` (holding the
    /// sequencer lock, so no other step can interleave), then advances the
    /// script to `n + 1` and returns `f`'s value.
    ///
    /// Waiting is yield-polling rather than condvar-based: schedules are a
    /// handful of steps long and the wait is bounded by the test body, so
    /// the simplicity is worth more than the parked wakeup.
    pub fn at<T>(&self, n: usize, f: impl FnOnce() -> T) -> T {
        loop {
            let mut step = self.step.lock();
            if *step == n {
                let out = f();
                *step = n + 1;
                return out;
            }
            drop(step);
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

/// Runs `f` under a wall-clock deadline and returns its value, panicking
/// (in the caller) if the deadline passes first — the hang guard for
/// fault-matrix suites: a wedged retry loop fails the test instead of
/// wedging CI.
///
/// The worker thread is detached on timeout; the panic happens on the
/// calling thread so the test harness reports it normally.
///
/// # Panics
/// Panics when `f` does not complete within `timeout`, or propagates the
/// panic when `f` itself panicked.
pub fn watchdog<T: Send + 'static>(
    timeout: Duration,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(timeout) {
        Ok(value) => {
            let _ = handle.join();
            value
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: watchdog expired after {timeout:?} — query hung instead of failing")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(cause) => std::panic::resume_unwind(cause),
            Ok(()) => panic!("{label}: worker exited without reporting a result"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chi_square_accepts_uniform_and_rejects_biased() {
        // 1000 draws over 10 cells, perfectly uniform.
        assert_uniform(&[100; 10], "flat");
        let chi = chi_square_uniform(&[100; 10]);
        assert_eq!(chi, 0.0);
        // A single starved cell at this magnitude is unmistakable.
        let mut biased = [110u64; 10];
        biased[0] = 10;
        let chi = chi_square_uniform(&biased);
        assert!(chi > chi_square_critical_p001(9), "chi = {chi}");
        // Degenerate inputs are calm.
        assert_eq!(chi_square_uniform(&[]), 0.0);
        assert_eq!(chi_square_uniform(&[5]), 0.0);
    }

    #[test]
    fn critical_values_are_sane() {
        // Known table values at p = 0.001: dof 9 → 27.88, dof 99 → 148.2.
        assert!((chi_square_critical_p001(9) - 27.88).abs() < 1.0);
        assert!((chi_square_critical_p001(99) - 148.2).abs() < 3.0);
    }

    #[test]
    fn ks_uniform_accepts_uniform_grid_and_rejects_skew() {
        let grid: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        assert_ks_uniform(&grid, "grid");
        let skewed: Vec<f64> = grid.iter().map(|x| x * x).collect();
        assert!(ks_uniform_distance(&skewed) > 1.95 / (1000f64).sqrt());
        assert_eq!(ks_uniform_distance(&[]), 1.0);
    }

    #[test]
    fn two_sample_ks_detects_shift() {
        let a: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.0001).collect();
        assert_same_distribution(&a, &b, "identical-ish");
        let shifted: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
        assert!(ks_distance(&a, &shifted) > 0.4);
    }

    #[test]
    fn determinism_harness_replays_seeded_rng() {
        assert_deterministic(3, "seeded-rng", || {
            let mut rng = StdRng::seed_from_u64(42);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<u64>>()
        });
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn determinism_harness_catches_divergence() {
        let mut x = 0u64;
        assert_deterministic(2, "counter", move || {
            x += 1;
            x
        });
    }

    #[test]
    fn coverage_check_gates_on_nominal_rate() {
        let mut ok = CoverageCheck::new();
        for i in 0..1000 {
            // 97% of intervals cover; nominal 95% passes.
            let truth = 0.0;
            let miss = i % 100 < 3;
            ok.record(if miss { 10.0 } else { 0.1 }, 1.0, truth);
        }
        assert!((ok.coverage() - 0.97).abs() < 1e-9);
        ok.assert_at_least(0.95, "conservative");
        let mut bad = CoverageCheck::new();
        for i in 0..1000 {
            let miss = i % 10 < 3; // 70% coverage vs nominal 95%.
            bad.record(if miss { 10.0 } else { 0.1 }, 1.0, 0.0);
        }
        let panicked = std::panic::catch_unwind(move || bad.assert_at_least(0.95, "permissive"));
        assert!(panicked.is_err());
    }

    #[test]
    fn stress_harness_runs_every_op_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        stress_concurrent(8, 500, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8 * 500);
    }

    #[test]
    fn stress_harness_propagates_op_panics() {
        let panicked = std::panic::catch_unwind(|| {
            stress_concurrent(2, 10, |t, i| {
                assert!(!(t == 1 && i == 5), "injected");
            });
        });
        assert!(panicked.is_err());
    }

    #[test]
    fn interleaver_runs_steps_in_script_order() {
        let il = Interleaver::new();
        let log = parking_lot::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                for &n in &[1usize, 2, 5] {
                    il.at(n, || log.lock().push(n));
                }
            });
            s.spawn(|| {
                for &n in &[0usize, 3, 4] {
                    il.at(n, || log.lock().push(n));
                }
            });
        });
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4, 5]);
    }

    /// The settled-prefix contract of `storm_core::DeltaBuffer` under
    /// scripted insert/observe interleavings: a reader racing the writer
    /// sees (a) a snapshot that is exactly the settled prefix — never a
    /// torn or reordered item, (b) a monotone published length, and (c)
    /// each settled item exactly once through the incremental matcher.
    /// Two schedules bracket the race window (reader between writes vs.
    /// reader before the first write), and each schedule's observation
    /// sequence is exactly reproducible — the scripted stand-in for a
    /// loom interleaving search over the Release-store/Acquire-load pair
    /// in `DeltaBuffer::push`/`len`.
    #[test]
    fn delta_buffer_settled_prefix_under_scripted_interleavings() {
        use storm_core::DeltaBuffer;
        use storm_geo::{Point2, Rect};

        fn run_schedule(writer_steps: [usize; 3], reader_steps: [usize; 3]) -> Vec<usize> {
            let il = Interleaver::new();
            let buf: DeltaBuffer<2> = DeltaBuffer::default();
            let everywhere =
                Rect::new(Point2::xy(0.0, 0.0), Point2::xy(10.0, 10.0)).expect("valid rect");
            let mut lens = Vec::new();
            let mut matched = Vec::new();
            let mut watermark = 0usize;
            std::thread::scope(|s| {
                let il = &il;
                let buf = &buf;
                s.spawn(move || {
                    for (k, &step) in writer_steps.iter().enumerate() {
                        il.at(step, || {
                            buf.push(Item::new(Point2::xy(k as f64, k as f64), k as u64));
                        });
                    }
                });
                for &step in &reader_steps {
                    let (n, snap, wm) = il.at(step, || {
                        let n = buf.len();
                        let snap = buf.snapshot();
                        let wm = buf.scan_matches(watermark, &everywhere, &mut matched);
                        (n, snap, wm)
                    });
                    assert_eq!(snap.len(), n, "snapshot is not the settled prefix");
                    for (i, item) in snap.iter().enumerate() {
                        assert_eq!(item.id, i as u64, "torn or reordered settled item");
                    }
                    assert_eq!(wm, n, "matcher watermark diverged from published len");
                    watermark = wm;
                    lens.push(n);
                }
            });
            // The incremental matcher saw every settled item exactly once,
            // in push order.
            let settled = *lens.last().expect("schedule has reader steps");
            let seen: Vec<u64> = matched.iter().map(|m| m.id).collect();
            let expect: Vec<u64> = (0..settled as u64).collect();
            assert_eq!(seen, expect, "matcher repeated or skipped a settled item");
            assert!(lens.windows(2).all(|w| w[0] <= w[1]), "len not monotone");
            lens
        }

        watchdog(Duration::from_secs(30), "scripted-interleavings", || {
            // Reader observes between writes: each step settles one more item.
            assert_deterministic(3, "schedule-interleaved", || {
                run_schedule([0, 2, 4], [1, 3, 5])
            });
            // Reader leads, writer lands two in a row mid-schedule.
            assert_deterministic(3, "schedule-reader-first", || {
                run_schedule([1, 2, 4], [0, 3, 5])
            });
        });
    }

    #[test]
    fn watchdog_passes_fast_work_and_propagates_panics() {
        let v = watchdog(Duration::from_secs(5), "fast", || 7u32);
        assert_eq!(v, 7);
        let hung = std::panic::catch_unwind(|| {
            watchdog(Duration::from_millis(50), "slow", || {
                std::thread::sleep(Duration::from_secs(2));
            });
        });
        assert!(hung.is_err());
        let inner = std::panic::catch_unwind(|| {
            watchdog(Duration::from_secs(5), "inner", || panic!("boom"));
        });
        assert!(inner.is_err());
    }
}
