//! Distributed spatial online sampling — the cluster setting.
//!
//! STORM "builds on a cluster of commodity machines to achieve its
//! scalability", and §3.1 notes that "distributed R-trees are used when
//! applying the above idea in a distributed cluster setting" and that "a
//! distributed Hilbert R-tree is used to work with the underlying
//! distributed cluster". This module simulates that deployment:
//!
//! * the data is **range-partitioned along the Hilbert curve** into
//!   contiguous segments of equal cardinality — each simulated machine
//!   (shard) owns one curve segment and indexes it with its own
//!   [`RsTree`];
//! * a query is **scattered**: each shard computes its exact partial count
//!   `q_s` from aggregate counts (cheap, `O(r)` per shard);
//! * samples are **gathered** by drawing a shard proportionally to its
//!   remaining count and pulling the next sample from that shard's local
//!   stream. Because shards partition the data, the merged
//!   without-replacement stream is a uniform WOR stream of the global
//!   result — no cross-shard deduplication is needed.
//!
//! Per-shard I/O counters make both cost views measurable: the *sum* is
//! total cluster work, the *maximum* is the critical path (what a user
//! would wait for with perfectly parallel shards).

use rand::{Rng, RngExt};
use storm_geo::curve::{HilbertCurve, SpaceFillingCurve};
use storm_geo::{Point2, Rect2};
use storm_rtree::Item;

use crate::rs_tree::{RsTree, RsTreeConfig};
use crate::{SampleMode, SamplerKind, SpatialSampler};

/// A simulated cluster: Hilbert-range-partitioned shards, each with its
/// own RS-tree.
#[derive(Debug)]
pub struct DistributedRsTree {
    shards: Vec<RsTree<2>>,
    /// Upper Hilbert-key boundary (exclusive) of each shard except the
    /// last, in ascending order; routing is a binary search over these.
    boundaries: Vec<u64>,
    curve: HilbertCurve,
    bounds: Rect2,
}

impl DistributedRsTree {
    /// Partitions `items` into `num_shards` equal-cardinality Hilbert-curve
    /// segments and bulk loads one RS-tree per shard.
    ///
    /// # Panics
    /// Panics when `num_shards == 0`.
    pub fn bulk_load(mut items: Vec<Item<2>>, num_shards: usize, cfg: RsTreeConfig) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        // storm-lint: allow(R1): constant order 16 is within HilbertCurve's static range
        let curve = HilbertCurve::new(16).expect("order 16 is valid");
        // Fold the bounding box directly — no intermediate point vector.
        let bounds = items
            .iter()
            .fold(None::<Rect2>, |acc, it| match acc {
                Some(r) => Some(r.enlarged_to_point(&it.point)),
                None => Some(Rect2::from_point(it.point)),
            })
            .unwrap_or_else(|| Rect2::from_point(Point2::xy(0.0, 0.0)));
        items.sort_by_cached_key(|it| curve.index_of_point(&bounds, &it.point));

        let per_shard = items.len().div_ceil(num_shards).max(1);
        let mut shards = Vec::with_capacity(num_shards);
        let mut boundaries = Vec::with_capacity(num_shards.saturating_sub(1));
        let mut start = 0usize;
        for s in 0..num_shards {
            let end = ((s + 1) * per_shard).min(items.len());
            // storm-analyzer: allow(A4): bulk-load sharding — one chunk copy per shard per build, never per draw
            let chunk: Vec<Item<2>> = items[start.min(end)..end].to_vec();
            if s + 1 < num_shards {
                // The boundary key is the first key of the *next* chunk (or
                // the max key when this shard absorbed the tail).
                let key = items
                    .get(end)
                    .map_or(u64::MAX, |it| curve.index_of_point(&bounds, &it.point));
                boundaries.push(key);
            }
            shards.push(RsTree::bulk_load(chunk, cfg));
            start = end;
        }
        DistributedRsTree {
            shards,
            boundaries,
            curve,
            bounds,
        }
    }

    /// Number of shards (simulated machines).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total points across the cluster.
    pub fn len(&self) -> usize {
        self.shards.iter().map(RsTree::len).sum()
    }

    /// True when the cluster holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard a point routes to.
    pub fn shard_of(&self, p: &Point2) -> usize {
        let key = self.curve.index_of_point(&self.bounds, p);
        self.boundaries.partition_point(|&b| b <= key)
    }

    /// Read access to one shard.
    pub fn shard(&self, s: usize) -> &RsTree<2> {
        &self.shards[s]
    }

    /// Exact `|P ∩ Q|` (scatter the count, gather the sum).
    pub fn exact_count(&self, query: &Rect2) -> usize {
        self.shards.iter().map(|s| s.exact_count(query)).sum()
    }

    /// Total block reads across all shards (cluster work).
    pub fn total_reads(&self) -> u64 {
        self.shards.iter().map(|s| s.io().reads()).sum()
    }

    /// Largest per-shard block-read count (the critical path under
    /// perfectly parallel shards).
    pub fn max_shard_reads(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.io().reads())
            .max()
            .unwrap_or(0)
    }

    /// Resets every shard's I/O counter.
    pub fn reset_io(&self) {
        for s in &self.shards {
            s.io().reset();
        }
    }

    /// Prefills every shard's node buffers (construction-time sampling).
    pub fn prefill(&mut self, rng: &mut dyn Rng) {
        for s in &mut self.shards {
            s.prefill(&mut *rng);
        }
    }

    /// Routes an insert to its Hilbert segment.
    ///
    /// Note: unlike a production system we do not re-balance segments; a
    /// heavily skewed insert stream will grow one shard (the paper's
    /// system has the same property between re-partitions).
    pub fn insert(&mut self, item: Item<2>, rng: &mut dyn Rng) {
        let s = self.shard_of(&item.point);
        self.shards[s].insert(item, rng);
    }

    /// Removes a point from its shard. Returns `false` when absent.
    pub fn remove(&mut self, point: &Point2, id: u64, rng: &mut dyn Rng) -> bool {
        let s = self.shard_of(point);
        if self.shards[s].remove(point, id, rng) {
            return true;
        }
        // Boundary drift after inserts can leave a point one shard off;
        // fall back to a cluster-wide attempt (rare, still correct).
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if i != s && shard.remove(point, id, rng) {
                return true;
            }
        }
        false
    }

    /// Decomposes the cluster into its shards and routing state so the
    /// parallel executor can move each shard into its own worker thread.
    pub(crate) fn into_parts(self) -> (Vec<RsTree<2>>, Vec<u64>, HilbertCurve, Rect2) {
        (self.shards, self.boundaries, self.curve, self.bounds)
    }

    /// Reassembles a cluster from parts produced by
    /// [`DistributedRsTree::into_parts`] (shard order must be preserved).
    pub(crate) fn from_parts(
        shards: Vec<RsTree<2>>,
        boundaries: Vec<u64>,
        curve: HilbertCurve,
        bounds: Rect2,
    ) -> Self {
        DistributedRsTree {
            shards,
            boundaries,
            curve,
            bounds,
        }
    }

    /// Moves every shard into its own worker thread, returning the
    /// parallel scatter-gather executor. [`crate::ParallelRsCluster::join`]
    /// reverses the move.
    pub fn into_parallel(self) -> crate::ParallelRsCluster {
        crate::ParallelRsCluster::from_distributed(self)
    }

    /// Opens a scatter/gather sampling stream for `query`.
    pub fn sampler(&mut self, query: Rect2, mode: SampleMode) -> DistributedSampler<'_> {
        // Scatter: open a local stream per shard (each computes its own
        // canonical count); prune shards with empty intersections.
        let mut locals = Vec::new();
        for shard in &mut self.shards {
            let local = shard.sampler(query, mode);
            if local.result_size().unwrap_or(0) > 0 {
                locals.push(local);
            }
        }
        let remaining: Vec<u64> = locals
            .iter()
            .map(|l| l.result_size().unwrap_or(0) as u64)
            .collect();
        let weights = remaining.clone();
        let total: u64 = remaining.iter().sum();
        DistributedSampler {
            locals,
            weights,
            remaining,
            total_remaining: total,
            total: total as usize,
            mode,
        }
    }
}

/// The gather side of distributed sampling: merges per-shard streams into
/// one uniform stream by count-weighted shard selection.
#[derive(Debug)]
pub struct DistributedSampler<'a> {
    locals: Vec<crate::rs_tree::RsSampler<'a, 2>>,
    /// Initial per-shard result counts.
    weights: Vec<u64>,
    /// Unemitted counts (for without-replacement).
    remaining: Vec<u64>,
    total_remaining: u64,
    total: usize,
    mode: SampleMode,
}

impl SpatialSampler<2> for DistributedSampler<'_> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<2>> {
        let rng = &mut *rng;
        if self.locals.is_empty() {
            return None;
        }
        match self.mode {
            SampleMode::WithReplacement => {
                // Shard ∝ initial count, then an independent local draw.
                let total: u64 = self.weights.iter().sum();
                let mut target = rng.random_range(0..total);
                for (i, &w) in self.weights.iter().enumerate() {
                    if target < w {
                        return self.locals[i].next_sample(rng);
                    }
                    target -= w;
                }
                unreachable!("weighted walk within total")
            }
            SampleMode::WithoutReplacement => {
                if self.total_remaining == 0 {
                    return None;
                }
                // Shard ∝ remaining count keeps the merged stream uniform
                // over the unseen points (shards are disjoint).
                let mut target = rng.random_range(0..self.total_remaining);
                for i in 0..self.locals.len() {
                    let w = self.remaining[i];
                    if target < w {
                        match self.locals[i].next_sample(rng) {
                            Some(item) => {
                                self.remaining[i] -= 1;
                                self.total_remaining -= 1;
                                return Some(item);
                            }
                            None => {
                                // Defensive: local stream dried early.
                                self.total_remaining -= self.remaining[i];
                                self.remaining[i] = 0;
                                return self.next_sample(rng);
                            }
                        }
                    }
                    target -= w;
                }
                unreachable!("weighted walk within total_remaining")
            }
        }
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::RsTree
    }

    fn result_size(&self) -> Option<usize> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashSet;

    fn grid_items(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect()
    }

    /// Off-grid insert location for the update test.
    #[allow(non_snake_case)]
    fn Item2_xy(j: u64) -> Point2 {
        Point2::xy(50.05 + (j % 9) as f64 * 0.1, 10.0 + (j / 9) as f64 * 1e-4)
    }

    fn cluster(n: usize, shards: usize) -> DistributedRsTree {
        DistributedRsTree::bulk_load(grid_items(n), shards, RsTreeConfig::with_fanout(16))
    }

    #[test]
    fn partitioning_is_balanced() {
        let c = cluster(10_000, 8);
        assert_eq!(c.num_shards(), 8);
        assert_eq!(c.len(), 10_000);
        for s in 0..8 {
            let size = c.shard(s).len();
            assert!(
                (1000..=1500).contains(&size),
                "shard {s} holds {size} points"
            );
        }
    }

    #[test]
    fn hilbert_partitioning_gives_spatially_compact_shards() {
        // A small query region should intersect few shards.
        let c = cluster(10_000, 16);
        let q = Rect2::from_corners(Point2::xy(10.0, 10.0), Point2::xy(20.0, 20.0));
        let touched = (0..16).filter(|&s| c.shard(s).exact_count(&q) > 0).count();
        assert!(touched <= 6, "query touched {touched}/16 shards");
    }

    #[test]
    fn wor_stream_is_exactly_the_query_result() {
        let mut c = cluster(5_000, 5);
        let q = Rect2::from_corners(Point2::xy(13.0, 7.0), Point2::xy(61.0, 29.0));
        let expected: HashSet<u64> = grid_items(5_000)
            .iter()
            .filter(|it| q.contains_point(&it.point))
            .map(|it| it.id)
            .collect();
        assert_eq!(c.exact_count(&q), expected.len());
        let mut s = c.sampler(q, SampleMode::WithoutReplacement);
        assert_eq!(s.result_size(), Some(expected.len()));
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = HashSet::new();
        while let Some(item) = s.next_sample(&mut rng) {
            assert!(got.insert(item.id), "duplicate across shards: {}", item.id);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn first_sample_is_uniform_across_shards() {
        // Chi-square on the first draw; items live on different shards, so
        // shard weighting errors would show up immediately.
        let items = grid_items(900);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 0.0)); // one row: 100 pts
        let trials = 30_000;
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let mut c =
                DistributedRsTree::bulk_load(items.clone(), 6, RsTreeConfig::with_fanout(8));
            let mut s = c.sampler(q, SampleMode::WithoutReplacement);
            let first = s.next_sample(&mut rng).unwrap();
            *counts.entry(first.id).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 100);
        let expected = trials as f64 / 100.0;
        let chi: f64 = counts
            .values()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 99 dof, p = 0.001 critical ≈ 148.2.
        assert!(chi < 148.2, "chi² = {chi}");
    }

    #[test]
    fn critical_path_shrinks_with_more_shards() {
        // The same sampling workload spreads across shards: max-per-shard
        // I/O (the parallel latency) must drop as the cluster grows.
        let items = grid_items(40_000);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 200.0));
        let mut rng = StdRng::seed_from_u64(3);
        let mut max_reads = Vec::new();
        for shards in [1usize, 4, 16] {
            let mut c =
                DistributedRsTree::bulk_load(items.clone(), shards, RsTreeConfig::with_fanout(16));
            c.reset_io();
            let mut s = c.sampler(q, SampleMode::WithoutReplacement);
            s.draw(2_000, &mut rng);
            drop(s);
            max_reads.push(c.max_shard_reads());
        }
        assert!(
            max_reads[2] < max_reads[0],
            "critical path did not shrink: {max_reads:?}"
        );
    }

    #[test]
    fn updates_route_to_the_right_shard_and_stay_correct() {
        let mut c = cluster(2_000, 4);
        let mut rng = StdRng::seed_from_u64(4);
        // Insert a cluster of new points at off-grid coordinates so the
        // probe rectangle below contains only them.
        for j in 0..100u64 {
            c.insert(Item::new(Item2_xy(j), 10_000 + j), &mut rng);
        }
        assert_eq!(c.len(), 2_100);
        let q = Rect2::from_corners(Point2::xy(50.01, 9.9), Point2::xy(50.99, 10.1));
        assert_eq!(c.exact_count(&q), 100);
        // Remove half of them again.
        for j in 0..50u64 {
            let p = Item2_xy(j);
            assert!(c.remove(&p, 10_000 + j, &mut rng), "lost insert {j}");
        }
        assert_eq!(c.exact_count(&q), 50);
        // Stream over the region is exact.
        let mut s = c.sampler(q, SampleMode::WithoutReplacement);
        let mut n = 0;
        while s.next_sample(&mut rng).is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn single_shard_cluster_degenerates_to_plain_rs() {
        let mut c = cluster(1_000, 1);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(20.0, 5.0));
        let expected = c.exact_count(&q);
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = c.sampler(q, SampleMode::WithoutReplacement);
        assert_eq!(s.draw(10_000, &mut rng).len(), expected);
    }

    #[test]
    fn with_replacement_streams_do_not_exhaust() {
        let mut c = cluster(1_000, 3);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(50.0, 9.0));
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = c.sampler(q, SampleMode::WithReplacement);
        for _ in 0..3_000 {
            let item = s.next_sample(&mut rng).unwrap();
            assert!(q.contains_point(&item.point));
        }
    }

    #[test]
    fn empty_query_yields_empty_stream() {
        let mut c = cluster(500, 4);
        let q = Rect2::from_corners(Point2::xy(900.0, 900.0), Point2::xy(901.0, 901.0));
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = c.sampler(q, SampleMode::WithoutReplacement);
        assert!(s.next_sample(&mut rng).is_none());
        assert_eq!(s.result_size(), Some(0));
    }
}
