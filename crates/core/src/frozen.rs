//! Frozen sampling kernels: alias descents and arena-range draws over the
//! read-optimized [`FrozenRTree`] layout.
//!
//! The boxed samplers ([`crate::RsSampler`], [`crate::LsSampler`]) pay
//! per-draw constant factors that have nothing to do with the paper's
//! I/O bounds: `Vec<Node>` pointer chasing, `HashMap<NodeId, Vec<Item>>`
//! buffer lookups, and `HashSet<u64>` seen-filters. The frozen kernels
//! exploit the implicit layout's core property — **a canonical node is a
//! contiguous arena range** — to replace all of that with arithmetic:
//!
//! * **without replacement** — each canonical part keeps a dense
//!   `Vec<u32>` permutation of its arena offsets, consumed by lazy
//!   partial Fisher–Yates: one `random_range`, one swap, one read per
//!   sample, with *structural* distinctness (the parts partition `R_Q`,
//!   so no `HashSet` dedup is ever needed). Part selection keeps the
//!   boxed stream's exact static-selector + dynamic-thinning
//!   bookkeeping, so the two streams are distribution-identical.
//! * **with replacement** — a part is drawn by the shared alias
//!   selector, then a root-to-leaf **alias descent**
//!   ([`FrozenRsTree::descend`]) resolves it to an item: at each inner
//!   node the child is chosen in O(1) from a per-node precomputed alias
//!   table (only "ragged" right-spine nodes need one; every other node's
//!   children are count-equal and use a bare `random_range`).
//!
//! I/O accounting: opening a stream charges the cone walk; draws are
//! charged at arena-block granularity — one read per `fanout` samples —
//! which is the `O(k/B)` cost the paper proves for buffered sampling.

use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use storm_geo::Rect;
use storm_rtree::{FrozenCone, FrozenConeEntry, FrozenRTree, Item};

use crate::ls_tree::{level_of, level_u32, LsTree};
use crate::query_first::QueryFirst;
use crate::rs_tree::RsTree;
use crate::weighted::{SelectorKind, WeightedSelector};
use crate::{SampleMode, SamplerKind, SpatialSampler};

/// A frozen RS-tree: the SoA arena plus per-node alias tables for O(1)
/// weighted child choice during sampling descents.
///
/// Produced by [`RsTree::freeze`]. The frozen form is immutable and
/// shareable (`Arc`); samplers opened from it never borrow the tree
/// mutably, so any number of concurrent streams can run over one index.
#[derive(Debug)]
pub struct FrozenRsTree<const D: usize> {
    tree: Arc<FrozenRTree<D>>,
    /// Flat node-indexed alias tables (`level_base[l] + i`). `Some` only
    /// for nodes whose children cover unequal arena ranges — the right
    /// spine; every other node's children are count-equal and descend
    /// with a bare uniform pick.
    alias: Vec<Option<WeightedSelector>>,
    /// Start of each level's run in `alias`.
    level_base: Vec<usize>,
}

impl<const D: usize> FrozenRsTree<D> {
    /// Wraps a frozen arena, precomputing the descent alias tables.
    pub fn new(tree: FrozenRTree<D>) -> Self {
        let tree = Arc::new(tree);
        let mut level_base = Vec::with_capacity(tree.height());
        let mut alias: Vec<Option<WeightedSelector>> = Vec::with_capacity(tree.node_count());
        for level in 0..tree.height() {
            level_base.push(alias.len());
            for idx in 0..tree.nodes_at(level) {
                if level == 0 {
                    // Leaves resolve by a direct range draw.
                    alias.push(None);
                    continue;
                }
                let kids = tree.children(level, idx);
                let weights: Vec<u64> = kids
                    .map(|c| {
                        let (lo, hi) = tree.node_range(level - 1, c);
                        (hi - lo) as u64
                    })
                    // storm-analyzer: allow(A4): freeze-time construction, once per ragged node per snapshot — not per-draw work
                    .collect();
                let ragged = weights.windows(2).any(|w| w[0] != w[1]);
                alias.push(if ragged {
                    WeightedSelector::new(weights, SelectorKind::Alias)
                } else {
                    None
                });
            }
        }
        FrozenRsTree {
            tree,
            alias,
            level_base,
        }
    }

    /// The underlying frozen arena.
    pub fn tree(&self) -> &FrozenRTree<D> {
        &self.tree
    }

    /// A shared handle to the arena.
    pub fn tree_handle(&self) -> Arc<FrozenRTree<D>> {
        Arc::clone(&self.tree)
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Number of nodes carrying a materialised alias table.
    pub fn alias_nodes(&self) -> usize {
        self.alias.iter().filter(|a| a.is_some()).count()
    }

    /// Exact `|P ∩ Q|` from the implicit counts.
    pub fn exact_count(&self, query: &Rect<D>) -> usize {
        self.tree.count_in(query)
    }

    /// Uniform draw of an arena index from the subtree rooted at
    /// level-`level` node `idx`, by top-down descent: each inner step is
    /// an O(1) alias pick (or a bare uniform pick where children are
    /// count-equal), the leaf step is a range draw.
    pub fn descend(&self, level: usize, idx: usize, rng: &mut dyn Rng) -> usize {
        let rng = &mut *rng;
        let (mut level, mut idx) = (level, idx);
        while level > 0 {
            let kids = self.tree.children(level, idx);
            let child = match &self.alias[self.level_base[level] + idx] {
                Some(sel) => sel.pick(rng),
                None => rng.random_range(0..kids.len()),
            };
            idx = kids.start + child;
            level -= 1;
        }
        let (lo, hi) = self.tree.node_range(0, idx);
        lo + rng.random_range(0..hi - lo)
    }

    /// Opens a sampling stream for `query` over the frozen layout.
    ///
    /// Unlike [`RsTree::sampler`], this takes `&Arc<Self>` — the stream
    /// owns a handle instead of a mutable borrow, because frozen draws
    /// consume no shared state.
    pub fn sampler(self: &Arc<Self>, query: &Rect<D>, mode: SampleMode) -> FrozenSampler<D> {
        let cone = self.tree.cone(query);
        FrozenSampler::new(Arc::clone(self), cone, mode)
    }
}

impl<const D: usize> RsTree<D> {
    /// Snapshots this RS-tree into its read-optimized frozen form.
    ///
    /// The frozen kernel replaces the sample buffers entirely: where the
    /// boxed stream pops `HashMap<NodeId, Vec<Item>>` buffers refilled by
    /// descent, the frozen stream draws straight from arena ranges, so
    /// there is nothing to replenish and no mutable state to share.
    pub fn freeze(&self) -> FrozenRsTree<D> {
        FrozenRsTree::new(self.tree.freeze())
    }
}

impl<const D: usize> LsTree<D> {
    /// Snapshots every level of the LS-forest into frozen arenas.
    pub fn freeze(&self) -> FrozenLsForest<D> {
        FrozenLsForest {
            levels: self.levels.iter().map(storm_rtree::RTree::freeze).collect(),
            salt: self.salt,
        }
    }
}

/// The RS-tree's frozen online sample stream for one query.
///
/// Holds an `Arc` of the frozen index (no lifetime ties), the query's
/// cone as arena ranges, and — for without-replacement streams — one
/// dense `u32` permutation per part, lazily materialised on first touch.
#[derive(Debug)]
pub struct FrozenSampler<const D: usize> {
    rs: Arc<FrozenRsTree<D>>,
    mode: SampleMode,
    /// Fully-contained canonical nodes (arena ranges).
    parts: Vec<FrozenConeEntry>,
    /// Qualifying items of cut leaves, as one aggregated part (arena
    /// indices; doubles as that part's Fisher–Yates permutation).
    singles: Vec<u32>,
    /// Part selector over `parts` weights (+ the singles part last, when
    /// non-empty).
    selector: Option<WeightedSelector>,
    /// Unemitted points per part (without-replacement only).
    remaining: Vec<u64>,
    total_remaining: u64,
    total: usize,
    /// Per-node-part local-offset permutations (without-replacement
    /// only), lazily filled: `parts[i]`'s entries are offsets into its
    /// arena range. Dense `Vec<u32>` — the frozen replacement for the
    /// boxed path's `HashMap` buffers and `HashSet` seen-filter.
    perms: Vec<Vec<u32>>,
    /// Draws since the last charged arena-block read (sequential path).
    draws_since_read: usize,
}

impl<const D: usize> FrozenSampler<D> {
    fn new(rs: Arc<FrozenRsTree<D>>, cone: FrozenCone, mode: SampleMode) -> Self {
        let FrozenCone {
            nodes,
            singles,
            total,
        } = cone;
        let mut weights: Vec<u64> = nodes.iter().map(|e| (e.hi - e.lo) as u64).collect();
        let singles: Vec<u32> = singles
            .into_iter()
            // storm-lint: allow(R1): FrozenRTree::build asserts the arena holds ≤ u32::MAX items, so every index fits
            .map(|i| u32::try_from(i).expect("frozen arena bounded to u32 indices"))
            .collect();
        if !singles.is_empty() {
            weights.push(singles.len() as u64);
        }
        let selector = WeightedSelector::new(weights, SelectorKind::Alias);
        let remaining = match (mode, &selector) {
            (SampleMode::WithoutReplacement, Some(s)) => s.weights().to_vec(),
            _ => Vec::new(),
        };
        let perms = match mode {
            SampleMode::WithoutReplacement => vec![Vec::new(); nodes.len()],
            SampleMode::WithReplacement => Vec::new(),
        };
        FrozenSampler {
            rs,
            mode,
            parts: nodes,
            singles,
            selector,
            remaining,
            total_remaining: total as u64,
            total,
            perms,
            draws_since_read: 0,
        }
    }

    /// One with-replacement draw: part ∝ count by the alias selector,
    /// then an alias descent (node part) or uniform pick (singles part).
    fn draw_wr(&mut self, rng: &mut dyn Rng) -> Option<usize> {
        let selector = self.selector.as_ref()?;
        let rng = &mut *rng;
        let i = selector.pick(rng);
        match self.parts.get(i) {
            Some(e) => Some(self.rs.descend(e.level, e.idx, rng)),
            None => {
                let j = rng.random_range(0..self.singles.len());
                Some(self.singles[j] as usize)
            }
        }
    }

    /// One without-replacement draw: the boxed stream's exact
    /// static-selector + dynamic-thinning part bookkeeping, resolved by
    /// a partial Fisher–Yates pop over the part's dense permutation.
    fn draw_wor(&mut self, rng: &mut dyn Rng) -> Option<usize> {
        let selector = self.selector.as_ref()?;
        let rng = &mut *rng;
        let mut spins = 0u64;
        loop {
            spins += 1;
            assert!(
                spins <= 100_000_000,
                "frozen WOR sampling failed to make progress \
                 (remaining {} of {}; {} parts)",
                self.total_remaining,
                self.total,
                self.parts.len() + usize::from(!self.singles.is_empty())
            );
            if self.total_remaining == 0 {
                return None;
            }
            let i = selector.pick(rng);
            // Dynamic thinning: the static selector draws ∝ the original
            // count; accepting with probability remaining/original makes
            // the effective weight the remaining count (uniformity over
            // the unseen points, exactly as in the boxed stream).
            let original = selector.weight(i);
            let rem = self.remaining[i];
            if rem == 0 {
                continue;
            }
            if rem < original && rng.random_range(0..original) >= rem {
                continue;
            }
            let left = rem as usize;
            let arena = match self.parts.get(i) {
                Some(e) => {
                    let perm = &mut self.perms[i];
                    if perm.is_empty() {
                        // storm-lint: allow(R1): FrozenRTree::build asserts the arena holds ≤ u32::MAX items, so every range fits
                        let len = u32::try_from(e.hi - e.lo).expect("fits u32");
                        perm.extend(0..len);
                    }
                    let j = rng.random_range(0..left);
                    perm.swap(j, left - 1);
                    e.lo + perm[left - 1] as usize
                }
                None => {
                    let j = rng.random_range(0..left);
                    self.singles.swap(j, left - 1);
                    self.singles[left - 1] as usize
                }
            };
            self.remaining[i] -= 1;
            self.total_remaining -= 1;
            return Some(arena);
        }
    }

    fn draw_arena(&mut self, rng: &mut dyn Rng) -> Option<usize> {
        match self.mode {
            SampleMode::WithReplacement => self.draw_wr(rng),
            SampleMode::WithoutReplacement => self.draw_wor(rng),
        }
    }
}

impl<const D: usize> SpatialSampler<D> for FrozenSampler<D> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        let arena = self.draw_arena(rng)?;
        // Arena-block accounting: one read buys a block of `fanout`
        // consecutive draws (the O(k/B) amortisation the boxed buffers
        // realise with explicit refills).
        if self.draws_since_read == 0 {
            self.rs.tree.io().record_reads(1);
        }
        self.draws_since_read += 1;
        if self.draws_since_read >= self.rs.tree.fanout() {
            self.draws_since_read = 0;
        }
        Some(self.rs.tree.item(arena))
    }

    /// Batched draw: the tight-loop kernel. Emits the *identical* sample
    /// sequence as `k × next_sample` (both spend the RNG the same way);
    /// the win is one amortised I/O charge per block and no per-call
    /// state to re-establish.
    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<D>>, k: usize) -> usize {
        let before = buf.len();
        buf.reserve(k);
        for _ in 0..k {
            let Some(arena) = self.draw_arena(rng) else {
                break;
            };
            buf.push(self.rs.tree.item(arena));
        }
        let got = buf.len() - before;
        if got > 0 {
            let fanout = self.rs.tree.fanout();
            // Continue the sequential path's block ledger so interleaved
            // next_sample/next_batch calls charge consistently.
            let first = fanout - self.draws_since_read;
            let blocks = if got <= first {
                u64::from(self.draws_since_read == 0)
            } else {
                u64::from(self.draws_since_read == 0) + ((got - first).div_ceil(fanout) as u64)
            };
            self.rs.tree.io().record_reads(blocks.max(1));
            self.draws_since_read = (self.draws_since_read + got) % fanout;
        }
        got
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::RsTree
    }

    fn result_size(&self) -> Option<usize> {
        Some(self.total)
    }
}

/// A frozen LS-forest: every level's R-tree snapshotted into an arena.
///
/// Produced by [`LsTree::freeze`].
#[derive(Debug)]
pub struct FrozenLsForest<const D: usize> {
    levels: Vec<FrozenRTree<D>>,
    salt: u64,
}

impl<const D: usize> FrozenLsForest<D> {
    /// Number of levels in the forest.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The frozen arena of level `i`.
    pub fn level(&self, i: usize) -> &FrozenRTree<D> {
        &self.levels[i]
    }

    /// Opens a sampling stream for `query` over the frozen forest.
    pub fn sampler(self: &Arc<Self>, query: Rect<D>) -> FrozenLsSampler<D> {
        FrozenLsSampler {
            forest: Arc::clone(self),
            query,
            next_level: self.levels.len() as isize - 1,
            started: false,
            buffer: Vec::new(),
            pos: 0,
        }
    }
}

/// The LS-tree's frozen online sample stream: identical level-descent
/// semantics to [`crate::LsSampler`], range-reporting each level from the
/// frozen arena instead of the boxed tree.
#[derive(Debug)]
pub struct FrozenLsSampler<const D: usize> {
    forest: Arc<FrozenLsForest<D>>,
    query: Rect<D>,
    next_level: isize,
    started: bool,
    buffer: Vec<Item<D>>,
    pos: usize,
}

impl<const D: usize> FrozenLsSampler<D> {
    fn descend(&mut self, rng: &mut dyn Rng) -> bool {
        let rng = &mut *rng;
        let forest = Arc::clone(&self.forest);
        let salt = forest.salt;
        loop {
            if self.next_level < 0 {
                return false;
            }
            let level = self.next_level as usize;
            self.next_level -= 1;
            let top = level + 1 == forest.levels.len();
            self.buffer.clear();
            self.pos = 0;
            let buffer = &mut self.buffer;
            forest.levels[level].for_each_in(&self.query, |item| {
                // Points that also live in a higher tree were already
                // reported there; membership is recomputable from the id.
                if top || level_of(item.id, salt) == level_u32(level) {
                    buffer.push(item);
                }
            });
            if self.buffer.is_empty() {
                continue;
            }
            self.buffer.shuffle(rng);
            return true;
        }
    }
}

impl<const D: usize> SpatialSampler<D> for FrozenLsSampler<D> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        if !self.started {
            self.started = true;
            if !self.descend(rng) {
                return None;
            }
        }
        loop {
            if self.pos < self.buffer.len() {
                let item = self.buffer[self.pos];
                self.pos += 1;
                return Some(item);
            }
            if !self.descend(rng) {
                return None;
            }
        }
    }

    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<D>>, k: usize) -> usize {
        let before = buf.len();
        if !self.started {
            self.started = true;
            if !self.descend(rng) {
                return 0;
            }
        }
        while buf.len() - before < k {
            let want = k - (buf.len() - before);
            let avail = self.buffer.len() - self.pos;
            if avail == 0 {
                if !self.descend(rng) {
                    break;
                }
                continue;
            }
            let take = want.min(avail);
            buf.extend_from_slice(&self.buffer[self.pos..self.pos + take]);
            self.pos += take;
        }
        buf.len() - before
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::LsTree
    }
}

/// Baseline SampleFirst over the frozen arena: uniform arena probes with
/// a dense bitset seen-filter (without replacement), replacing the boxed
/// variant's `HashSet<u64>`.
#[derive(Debug)]
pub struct FrozenSampleFirst<const D: usize> {
    tree: Arc<FrozenRTree<D>>,
    query: Rect<D>,
    mode: SampleMode,
    /// Probe budget per emitted sample before giving up (the baseline's
    /// Ω(n/|Q|) trials-per-sample cost is the point of E1/E2).
    probe_budget: usize,
    /// Bitset over arena slots already emitted (without replacement).
    seen: Vec<u64>,
}

impl<const D: usize> FrozenSampleFirst<D> {
    /// Creates the baseline sampler over a frozen arena.
    pub fn new(tree: Arc<FrozenRTree<D>>, query: Rect<D>, mode: SampleMode) -> Self {
        let words = match mode {
            SampleMode::WithoutReplacement => tree.len().div_ceil(64),
            SampleMode::WithReplacement => 0,
        };
        FrozenSampleFirst {
            tree,
            query,
            mode,
            probe_budget: 1_000_000,
            seen: vec![0u64; words],
        }
    }

    /// Overrides the probe budget (per emitted sample).
    pub fn with_probe_budget(mut self, budget: usize) -> Self {
        self.probe_budget = budget;
        self
    }

    fn probe(&mut self, rng: &mut dyn Rng, budget: usize) -> (Option<usize>, u64) {
        let rng = &mut *rng;
        let n = self.tree.len();
        if n == 0 {
            return (None, 0);
        }
        let mut probes = 0u64;
        for _ in 0..budget {
            probes += 1;
            let i = rng.random_range(0..n);
            if !self.tree.slot_in(i, &self.query) {
                continue;
            }
            if self.mode == SampleMode::WithoutReplacement {
                let (word, bit) = (i / 64, i % 64);
                if self.seen[word] & (1u64 << bit) != 0 {
                    continue;
                }
                self.seen[word] |= 1u64 << bit;
            }
            return (Some(i), probes);
        }
        (None, probes)
    }
}

impl<const D: usize> SpatialSampler<D> for FrozenSampleFirst<D> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        let (hit, probes) = self.probe(rng, self.probe_budget);
        self.tree.io().record_reads(probes);
        hit.map(|i| self.tree.item(i))
    }

    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<D>>, k: usize) -> usize {
        let before = buf.len();
        let mut budget = self.probe_budget.saturating_mul(k.max(1));
        let mut probes = 0u64;
        while buf.len() - before < k && budget > 0 {
            let (hit, spent) = self.probe(rng, budget);
            probes += spent;
            budget = budget.saturating_sub(spent.max(1) as usize);
            match hit {
                Some(i) => buf.push(self.tree.item(i)),
                None => break,
            }
        }
        self.tree.io().record_reads(probes);
        buf.len() - before
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::SampleFirst
    }
}

/// QueryFirst over the frozen arena: range-report from the SoA columns,
/// then stream a permutation (delegates to [`QueryFirst::from_results`]).
pub fn frozen_query_first<const D: usize>(
    tree: &FrozenRTree<D>,
    query: &Rect<D>,
    mode: SampleMode,
) -> QueryFirst<D> {
    QueryFirst::from_results(tree.query(query), mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rs_tree::RsTreeConfig;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::{HashMap, HashSet};
    use storm_geo::{Point2, Rect2};

    fn grid_items(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect()
    }

    fn rs(n: usize) -> RsTree<2> {
        RsTree::bulk_load(grid_items(n), RsTreeConfig::with_fanout(16))
    }

    #[test]
    fn frozen_query_matches_boxed_query() {
        let t = rs(3000);
        let f = t.freeze();
        for (a, b, c, d) in [
            (10.0, 5.0, 60.0, 25.0),
            (0.0, 0.0, 99.0, 29.0),
            (47.5, 12.5, 48.5, 13.5),
        ] {
            let q = Rect2::from_corners(Point2::xy(a, b), Point2::xy(c, d));
            let mut boxed: Vec<u64> = t.tree().query(&q).iter().map(|i| i.id).collect();
            let mut froz: Vec<u64> = f.tree().query(&q).iter().map(|i| i.id).collect();
            boxed.sort_unstable();
            froz.sort_unstable();
            assert_eq!(boxed, froz);
        }
    }

    #[test]
    fn wor_stream_is_a_permutation_at_three_seeds() {
        let t = rs(3000);
        let f = Arc::new(t.freeze());
        let q = Rect2::from_corners(Point2::xy(7.0, 3.0), Point2::xy(55.0, 21.0));
        let expected: HashSet<u64> = t.tree().query(&q).iter().map(|i| i.id).collect();
        for seed in [1u64, 77, 4242] {
            let mut s = f.sampler(&q, SampleMode::WithoutReplacement);
            assert_eq!(s.result_size(), Some(expected.len()));
            let mut rng = StdRng::seed_from_u64(seed);
            let mut got = HashSet::new();
            while let Some(item) = s.next_sample(&mut rng) {
                assert!(q.contains_point(&item.point));
                assert!(got.insert(item.id), "seed {seed}: duplicate {}", item.id);
            }
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn batched_stream_equals_sequential_stream() {
        // The frozen batch kernel consumes the RNG exactly like the
        // sequential path, so the emitted sequences must be identical.
        let t = rs(2000);
        let f = Arc::new(t.freeze());
        let q = Rect2::from_corners(Point2::xy(3.0, 2.0), Point2::xy(71.0, 17.0));
        for mode in [SampleMode::WithoutReplacement, SampleMode::WithReplacement] {
            let mut seq = Vec::new();
            let mut s1 = f.sampler(&q, mode);
            let mut rng1 = StdRng::seed_from_u64(9);
            for _ in 0..500 {
                match s1.next_sample(&mut rng1) {
                    Some(item) => seq.push(item.id),
                    None => break,
                }
            }
            let mut s2 = f.sampler(&q, mode);
            let mut rng2 = StdRng::seed_from_u64(9);
            let mut buf = Vec::new();
            while buf.len() < seq.len() {
                let want = 64.min(seq.len() - buf.len());
                if s2.next_batch(&mut rng2, &mut buf, want) == 0 {
                    break;
                }
            }
            let batched: Vec<u64> = buf.iter().map(|i| i.id).collect();
            assert_eq!(seq, batched, "{mode:?}");
        }
    }

    #[test]
    fn materialisation_order_is_seed_deterministic() {
        // Same seed ⇒ same emitted order, run to run (the dense-perm
        // replacement for the HashMap buffer path must not depend on
        // allocation or hash order).
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(40.0, 18.0));
        let runs: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let t = rs(2500);
                let f = Arc::new(t.freeze());
                let mut s = f.sampler(&q, SampleMode::WithoutReplacement);
                let mut rng = StdRng::seed_from_u64(1234);
                let mut out = Vec::new();
                while let Some(item) = s.next_sample(&mut rng) {
                    out.push(item.id);
                }
                out
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert!(!runs[0].is_empty());
    }

    #[test]
    fn alias_descent_agrees_with_range_draw() {
        // The WR path resolves node parts by alias descent; a uniform
        // range draw is the ground truth. Chi-square both against each
        // other over the root's subtree.
        let t = rs(1777); // non-power size ⇒ ragged right spine ⇒ alias tables
        let f = Arc::new(t.freeze());
        assert!(
            f.alias_nodes() > 0,
            "ragged tree should materialise alias tables"
        );
        let root_level = f.tree().height() - 1;
        let mut rng = StdRng::seed_from_u64(5);
        let n = f.len();
        let draws = 50 * n;
        let mut descent_counts = vec![0u64; n];
        for _ in 0..draws {
            descent_counts[f.descend(root_level, 0, &mut rng)] += 1;
        }
        storm_testkit::assert_uniform(&descent_counts, "alias descent over root");
    }

    #[test]
    fn frozen_wor_first_sample_matches_boxed_distribution() {
        // Chi-square agreement: the frozen stream's first emitted sample
        // across many fresh streams is uniform over P∩Q, exactly like the
        // boxed sampler's (tested in rs_tree.rs). Three seeds.
        let items = grid_items(400);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(19.0, 1.0));
        let t = RsTree::bulk_load(items, RsTreeConfig::with_fanout(8));
        let f = Arc::new(t.freeze());
        let q_size = 40usize;
        for seed in [4u64, 40, 400] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts: HashMap<u64, u64> = HashMap::new();
            let trials = 20_000;
            for _ in 0..trials {
                let mut s = f.sampler(&q, SampleMode::WithoutReplacement);
                let item = s.next_sample(&mut rng).unwrap();
                *counts.entry(item.id).or_insert(0) += 1;
            }
            assert_eq!(counts.len(), q_size);
            let mut tallies: Vec<u64> = counts.values().copied().collect();
            tallies.sort_unstable();
            storm_testkit::assert_uniform(&tallies, "frozen first WOR sample");
        }
    }

    #[test]
    fn frozen_wr_draws_are_uniform() {
        let items = grid_items(400);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(19.0, 1.0));
        let t = RsTree::bulk_load(items, RsTreeConfig::with_fanout(8));
        let f = Arc::new(t.freeze());
        let mut rng = StdRng::seed_from_u64(21);
        let mut s = f.sampler(&q, SampleMode::WithReplacement);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let mut buf = Vec::new();
        let trials = 20_000usize;
        let mut drawn = 0usize;
        while drawn < trials {
            buf.clear();
            assert!(s.next_batch(&mut rng, &mut buf, 128.min(trials - drawn)) > 0);
            for item in &buf {
                *counts.entry(item.id).or_insert(0) += 1;
            }
            drawn += buf.len();
        }
        assert_eq!(counts.len(), 40);
        let tallies: Vec<u64> = counts.values().copied().collect();
        storm_testkit::assert_uniform(&tallies, "frozen WR draws");
    }

    #[test]
    fn empty_query_returns_none() {
        let t = rs(500);
        let f = Arc::new(t.freeze());
        let q = Rect2::from_corners(Point2::xy(1e6, 1e6), Point2::xy(1e6 + 1.0, 1e6 + 1.0));
        let mut s = f.sampler(&q, SampleMode::WithoutReplacement);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(s.next_sample(&mut rng).is_none());
        assert_eq!(s.result_size(), Some(0));
    }

    #[test]
    fn frozen_draws_cost_block_granular_io() {
        let t = rs(50_000);
        let f = Arc::new(t.freeze());
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 300.0));
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = f.sampler(&q, SampleMode::WithoutReplacement);
        f.tree().io().reset();
        let mut buf = Vec::new();
        s.next_batch(&mut rng, &mut buf, 1024);
        assert_eq!(buf.len(), 1024);
        let reads = f.tree().io().reads();
        // 1024 draws at fanout 16 ⇒ 64 blocks; allow the open/ledger
        // rounding but demand true sub-linear accounting.
        assert!(reads <= 70, "batched frozen draws cost {reads} reads");
        assert!(reads >= 64, "block ledger under-charges ({reads} reads)");
    }

    #[test]
    fn frozen_ls_stream_is_a_permutation() {
        let t = crate::LsTree::bulk_load(
            grid_items(5000),
            storm_rtree::RTreeConfig::with_fanout(16),
            0xC0FFEE,
        );
        let f = Arc::new(t.freeze());
        assert_eq!(f.num_levels(), t.num_levels());
        let q = Rect2::from_corners(Point2::xy(10.0, 5.0), Point2::xy(60.0, 30.0));
        let expected: HashSet<u64> = t.level(0).query(&q).iter().map(|it| it.id).collect();
        for seed in [1u64, 2, 3] {
            let mut s = f.sampler(q);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut got = HashSet::new();
            while let Some(item) = s.next_sample(&mut rng) {
                assert!(q.contains_point(&item.point));
                assert!(got.insert(item.id), "seed {seed}: duplicate {}", item.id);
            }
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn frozen_sample_first_covers_the_result() {
        let t = rs(2000);
        let f = t.freeze();
        let q = Rect2::from_corners(Point2::xy(5.0, 1.0), Point2::xy(40.0, 8.0));
        let expected: HashSet<u64> = t.tree().query(&q).iter().map(|i| i.id).collect();
        let mut s = FrozenSampleFirst::new(f.tree_handle(), q, SampleMode::WithoutReplacement);
        let mut rng = StdRng::seed_from_u64(8);
        let mut got = HashSet::new();
        while let Some(item) = s.next_sample(&mut rng) {
            assert!(got.insert(item.id));
            if got.len() == expected.len() {
                break;
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn frozen_query_first_streams_the_result() {
        let t = rs(1500);
        let f = t.freeze();
        let q = Rect2::from_corners(Point2::xy(5.0, 1.0), Point2::xy(40.0, 8.0));
        let expected: HashSet<u64> = t.tree().query(&q).iter().map(|i| i.id).collect();
        let mut s = frozen_query_first(f.tree(), &q, SampleMode::WithoutReplacement);
        let mut rng = StdRng::seed_from_u64(12);
        let mut got = HashSet::new();
        while let Some(item) = s.next_sample(&mut rng) {
            assert!(got.insert(item.id));
        }
        assert_eq!(got, expected);
    }
}
