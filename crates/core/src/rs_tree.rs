//! The RS-tree: a sample-buffered Hilbert R-tree.

use std::collections::{HashMap, HashSet};

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use storm_geo::{Point, Rect};
use storm_rtree::{
    BulkMethod, CanonicalPart, IoStats, Item, NodeId, RTree, RTreeConfig, UpdateEvent,
};

use crate::weighted::{SelectorKind, WeightedSelector};
use crate::{SampleMode, SamplerKind, SpatialSampler};

/// Tuning for the [`RsTree`].
#[derive(Debug, Clone, Copy)]
pub struct RsTreeConfig {
    /// Configuration of the underlying Hilbert R-tree.
    pub rtree: RTreeConfig,
    /// Target size of each node's sample buffer `S(u)` (one block's worth
    /// by default, so reading a buffer costs one I/O like any node).
    pub buffer_size: usize,
    /// Part-selection algorithm over the canonical set.
    pub selector: SelectorKind,
    /// Subtrees at or below this count are materialised whole on refill
    /// instead of sampled by repeated descent.
    pub small_subtree: usize,
}

impl Default for RsTreeConfig {
    fn default() -> Self {
        let rtree = RTreeConfig::default();
        RsTreeConfig {
            rtree,
            buffer_size: rtree.max_entries,
            selector: SelectorKind::default(),
            small_subtree: rtree.max_entries * 4,
        }
    }
}

impl RsTreeConfig {
    /// Config with a given R-tree fanout; buffers sized to one block.
    pub fn with_fanout(fanout: usize) -> Self {
        let rtree = RTreeConfig::with_fanout(fanout);
        RsTreeConfig {
            rtree,
            buffer_size: fanout,
            selector: SelectorKind::default(),
            small_subtree: fanout * 4,
        }
    }
}

/// The second ST-indexing structure of paper §3.1: a **single Hilbert
/// R-tree** over `P` where each node `u` carries a buffer `S(u)` of random
/// samples of `P(u)`, integrating the paper's three ideas:
///
/// * **Sample buffering** — `S(u)` is consumed by queries and replenished
///   by count-weighted descent, so most samples cost one block read;
/// * **Lazy exploration** — per-node counts let the sampler decide *how
///   many* samples each canonical subtree owes without opening it;
/// * **Acceptance/rejection sampling** — canonical parts are drawn
///   proportional to `|P(u)|` with A/R (or the alias method), so large
///   subtrees are located quickly and small ones are rarely explored.
///
/// Buffer entries deplete across queries — by design: consuming
/// precomputed randomness is what makes successive queries' samples
/// independent of each other (the inter-query independence property of
/// Hu et al. [8] that the paper cites).
///
/// Ad-hoc updates keep every surviving buffer a uniform sample of its
/// subtree: inserts perform a reservoir replacement along the update path,
/// deletes evict the removed record, and splits/frees drop the affected
/// buffers (they are rebuilt lazily on next use).
#[derive(Debug)]
pub struct RsTree<const D: usize> {
    pub(crate) tree: RTree<D>,
    pub(crate) buffers: HashMap<NodeId, Vec<Item<D>>>,
    pub(crate) cfg: RsTreeConfig,
    /// Mutation counter driving the sampled debug audit cadence.
    audit_ops: u64,
    /// Refill scratch (descent frontier), reused across buffer refills so
    /// the hot path allocates nothing after warm-up.
    scratch_stack: Vec<NodeId>,
    /// Refill scratch (distinct-draw dedup set), reused across refills.
    scratch_ids: HashSet<u64>,
}

impl<const D: usize> RsTree<D> {
    /// Bulk loads the Hilbert R-tree; buffers are created lazily on first
    /// use (call [`RsTree::prefill`] to precompute them instead).
    pub fn bulk_load(items: Vec<Item<D>>, cfg: RsTreeConfig) -> Self {
        RsTree {
            tree: RTree::bulk_load(items, cfg.rtree, BulkMethod::Hilbert),
            buffers: HashMap::new(),
            cfg,
            audit_ops: 0,
            scratch_stack: Vec::new(),
            scratch_ids: HashSet::new(),
        }
    }

    /// Debug-build audit: re-validates tree and buffers after a mutation
    /// (every mutation while small, sampled once the tree grows — see
    /// [`crate::validate`]). Release builds compile this to nothing.
    #[inline]
    fn debug_audit(&mut self) {
        #[cfg(debug_assertions)]
        {
            self.audit_ops = self.audit_ops.wrapping_add(1);
            if self.len() <= crate::validate::AUDIT_EVERY_OP_LIMIT
                || self
                    .audit_ops
                    .is_multiple_of(crate::validate::AUDIT_SAMPLE_PERIOD)
            {
                debug_assert_eq!(
                    crate::validate::check_rs_tree(self),
                    Ok(()),
                    "RS-tree invariant audit failed after mutation {}",
                    self.audit_ops
                );
            }
        }
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The underlying R-tree (read-only).
    pub fn tree(&self) -> &RTree<D> {
        &self.tree
    }

    /// The simulated-I/O counter.
    pub fn io(&self) -> &IoStats {
        self.tree.io()
    }

    /// A shared handle to the I/O counter.
    pub fn io_handle(&self) -> std::sync::Arc<IoStats> {
        self.tree.io_handle()
    }

    /// Exact `|P ∩ Q|` from aggregate counts.
    pub fn exact_count(&self, query: &Rect<D>) -> usize {
        self.tree.count_in(query)
    }

    /// Number of nodes currently holding a non-empty buffer.
    pub fn buffered_nodes(&self) -> usize {
        self.buffers.values().filter(|b| !b.is_empty()).count()
    }

    /// Eagerly fills the sample buffer of every inner node (the
    /// construction-time behaviour of the paper's RS-tree, where `S(u)` is
    /// computed from the canonical cover of `u` at build time).
    pub fn prefill(&mut self, rng: &mut dyn Rng) {
        let Some(root) = self.tree.root_id() else {
            return;
        };
        let empty = HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let needs_fill = {
                // storm-analyzer: allow(A8): one-time prefill walk at build, not the per-draw kernel
                let view = self.tree.view_free_of_charge(id);
                stack.extend(view.children());
                view.count > self.cfg.small_subtree
            };
            if needs_fill {
                let mut buf = self.buffers.remove(&id).unwrap_or_default();
                self.fill_buffer_into(id, rng, &empty, &mut buf);
                self.buffers.insert(id, buf);
            }
        }
    }

    /// Inserts a point, maintaining buffers along the way (reservoir
    /// replacement on the insertion path, eviction on splits).
    pub fn insert(&mut self, item: Item<D>, rng: &mut dyn Rng) {
        let mut events = Vec::new();
        self.tree.insert_with(item, &mut |e| events.push(e));
        self.apply_events(&events, Some(item), None, rng);
        self.debug_audit();
    }

    /// Removes a point, evicting it from any buffer that holds it.
    pub fn remove(&mut self, point: &Point<D>, id: u64, rng: &mut dyn Rng) -> bool {
        let mut events = Vec::new();
        let removed = self.tree.remove_with(point, id, &mut |e| events.push(e));
        if removed {
            self.apply_events(&events, None, Some(id), rng);
            self.debug_audit();
        }
        removed
    }

    fn apply_events(
        &mut self,
        events: &[UpdateEvent],
        inserted: Option<Item<D>>,
        removed: Option<u64>,
        rng: &mut dyn Rng,
    ) {
        let rng = &mut *rng;
        for &event in events {
            match event {
                UpdateEvent::Gained(u) => {
                    if !self.tree.is_live(u) {
                        continue;
                    }
                    let Some(item) = inserted else { continue };
                    // storm-analyzer: allow(A8): update/maintenance path, not the per-draw kernel
                    let n = self.tree.view_free_of_charge(u).count as u64;
                    if let Some(buf) = self.buffers.get_mut(&u) {
                        if buf.is_empty() || buf.iter().any(|b| b.id == item.id) {
                            continue;
                        }
                        // Reservoir: keep `S(u)` a uniform |buf|-sample of
                        // the grown subtree.
                        if n > 0 && rng.random_range(0..n) < buf.len() as u64 {
                            let victim = rng.random_range(0..buf.len());
                            buf[victim] = item;
                        }
                    }
                }
                UpdateEvent::Lost(u) => {
                    let Some(id) = removed else { continue };
                    if let Some(buf) = self.buffers.get_mut(&u) {
                        buf.retain(|b| b.id != id);
                    }
                }
                UpdateEvent::Split { from, new } => {
                    self.buffers.remove(&from);
                    self.buffers.remove(&new);
                }
                UpdateEvent::Freed(u) => {
                    self.buffers.remove(&u);
                }
            }
        }
    }

    /// Pops one not-yet-`seen` sample of `P(u)`, refilling `S(u)` when dry.
    ///
    /// Reading the buffer is charged as one block access; refills charge
    /// their descent/materialisation reads through the tree.
    fn pop_from_node(
        &mut self,
        u: NodeId,
        rng: &mut dyn Rng,
        seen: &HashSet<u64>,
    ) -> Option<Item<D>> {
        self.tree.io().record_reads(1);
        loop {
            match self.buffers.entry(u).or_default().pop() {
                Some(item) if !seen.contains(&item.id) => return Some(item),
                Some(_) => continue, // consumed stale entry
                None => {
                    // Refill in place, reusing the drained vector's
                    // allocation.
                    let mut fresh = self.buffers.remove(&u).unwrap_or_default();
                    self.fill_buffer_into(u, rng, seen, &mut fresh);
                    if fresh.is_empty() {
                        return None;
                    }
                    self.buffers.insert(u, fresh);
                }
            }
        }
    }

    /// Pops up to `n` not-yet-`seen` samples of `P(u)` into `out`, marking
    /// each popped id as seen. Returns how many were appended.
    ///
    /// This is the batched analogue of [`RsTree::pop_from_node`]: the whole
    /// run over one buffer costs a single block read (plus one per refill),
    /// instead of one read per popped sample — the I/O amortisation that
    /// makes `next_batch` worth having.
    fn pop_many_from_node(
        &mut self,
        u: NodeId,
        n: usize,
        rng: &mut dyn Rng,
        seen: &mut HashSet<u64>,
        out: &mut Vec<Item<D>>,
    ) -> usize {
        if n == 0 {
            return 0;
        }
        self.tree.io().record_reads(1);
        let mut got = 0;
        while got < n {
            match self.buffers.entry(u).or_default().pop() {
                Some(item) if !seen.contains(&item.id) => {
                    seen.insert(item.id);
                    out.push(item);
                    got += 1;
                }
                Some(_) => continue, // consumed stale entry
                None => {
                    let mut fresh = self.buffers.remove(&u).unwrap_or_default();
                    self.fill_buffer_into(u, rng, seen, &mut fresh);
                    if fresh.is_empty() {
                        break;
                    }
                    // The refilled buffer is another block to read.
                    self.tree.io().record_reads(1);
                    self.buffers.insert(u, fresh);
                }
            }
        }
        got
    }

    /// Builds a fresh buffer for `u` into `buf` (cleared first): small
    /// subtrees are materialised in full; large ones are sampled by
    /// repeated count-weighted descent. Entries are distinct, exclude
    /// `seen`, and arrive pre-shuffled. The caller's vector and the tree's
    /// scratch frontier/dedup set are reused, so steady-state refills do
    /// not allocate.
    fn fill_buffer_into(
        &mut self,
        u: NodeId,
        rng: &mut dyn Rng,
        seen: &HashSet<u64>,
        buf: &mut Vec<Item<D>>,
    ) {
        let rng = &mut *rng;
        buf.clear();
        let count = self.tree.visit(u).count;
        if count <= self.cfg.small_subtree {
            self.materialise_unseen_into(u, seen, buf);
            buf.shuffle(rng);
        } else {
            buf.reserve(self.cfg.buffer_size);
            let mut in_buf = std::mem::take(&mut self.scratch_ids);
            in_buf.clear();
            // Distinct draws get rare only when the buffer approaches the
            // subtree size; `small_subtree >= 4 * buffer_size` keeps the
            // collision rate below 25%, so a modest attempt cap suffices.
            let max_attempts = self.cfg.buffer_size * 8;
            for _ in 0..max_attempts {
                if buf.len() >= self.cfg.buffer_size {
                    break;
                }
                let Some(item) = self.descend_uniform(u, rng) else {
                    break;
                };
                if !seen.contains(&item.id) && in_buf.insert(item.id) {
                    buf.push(item);
                }
            }
            self.scratch_ids = in_buf;
            if buf.is_empty() {
                // A large subtree consumed to its tail rejects nearly every
                // descent; the attempt cap alone would end the stream with
                // unseen points still inside (breaking WOR completeness).
                // Fall back to the exact walk — it only runs when the
                // rejection path has already proven the tail is tiny.
                self.materialise_unseen_into(u, seen, buf);
                buf.shuffle(rng);
            }
        }
    }

    /// Collects every not-yet-`seen` point of `P(u)` into `buf` by walking
    /// the whole subtree (exact; used for small subtrees and as the
    /// completeness fallback for consumed large ones).
    fn materialise_unseen_into(&mut self, u: NodeId, seen: &HashSet<u64>, buf: &mut Vec<Item<D>>) {
        let mut stack = std::mem::take(&mut self.scratch_stack);
        stack.clear();
        stack.push(u);
        while let Some(id) = stack.pop() {
            // storm-analyzer: allow(A8): WOR tail materialisation walks each subtree node once and charges that read deliberately
            let view = self.tree.visit(id);
            if view.is_leaf() {
                buf.extend(view.items().iter().filter(|it| !seen.contains(&it.id)));
            } else {
                stack.extend(view.children());
            }
        }
        self.scratch_stack = stack;
    }

    /// Exact uniform draw from `P(u)` by count-weighted root-to-leaf
    /// descent (no query restriction needed: canonical nodes are fully
    /// inside `Q`).
    /// Returns `None` only if the count invariants are broken (an empty
    /// leaf or child counts not summing to the node count) — conditions
    /// [`crate::validate`] audits in debug builds.
    fn descend_uniform(&self, u: NodeId, rng: &mut dyn Rng) -> Option<Item<D>> {
        let rng = &mut *rng;
        let mut id = u;
        loop {
            // storm-analyzer: allow(A8): boxed mutable-tree descent; the frozen kernel replaces this for read-mostly streams
            let view = self.tree.visit(id);
            if view.is_leaf() {
                let items = view.items();
                if items.is_empty() {
                    return None;
                }
                return items.get(rng.random_range(0..items.len())).copied();
            }
            let total = view.count as u64;
            let mut target = rng.random_range(0..total);
            let mut next = None;
            for &c in view.children() {
                // storm-analyzer: allow(A8): boxed mutable-tree descent; the frozen kernel replaces this for read-mostly streams
                let cnt = self.tree.view_free_of_charge(c).count as u64;
                if target < cnt {
                    next = Some(c);
                    break;
                }
                target -= cnt;
            }
            id = next?;
        }
    }

    /// Opens a sampling stream for `query`.
    ///
    /// The stream borrows the RS-tree mutably because it consumes buffer
    /// entries — precomputed randomness is spent, never reused, which is
    /// what makes samples independent across queries.
    pub fn sampler(&mut self, query: Rect<D>, mode: SampleMode) -> RsSampler<'_, D> {
        let canonical = self.tree.canonical_set(&query);
        let mut parts = Vec::with_capacity(canonical.parts.len());
        let mut weights = Vec::with_capacity(canonical.parts.len());
        for part in canonical.parts {
            match part {
                CanonicalPart::Node { id, count } => {
                    parts.push(Part::Node(id));
                    weights.push(count as u64);
                }
                CanonicalPart::Item(item) => {
                    parts.push(Part::Single(item));
                    weights.push(1);
                }
            }
        }
        // The selector takes the weight vector by value — no per-query
        // clone. Only the without-replacement stream needs a second,
        // mutable copy (the remaining counts); with-replacement queries
        // skip it entirely.
        let selector = WeightedSelector::new(weights, self.cfg.selector);
        let remaining = match (mode, &selector) {
            (SampleMode::WithoutReplacement, Some(s)) => s.weights().to_vec(),
            _ => Vec::new(),
        };
        RsSampler {
            rs: self,
            mode,
            parts,
            remaining,
            total_remaining: canonical.total as u64,
            total: canonical.total,
            selector,
            seen: HashSet::new(),
            batch_seq: Vec::new(),
            batch_groups: Vec::new(),
            batch_index: HashMap::new(),
            batch_pop: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Part<const D: usize> {
    Node(NodeId),
    Single(Item<D>),
}

/// One part's slice of a batched draw: how many samples the block owes the
/// part, where its popped items start in the batch scratch, how many were
/// actually delivered, and how many the merge has consumed.
#[derive(Debug, Clone, Copy)]
struct BatchGroup {
    part: usize,
    need: usize,
    start: usize,
    len: usize,
    cursor: usize,
}

/// The RS-tree's online sample stream for one query.
#[derive(Debug)]
pub struct RsSampler<'a, const D: usize> {
    rs: &'a mut RsTree<D>,
    mode: SampleMode,
    parts: Vec<Part<D>>,
    /// Unemitted points left in each part (without-replacement only; empty
    /// for with-replacement streams, which never consume counts).
    remaining: Vec<u64>,
    total_remaining: u64,
    total: usize,
    selector: Option<WeightedSelector>,
    seen: HashSet<u64>,
    /// Batch scratch: the drawn part sequence (as `batch_groups` indices),
    /// reused across `next_batch` calls.
    batch_seq: Vec<usize>,
    /// Batch scratch: per-part tallies for the current block.
    batch_groups: Vec<BatchGroup>,
    /// Batch scratch: part index → `batch_groups` slot for the current
    /// block.
    batch_index: HashMap<usize, usize>,
    /// Batch scratch: items popped for the current block, grouped by part.
    batch_pop: Vec<Item<D>>,
}

impl<const D: usize> SpatialSampler<D> for RsSampler<'_, D> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        let selector = self.selector.as_ref()?;
        let rng2 = &mut *rng;
        match self.mode {
            SampleMode::WithReplacement => {
                // Independent draws: part ∝ count, then an exact uniform
                // element of the part (descent; buffers are not consumed so
                // repeated draws stay independent).
                let i = selector.pick(rng2);
                match self.parts[i] {
                    Part::Single(item) => Some(item),
                    Part::Node(u) => self.rs.descend_uniform(u, rng2),
                }
            }
            SampleMode::WithoutReplacement => {
                let mut spins = 0u64;
                loop {
                    spins += 1;
                    assert!(
                        spins <= 100_000_000,
                        "RS-tree WOR sampling failed to make progress \
                         (remaining {} of {}; {} parts)",
                        self.total_remaining,
                        self.total,
                        self.parts.len()
                    );
                    if self.total_remaining == 0 {
                        return None;
                    }
                    let i = selector.pick(rng2);
                    // Dynamic thinning: the static selector draws ∝ the
                    // original count; accepting with probability
                    // remaining/original makes the effective weight the
                    // *remaining* count, which is what keeps the stream
                    // uniform over the unseen points.
                    let original = selector.weight(i);
                    let rem = self.remaining[i];
                    if rem == 0 {
                        continue;
                    }
                    if rem < original && rng2.random_range(0..original) >= rem {
                        continue;
                    }
                    let item = match self.parts[i] {
                        Part::Single(item) => item,
                        Part::Node(u) => match self.rs.pop_from_node(u, rng2, &self.seen) {
                            Some(item) => item,
                            None => {
                                // Defensive: bookkeeping says points remain
                                // but the subtree is exhausted (possible
                                // when a refill's distinct-draw attempt cap
                                // is hit on a nearly-consumed subtree).
                                self.total_remaining -= self.remaining[i];
                                self.remaining[i] = 0;
                                continue;
                            }
                        },
                    };
                    self.remaining[i] -= 1;
                    self.total_remaining -= 1;
                    self.seen.insert(item.id);
                    return Some(item);
                }
            }
        }
    }

    /// Batched draw: groups the block's work by canonical part so each
    /// part's samples are popped in one run (one buffer-block read per run
    /// instead of one per sample), then merges the runs back in draw order.
    ///
    /// Distribution equivalence with `k × next_sample`: phase 1 draws the
    /// *part sequence* with exactly the sequential bookkeeping (static
    /// selector + dynamic thinning + remaining-count decrements), consuming
    /// the same decisions a one-at-a-time loop would make. Conditioned on
    /// that sequence, without-replacement pops within one part are uniform
    /// over its remaining points, so popping them grouped and re-ordering by
    /// the drawn sequence yields the same joint distribution as interleaved
    /// draw-then-pop.
    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<D>>, k: usize) -> usize {
        let Some(selector) = self.selector.as_ref() else {
            return 0;
        };
        let rng = &mut *rng;
        let before = buf.len();
        match self.mode {
            SampleMode::WithReplacement => {
                // Independent draws; nothing to merge. The win over
                // next_sample is the hoisted selector borrow and the
                // caller's reused buffer.
                buf.reserve(k);
                for _ in 0..k {
                    let i = selector.pick(rng);
                    match self.parts[i] {
                        Part::Single(item) => buf.push(item),
                        Part::Node(u) => {
                            if let Some(item) = self.rs.descend_uniform(u, rng) {
                                buf.push(item);
                            }
                        }
                    }
                }
            }
            SampleMode::WithoutReplacement => {
                let mut seq = std::mem::take(&mut self.batch_seq);
                let mut groups = std::mem::take(&mut self.batch_groups);
                let mut index = std::mem::take(&mut self.batch_index);
                let mut pop = std::mem::take(&mut self.batch_pop);
                // A pop run can under-deliver (attempt-capped refill on a
                // nearly-consumed subtree zeroes the part); retry whole
                // blocks until the budget is met or the stream truly ends.
                while buf.len() - before < k && self.total_remaining > 0 {
                    let want = k - (buf.len() - before);
                    seq.clear();
                    groups.clear();
                    index.clear();
                    pop.clear();
                    // Phase 1: draw the part sequence with the sequential
                    // stream's exact bookkeeping.
                    let mut spins = 0u64;
                    while seq.len() < want && self.total_remaining > 0 {
                        spins += 1;
                        assert!(
                            spins <= 100_000_000,
                            "RS-tree batched WOR sampling failed to make \
                             progress (remaining {} of {}; {} parts)",
                            self.total_remaining,
                            self.total,
                            self.parts.len()
                        );
                        let i = selector.pick(rng);
                        let original = selector.weight(i);
                        let rem = self.remaining[i];
                        if rem == 0 {
                            continue;
                        }
                        if rem < original && rng.random_range(0..original) >= rem {
                            continue;
                        }
                        self.remaining[i] -= 1;
                        self.total_remaining -= 1;
                        let slot = *index.entry(i).or_insert_with(|| {
                            groups.push(BatchGroup {
                                part: i,
                                need: 0,
                                start: 0,
                                len: 0,
                                cursor: 0,
                            });
                            groups.len() - 1
                        });
                        groups[slot].need += 1;
                        seq.push(slot);
                    }
                    // Phase 2: pop each group's owed samples in one run.
                    for g in groups.iter_mut() {
                        g.start = pop.len();
                        match self.parts[g.part] {
                            Part::Single(item) => {
                                // Weight 1 ⇒ thinning admits it at most
                                // once per stream, so need == 1 here.
                                self.seen.insert(item.id);
                                pop.push(item);
                                g.len = 1;
                            }
                            Part::Node(u) => {
                                g.len = self.rs.pop_many_from_node(
                                    u,
                                    g.need,
                                    rng,
                                    &mut self.seen,
                                    &mut pop,
                                );
                                if g.len < g.need {
                                    // Subtree exhausted despite the counts:
                                    // same defensive zeroing as the
                                    // sequential stream.
                                    self.total_remaining -= self.remaining[g.part];
                                    self.remaining[g.part] = 0;
                                }
                            }
                        }
                    }
                    // Phase 3: merge the runs back in drawn order.
                    for &slot in &seq {
                        let g = &mut groups[slot];
                        if g.cursor < g.len {
                            buf.push(pop[g.start + g.cursor]);
                            g.cursor += 1;
                        }
                    }
                }
                self.batch_seq = seq;
                self.batch_groups = groups;
                self.batch_index = index;
                self.batch_pop = pop;
            }
        }
        buf.len() - before
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::RsTree
    }

    fn result_size(&self) -> Option<usize> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use storm_geo::{Point2, Rect2};

    fn grid_items(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect()
    }

    fn rs(n: usize) -> RsTree<2> {
        RsTree::bulk_load(grid_items(n), RsTreeConfig::with_fanout(16))
    }

    #[test]
    fn result_size_is_exact() {
        let mut t = rs(5000);
        let q = Rect2::from_corners(Point2::xy(10.0, 5.0), Point2::xy(60.0, 30.0));
        let expected = t.tree().query(&q).len();
        let s = t.sampler(q, SampleMode::WithoutReplacement);
        assert_eq!(s.result_size(), Some(expected));
    }

    #[test]
    fn without_replacement_is_a_permutation() {
        let mut t = rs(3000);
        let q = Rect2::from_corners(Point2::xy(7.0, 3.0), Point2::xy(55.0, 21.0));
        let expected: std::collections::HashSet<u64> =
            t.tree().query(&q).iter().map(|i| i.id).collect();
        let mut s = t.sampler(q, SampleMode::WithoutReplacement);
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = std::collections::HashSet::new();
        while let Some(item) = s.next_sample(&mut rng) {
            assert!(q.contains_point(&item.point));
            assert!(got.insert(item.id), "duplicate {}", item.id);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn batched_wor_is_exactly_the_result_set() {
        // The batched kernel must cover P ∩ Q exactly, like the
        // one-at-a-time stream, for every block size.
        for (seed, k) in [(11u64, 1usize), (12, 7), (13, 64), (14, 256)] {
            let mut t = rs(3000);
            let q = Rect2::from_corners(Point2::xy(7.0, 3.0), Point2::xy(55.0, 21.0));
            let expected: std::collections::HashSet<u64> =
                t.tree().query(&q).iter().map(|i| i.id).collect();
            let mut s = t.sampler(q, SampleMode::WithoutReplacement);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut got = std::collections::HashSet::new();
            let mut buf = Vec::new();
            loop {
                buf.clear();
                if s.next_batch(&mut rng, &mut buf, k) == 0 {
                    break;
                }
                for item in &buf {
                    assert!(q.contains_point(&item.point));
                    assert!(got.insert(item.id), "k={k}: duplicate {}", item.id);
                }
            }
            assert_eq!(got.len(), expected.len(), "k={k}");
            assert_eq!(got, expected, "k={k}");
        }
    }

    #[test]
    fn batched_wr_draws_are_uniform() {
        // Chi-square: WR samples drawn through the batched kernel keep the
        // one-at-a-time stream's uniform-over-P∩Q distribution (batching
        // only reorders the bookkeeping, never the draws).
        let items = grid_items(400);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(19.0, 1.0));
        let mut t = RsTree::bulk_load(items, RsTreeConfig::with_fanout(8));
        let mut rng = StdRng::seed_from_u64(21);
        let mut s = t.sampler(q, SampleMode::WithReplacement);
        let mut counts = std::collections::HashMap::new();
        let trials = 20_000usize;
        let mut drawn = 0usize;
        let mut buf = Vec::new();
        while drawn < trials {
            buf.clear();
            assert!(s.next_batch(&mut rng, &mut buf, 128.min(trials - drawn)) > 0);
            for item in &buf {
                *counts.entry(item.id).or_insert(0usize) += 1;
            }
            drawn += buf.len();
        }
        let q_size = 40;
        assert_eq!(counts.len(), q_size);
        let expected = trials as f64 / q_size as f64;
        let chi: f64 = counts
            .values()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // chi² 39 dof, p=0.001 critical ≈ 72.05.
        assert!(chi < 72.05, "chi² = {chi}");
    }

    #[test]
    fn with_replacement_streams_independently() {
        let mut t = rs(1000);
        let q = Rect2::everything();
        let mut s = t.sampler(q, SampleMode::WithReplacement);
        let mut rng = StdRng::seed_from_u64(2);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..500 {
            let item = s.next_sample(&mut rng).unwrap();
            distinct.insert(item.id);
        }
        // Birthday bound: 500 WR draws from 1000 should repeat sometimes
        // but cover a lot.
        assert!(distinct.len() > 300 && distinct.len() < 500);
    }

    #[test]
    fn empty_query_returns_none() {
        let mut t = rs(500);
        let q = Rect2::from_corners(Point2::xy(1e6, 1e6), Point2::xy(1e6 + 1.0, 1e6 + 1.0));
        let mut s = t.sampler(q, SampleMode::WithoutReplacement);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(s.next_sample(&mut rng).is_none());
        assert_eq!(s.result_size(), Some(0));
    }

    #[test]
    fn first_sample_is_uniform_over_the_result() {
        // Chi-square over the first emitted sample across many queries on a
        // fresh tree each time (buffers consumed across repeats would skew
        // *which entries* come first but not their distribution; fresh
        // trees isolate the per-query guarantee).
        let items = grid_items(400);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(19.0, 1.0));
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = std::collections::HashMap::new();
        let trials = 20_000;
        for _ in 0..trials {
            let mut t = RsTree::bulk_load(items.clone(), RsTreeConfig::with_fanout(8));
            let mut s = t.sampler(q, SampleMode::WithoutReplacement);
            let item = s.next_sample(&mut rng).unwrap();
            *counts.entry(item.id).or_insert(0usize) += 1;
        }
        let q_size = 40;
        assert_eq!(counts.len(), q_size);
        let expected = trials as f64 / q_size as f64;
        let chi: f64 = counts
            .values()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // chi² 39 dof, p=0.001 critical ≈ 72.05.
        assert!(chi < 72.05, "chi² = {chi}");
    }

    #[test]
    fn buffers_amortise_io_across_queries() {
        let mut t = rs(100_000);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 600.0));
        let mut rng = StdRng::seed_from_u64(5);
        // First query pays for refills.
        t.io().reset();
        let mut s = t.sampler(q, SampleMode::WithoutReplacement);
        for _ in 0..32 {
            s.next_sample(&mut rng).unwrap();
        }
        drop(s);
        let first = t.io().reads();
        // Second identical query mostly rides the buffers.
        t.io().reset();
        let mut s = t.sampler(q, SampleMode::WithoutReplacement);
        for _ in 0..32 {
            s.next_sample(&mut rng).unwrap();
        }
        drop(s);
        let second = t.io().reads();
        assert!(
            second < first,
            "second query ({second}) should be cheaper than first ({first})"
        );
    }

    #[test]
    fn prefill_builds_buffers_up_front() {
        let mut t = rs(20_000);
        assert_eq!(t.buffered_nodes(), 0);
        let mut rng = StdRng::seed_from_u64(6);
        t.prefill(&mut rng);
        assert!(t.buffered_nodes() > 0);
        // Prefilled queries need almost no descent I/O.
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 150.0));
        t.io().reset();
        let mut s = t.sampler(q, SampleMode::WithoutReplacement);
        for _ in 0..16 {
            s.next_sample(&mut rng).unwrap();
        }
        drop(s);
        let reads = t.io().reads();
        assert!(reads < 200, "prefilled sampling cost {reads} reads");
    }

    #[test]
    fn updates_keep_the_stream_correct() {
        let mut t = rs(2000);
        let mut rng = StdRng::seed_from_u64(7);
        t.prefill(&mut rng);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(15.0, 10.0));
        // Delete everything in Q, insert 7 fresh points.
        for it in t.tree().query(&q) {
            assert!(t.remove(&it.point, it.id, &mut rng));
        }
        for j in 0..7u64 {
            t.insert(
                Item::new(Point2::xy(2.0 + j as f64, 3.0), 900_000 + j),
                &mut rng,
            );
        }
        let mut s = t.sampler(q, SampleMode::WithoutReplacement);
        let mut got = std::collections::HashSet::new();
        while let Some(item) = s.next_sample(&mut rng) {
            got.insert(item.id);
        }
        let expected: std::collections::HashSet<u64> = (0..7).map(|j| 900_000 + j).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn reservoir_keeps_buffers_fresh_under_inserts() {
        // Insert a block of new points; the root buffer should eventually
        // contain some of them (reservoir property), without rebuilding.
        let mut t = rs(4000);
        let mut rng = StdRng::seed_from_u64(8);
        t.prefill(&mut rng);
        let root = t.tree().root_id().unwrap();
        for j in 0..4000u64 {
            t.insert(
                Item::new(
                    Point2::xy((j % 100) as f64 + 0.5, (j / 100) as f64 + 0.5),
                    500_000 + j,
                ),
                &mut rng,
            );
        }
        // Root may have split; find the current root's buffer.
        let root_now = t.tree().root_id().unwrap();
        let buf = t.buffers.get(&root_now).or_else(|| t.buffers.get(&root));
        if let Some(buf) = buf {
            let fresh = buf.iter().filter(|it| it.id >= 500_000).count();
            // Half the data is new; a uniform buffer should reflect that.
            assert!(
                fresh * 10 >= buf.len(),
                "only {fresh}/{} fresh entries in root buffer",
                buf.len()
            );
        }
        // Regardless of buffers, streams must be exact.
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(3.0, 3.0));
        let expected = t.tree().query(&q).len();
        let mut s = t.sampler(q, SampleMode::WithoutReplacement);
        let mut n = 0usize;
        while s.next_sample(&mut rng).is_some() {
            n += 1;
        }
        assert_eq!(n, expected);
    }

    #[test]
    fn selector_variants_all_work() {
        for kind in [
            SelectorKind::Linear,
            SelectorKind::AcceptReject,
            SelectorKind::Alias,
        ] {
            let mut cfg = RsTreeConfig::with_fanout(8);
            cfg.selector = kind;
            let mut t = RsTree::bulk_load(grid_items(1000), cfg);
            let q = Rect2::from_corners(Point2::xy(5.0, 1.0), Point2::xy(40.0, 8.0));
            let expected = t.tree().query(&q).len();
            let mut s = t.sampler(q, SampleMode::WithoutReplacement);
            let mut rng = StdRng::seed_from_u64(9);
            let got = s.draw(10_000, &mut rng);
            assert_eq!(got.len(), expected, "{kind:?}");
        }
    }
}
