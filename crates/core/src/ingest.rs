//! Live ingestion: an LSM-style delta-plus-runs index whose sampler stays
//! unbiased while inserts land mid-query.
//!
//! The frozen kernels ([`crate::FrozenRsTree`]) are build-once; STORM's
//! headline scenario is a *feed*. This module puts a mutable tier in front
//! of them:
//!
//! * a **delta buffer** — an append-only in-memory vector absorbing
//!   concurrent inserts (unsorted recent items, scanned linearly);
//! * a stack of immutable **Hilbert-packed frozen runs** behind it, each a
//!   full [`FrozenRsTree`] built from one drained delta (or a merge);
//! * **minor freeze** rolls the delta into a new run when it exceeds its
//!   limit, and **compaction** merges the run stack back into one run —
//!   both publish a whole replacement epoch through the crash-safe
//!   [`RunRegistry`] (build aside, install last), so a panic or abandon
//!   mid-merge leaves the previous epoch fully intact and queries can
//!   never observe a half-merged run-set;
//! * a **composite sampler** ([`CompositeSampler`]) that draws across
//!   delta + runs with probability proportional to each component's *live*
//!   size, so WR draws are uniform over the union as it stands at the
//!   moment of the draw and WOR draws are uniform over the union's unseen
//!   remainder — unbiased mid-ingest, which is the property the
//!   statistical suite in `tests/ingest_stat.rs` certifies.
//!
//! Epoch discipline: a sampler pins the `Arc`'d epoch state it was opened
//! against. Freezes and compactions publish *new* states and never mutate
//! a published one (the delta of a retired epoch stops growing because
//! inserts go through the registry's read lock to the *current* state), so
//! an open stream keeps a stable view while the index moves on — the same
//! pinning contract `storm_core::parallel` workers get via
//! [`ShardCmd`-level swaps](crate::ParallelRsCluster::install_epoch).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::{Rng, RngExt};
use storm_faultkit::{FaultHook, FaultKind, FaultSite};
use storm_geo::Rect;
use storm_rtree::{hilbert_sort, FrozenRTree, IoStats, Item};
use storm_store::runs::RunRegistry;

use crate::frozen::{FrozenRsTree, FrozenSampler};
use crate::weighted::{SelectorKind, WeightedSelector};
use crate::{SampleMode, SamplerKind, SpatialSampler};

/// The append-only in-memory write buffer of one epoch.
///
/// Writers push under the mutex; readers observe a *prefix*: the atomic
/// `len` is published after the push, so any index below a loaded `len`
/// is safe to read (under the same mutex — the backing `Vec` may move on
/// growth). Published (retired) deltas stop growing, because inserts are
/// routed to the registry's current epoch under its read lock.
#[derive(Debug, Default)]
pub struct DeltaBuffer<const D: usize> {
    items: Mutex<Vec<Item<D>>>,
    len: AtomicUsize,
}

impl<const D: usize> DeltaBuffer<D> {
    /// Appends one item.
    pub fn push(&self, item: Item<D>) {
        let mut g = self.items.lock();
        // `items` is a leaf lock: the only work under it is `Vec::push` plus
        // an atomic store, so the registry lock is never taken from here (the
        // reported cycle comes from name-aliased callees).
        // storm-analyzer: allow(A1): leaf lock — no registry acquisition is reachable while `items` is held
        g.push(item);
        // Pairing invariant (A10): this Release store publishes the push
        // above, and the Acquire load in `len()` synchronizes with it —
        // every index below a loaded `len` therefore reads a fully settled
        // item. Relaxed on either side would let a reader observe the new
        // count before the item's bytes.
        self.len.store(g.len(), Ordering::Release);
    }

    /// The published length: every index below it holds a settled item.
    pub fn len(&self) -> usize {
        // Acquire side of the settled-prefix pair — see `push`.
        self.len.load(Ordering::Acquire)
    }

    /// True when no items have been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the settled prefix.
    pub fn snapshot(&self) -> Vec<Item<D>> {
        let n = self.len();
        self.items.lock()[..n].to_vec()
    }

    /// Scans settled items `from..len()` and appends the ones inside
    /// `query` to `out`; returns the new watermark (`len()` at scan time).
    /// This is the sampler's incremental matcher: each call only touches
    /// the suffix that arrived since the previous call.
    pub fn scan_matches(&self, from: usize, query: &Rect<D>, out: &mut Vec<Item<D>>) -> usize {
        let n = self.len();
        if n > from {
            let g = self.items.lock();
            for item in &g[from..n] {
                if query.contains_point(&item.point) {
                    out.push(*item);
                }
            }
        }
        n
    }
}

/// One epoch's immutable view: the run stack plus that epoch's delta.
///
/// Published via [`RunRegistry`]; never mutated after publication except
/// for appends to `delta` *while this is the current epoch*.
#[derive(Debug)]
pub struct EpochState<const D: usize> {
    /// Immutable Hilbert-packed runs, oldest first.
    pub runs: Vec<Arc<FrozenRsTree<D>>>,
    /// This epoch's write buffer.
    pub delta: Arc<DeltaBuffer<D>>,
}

impl<const D: usize> EpochState<D> {
    /// Live union cardinality: run lengths plus the settled delta prefix.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|r| r.len()).sum::<usize>() + self.delta.len()
    }

    /// True when the epoch holds no items at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Tuning knobs for an [`IngestIndex`].
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Arena fanout for frozen runs (blocks of this many items).
    pub fanout: usize,
    /// Inserts that trigger an automatic minor freeze of the delta.
    pub delta_limit: usize,
    /// Run-stack depth that triggers a full merge during the next freeze.
    pub max_runs: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            fanout: 64,
            delta_limit: 4096,
            max_runs: 6,
        }
    }
}

/// The mutable ingest tier: delta + runs + epoch registry.
///
/// All methods take `&self`; the index is `Send + Sync` and intended to be
/// shared (`Arc`) between writer threads and query threads. See the
/// [module docs](self) for the consistency protocol.
#[derive(Debug)]
pub struct IngestIndex<const D: usize> {
    registry: RunRegistry<EpochState<D>>,
    cfg: IngestConfig,
    io: Arc<IoStats>,
    /// Compaction fault hook (tests only): consulted at every merge step
    /// with [`FaultSite::Compaction`].
    fault: Option<Arc<dyn FaultHook>>,
}

/// Internal: the abandon signal a [`FaultKind::DropReply`] injection turns
/// a run build into.
struct Abandon;

impl<const D: usize> IngestIndex<D> {
    /// An empty index with the given knobs.
    pub fn new(cfg: IngestConfig) -> Self {
        assert!(cfg.fanout >= 2 && cfg.delta_limit >= 1 && cfg.max_runs >= 1);
        IngestIndex {
            registry: RunRegistry::new(EpochState {
                runs: Vec::new(),
                delta: Arc::new(DeltaBuffer::default()),
            }),
            cfg,
            io: Arc::new(IoStats::default()),
            fault: None,
        }
    }

    /// Installs a fault hook consulted at [`FaultSite::Compaction`] during
    /// freezes/compactions (crash-matrix tests).
    pub fn with_fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.fault = Some(hook);
        self
    }

    /// The shared simulated-I/O counter all runs charge to.
    pub fn io_handle(&self) -> Arc<IoStats> {
        Arc::clone(&self.io)
    }

    /// Current epoch number (bumps once per published freeze/compaction).
    pub fn epoch(&self) -> u64 {
        self.registry.epoch()
    }

    /// Pins the current epoch: `(epoch, state)`. The state stays valid —
    /// and its delta stops growing the moment a newer epoch is published.
    pub fn pin(&self) -> (u64, Arc<EpochState<D>>) {
        let p = self.registry.pin();
        (p.epoch, p.state)
    }

    /// Live union cardinality.
    pub fn len(&self) -> usize {
        self.registry.with_current(|p| p.state.len())
    }

    /// True when the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of frozen runs in the current epoch.
    pub fn run_count(&self) -> usize {
        self.registry.with_current(|p| p.state.runs.len())
    }

    /// Settled size of the current delta.
    pub fn delta_len(&self) -> usize {
        self.registry.with_current(|p| p.state.delta.len())
    }

    /// Inserts one item. The append happens under the registry's read
    /// lock, so it always lands in the epoch a future freeze will drain —
    /// never in a retired one. When the delta crosses `delta_limit` the
    /// insert triggers an automatic [`minor_freeze`](Self::minor_freeze).
    pub fn insert(&self, item: Item<D>) {
        let full = self.registry.with_current(|p| {
            p.state.delta.push(item);
            p.state.delta.len() >= self.cfg.delta_limit
        });
        if full {
            self.minor_freeze();
        }
    }

    /// Inserts a batch (each item through the same path as [`insert`](Self::insert)).
    pub fn insert_batch(&self, items: impl IntoIterator<Item = Item<D>>) {
        for item in items {
            self.insert(item);
        }
    }

    /// Rolls the current delta into a new frozen run, publishing a new
    /// epoch. If the run stack would exceed `max_runs`, the whole stack is
    /// merged into a single run in the same (still atomic) publish.
    /// Returns the new epoch, or `None` when nothing was published (empty
    /// delta, or a fault hook abandoned the build). Panics injected by the
    /// hook unwind out of here with the old epoch intact.
    pub fn minor_freeze(&self) -> Option<u64> {
        self.registry
            .try_publish(|cur| {
                let state = &cur.state;
                if state.delta.is_empty() {
                    return None;
                }
                self.build_next(state, false).ok()
            })
            .map(|p| p.epoch)
    }

    /// Merges every run plus the delta into one run, publishing a new
    /// epoch. Returns the new epoch, or `None` when there was nothing to
    /// merge or a fault hook abandoned the build.
    pub fn compact(&self) -> Option<u64> {
        self.registry
            .try_publish(|cur| {
                let state = &cur.state;
                if state.delta.is_empty() && state.runs.len() <= 1 {
                    return None;
                }
                self.build_next(state, true).ok()
            })
            .map(|p| p.epoch)
    }

    /// Builds the replacement epoch state **aside** (registry write lock
    /// held by the caller). Every fallible step — including each injected
    /// fault point — happens in here, before anything is published.
    fn build_next(&self, state: &EpochState<D>, merge_all: bool) -> Result<EpochState<D>, Abandon> {
        let mut step = 0u64;
        self.fault_step(&mut step)?; // step 0: build entry
        let mut drained = state.delta.snapshot();
        self.fault_step(&mut step)?; // step 1: delta drained

        let merge = merge_all || state.runs.len() + 1 > self.cfg.max_runs;
        let mut runs: Vec<Arc<FrozenRsTree<D>>> = Vec::new();
        if merge {
            // Concatenate every run's arena into the new item set. Hilbert
            // keys are bbox-relative, so merged runs must be re-sorted and
            // rebuilt — run order cannot be zipper-merged.
            for run in &state.runs {
                let tree = run.tree();
                drained.reserve(tree.len());
                for i in 0..tree.len() {
                    drained.push(tree.item(i));
                }
                self.fault_step(&mut step)?; // one step per merged run
            }
        } else {
            runs.extend(state.runs.iter().map(Arc::clone));
        }
        hilbert_sort(&mut drained);
        self.fault_step(&mut step)?; // step after sort
        if !drained.is_empty() {
            let arena = FrozenRTree::build_presorted(&drained, self.cfg.fanout, self.io_handle());
            runs.push(Arc::new(FrozenRsTree::new(arena)));
        }
        self.fault_step(&mut step)?; // final step: built, about to publish
        Ok(EpochState {
            runs,
            delta: Arc::new(DeltaBuffer::default()),
        })
    }

    /// One compaction fault point: consults the hook at `(Compaction, 0,
    /// *step)`, then advances the step counter. `WorkerPanic` unwinds,
    /// `DropReply` abandons the build; anything else is ignored here.
    fn fault_step(&self, step: &mut u64) -> Result<(), Abandon> {
        let op = *step;
        *step += 1;
        if let Some(hook) = &self.fault {
            match hook.fault(FaultSite::Compaction, 0, op) {
                Some(FaultKind::WorkerPanic) => {
                    panic!("injected compaction fault at merge step {op}")
                }
                Some(FaultKind::DropReply) => return Err(Abandon),
                _ => {}
            }
        }
        Ok(())
    }

    /// Exact `|P ∩ Q|` over the live union (runs by implicit counts, delta
    /// by scan) — the `q` the estimator layer's finite-population
    /// correction needs.
    pub fn exact_count(&self, query: &Rect<D>) -> usize {
        let (_, state) = self.pin();
        let mut n: usize = state.runs.iter().map(|r| r.exact_count(query)).sum();
        let mut matched = Vec::new();
        state.delta.scan_matches(0, query, &mut matched);
        n += matched.len();
        n
    }

    /// Opens a composite sampling stream for `query`, pinned to the
    /// current epoch. The stream keeps tracking delta growth *within* its
    /// epoch (that is the live-ingest property); it does not follow
    /// subsequent freezes — reopen to pick up a new epoch.
    pub fn sampler(&self, query: &Rect<D>, mode: SampleMode) -> CompositeSampler<D> {
        let (epoch, state) = self.pin();
        CompositeSampler::open(epoch, state, *query, mode)
    }
}

/// One frozen run's slice of a composite stream.
#[derive(Debug)]
struct RunStream<const D: usize> {
    sampler: FrozenSampler<D>,
    /// `|run ∩ Q|` at open — the component's (fixed) live size.
    original: u64,
    /// Items already emitted from this run (without replacement).
    drawn: u64,
}

impl<const D: usize> RunStream<D> {
    fn remaining(&self) -> u64 {
        self.original - self.drawn
    }
}

/// A sampling stream over the delta+runs union of one pinned epoch.
///
/// Each draw picks a component (each frozen run, or the delta) with
/// probability proportional to its **live** matched size, then draws
/// uniformly within it, so the overall draw is uniform over the union as
/// it stands *at that moment*:
///
/// * **with replacement** — the component pick uses a cached alias
///   selector over live sizes, rebuilt whenever the delta has grown since
///   it was built;
/// * **without replacement** — the selector stays proportional to
///   *original* (open/refresh-time) sizes and a dynamic thinning step
///   accepts a component with probability `remaining/original`, making
///   the effective weight the remaining count (the same
///   static-selector-plus-thinning bookkeeping as [`FrozenSampler`],
///   lifted one level). Newly inserted matches enlarge the delta
///   component's original on the next rebuild, and land in its unemitted
///   region, so they are immediately drawable and never double-emitted.
///
/// Delta matching is incremental: each draw checks the delta's atomic
/// length and scans only the suffix that arrived since the last check.
#[derive(Debug)]
pub struct CompositeSampler<const D: usize> {
    epoch: u64,
    state: Arc<EpochState<D>>,
    query: Rect<D>,
    mode: SampleMode,
    runs: Vec<RunStream<D>>,
    /// Delta items matching the query, discovery order. Without
    /// replacement, `matched[..emitted]` is the emitted prefix and draws
    /// swap into position `emitted`; appends land in the unemitted tail.
    matched: Vec<Item<D>>,
    emitted: usize,
    /// Delta prefix already scanned for matches.
    scanned: usize,
    /// Component selector: one weight per run plus the delta last.
    selector: Option<WeightedSelector>,
    /// `matched.len()` when `selector` was built; a mismatch after a scan
    /// triggers a rebuild (the "rebuilt on size change" contract).
    selector_basis: usize,
}

impl<const D: usize> CompositeSampler<D> {
    fn open(epoch: u64, state: Arc<EpochState<D>>, query: Rect<D>, mode: SampleMode) -> Self {
        let runs: Vec<RunStream<D>> = state
            .runs
            .iter()
            .map(|run| {
                let original = run.exact_count(&query) as u64;
                RunStream {
                    sampler: run.sampler(&query, mode),
                    original,
                    drawn: 0,
                }
            })
            .collect();
        let mut s = CompositeSampler {
            epoch,
            state,
            query,
            mode,
            runs,
            matched: Vec::new(),
            emitted: 0,
            scanned: 0,
            selector: None,
            selector_basis: usize::MAX,
        };
        s.refresh();
        s
    }

    /// The epoch this stream is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Folds any delta growth into the stream: scans the new suffix for
    /// matches and rebuilds the component selector if the delta
    /// component's size changed.
    fn refresh(&mut self) {
        if self.state.delta.len() > self.scanned {
            self.scanned =
                self.state
                    .delta
                    .scan_matches(self.scanned, &self.query, &mut self.matched);
        }
        if self.selector_basis != self.matched.len() {
            let mut weights: Vec<u64> = self.runs.iter().map(|r| r.original).collect();
            weights.push(self.matched.len() as u64);
            self.selector = WeightedSelector::new(weights, SelectorKind::Alias);
            self.selector_basis = self.matched.len();
        }
    }

    /// Live matched-union size right now (runs fixed + delta matches).
    fn live_total(&self) -> u64 {
        self.runs.iter().map(|r| r.original).sum::<u64>() + self.matched.len() as u64
    }

    /// Unemitted live size (without replacement).
    fn live_remaining(&self) -> u64 {
        self.runs.iter().map(RunStream::remaining).sum::<u64>()
            + (self.matched.len() - self.emitted) as u64
    }

    fn draw_wr(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        let rng = &mut *rng;
        let selector = self.selector.as_ref()?;
        let i = selector.pick(rng);
        match self.runs.get_mut(i) {
            Some(run) => run.sampler.next_sample(rng),
            None => {
                let j = rng.random_range(0..self.matched.len());
                Some(self.matched[j])
            }
        }
    }

    fn draw_wor(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        let rng = &mut *rng;
        loop {
            if self.live_remaining() == 0 {
                return None;
            }
            let selector = self.selector.as_ref()?;
            let i = selector.pick(rng);
            // Dynamic thinning: the selector draws ∝ original size;
            // accepting with probability remaining/original makes the
            // effective component weight its remaining count, i.e. the
            // draw is uniform over the union's unseen items.
            let original = selector.weight(i);
            let rem = match self.runs.get(i) {
                Some(run) => run.remaining(),
                None => (self.matched.len() - self.emitted) as u64,
            };
            if rem == 0 {
                continue;
            }
            if rem < original && rng.random_range(0..original) >= rem {
                continue;
            }
            match self.runs.get_mut(i) {
                Some(run) => match run.sampler.next_sample(rng) {
                    Some(item) => {
                        run.drawn += 1;
                        return Some(item);
                    }
                    None => {
                        // Defensive: our ledger said items remained; trust
                        // the run's own stream and retire the component.
                        run.drawn = run.original;
                        continue;
                    }
                },
                None => {
                    let left = self.matched.len() - self.emitted;
                    let j = self.emitted + rng.random_range(0..left);
                    self.matched.swap(self.emitted, j);
                    let item = self.matched[self.emitted];
                    self.emitted += 1;
                    return Some(item);
                }
            }
        }
    }
}

impl<const D: usize> SpatialSampler<D> for CompositeSampler<D> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        self.refresh();
        match self.mode {
            SampleMode::WithReplacement => {
                if self.live_total() == 0 {
                    return None;
                }
                self.draw_wr(rng)
            }
            SampleMode::WithoutReplacement => self.draw_wor(rng),
        }
        // Delta draws charge no simulated I/O: the delta is the in-memory
        // tier by construction. Run draws charge through each run's own
        // block ledger (one read per fanout draws, shared `IoStats`).
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::RsTree
    }

    /// The **live** union cardinality `q = |P ∩ Q|` — grows as matching
    /// inserts land, which is exactly what the estimator layer's
    /// finite-population correction must see for unbiased mid-ingest CIs.
    fn result_size(&self) -> Option<usize> {
        Some(self.live_total() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use storm_geo::{Point2, Rect2};

    fn grid_items(n: usize) -> Vec<Item<2>> {
        // A √n × √n grid with ids = index, deterministic.
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| {
                let (x, y) = ((i % side) as f64, (i / side) as f64);
                Item::new(Point2::xy(x, y), i as u64)
            })
            .collect()
    }

    fn everything() -> Rect2 {
        Rect2::from_corners(Point2::xy(-1.0, -1.0), Point2::xy(1e9, 1e9))
    }

    #[test]
    fn inserts_accumulate_and_freeze_rolls_runs() {
        let idx = IngestIndex::<2>::new(IngestConfig {
            fanout: 8,
            delta_limit: 100,
            max_runs: 3,
        });
        for item in grid_items(250) {
            idx.insert(item);
        }
        // 250 inserts at limit 100 → two automatic freezes, 50 left over.
        assert_eq!(idx.len(), 250);
        assert_eq!(idx.run_count(), 2);
        assert_eq!(idx.delta_len(), 50);
        assert_eq!(idx.epoch(), 2);
        assert_eq!(idx.exact_count(&everything()), 250);

        let e = idx.minor_freeze().expect("non-empty delta");
        assert_eq!(e, 3);
        assert_eq!(idx.run_count(), 3);
        assert_eq!(idx.delta_len(), 0);
        // Empty delta → freeze is a no-op, epoch unchanged.
        assert_eq!(idx.minor_freeze(), None);
        assert_eq!(idx.epoch(), 3);

        let e = idx.compact().expect("multiple runs");
        assert_eq!(e, 4);
        assert_eq!(idx.run_count(), 1);
        assert_eq!(idx.len(), 250);
        // Single run + empty delta → compact is a no-op.
        assert_eq!(idx.compact(), None);
    }

    #[test]
    fn freeze_beyond_max_runs_merges_in_one_publish() {
        let idx = IngestIndex::<2>::new(IngestConfig {
            fanout: 8,
            delta_limit: 50,
            max_runs: 2,
        });
        for item in grid_items(500) {
            idx.insert(item);
        }
        assert!(idx.run_count() <= 2, "stack depth {}", idx.run_count());
        assert_eq!(idx.len(), 500);
        assert_eq!(idx.exact_count(&everything()), 500);
    }

    #[test]
    fn wor_drains_exactly_the_union() {
        let idx = IngestIndex::<2>::new(IngestConfig {
            fanout: 8,
            delta_limit: 64,
            max_runs: 4,
        });
        let items = grid_items(300);
        for item in &items[..280] {
            idx.insert(*item);
        }
        let mut s = idx.sampler(&everything(), SampleMode::WithoutReplacement);
        let mut rng = StdRng::seed_from_u64(7);
        // Drain half, then insert the rest mid-stream.
        let mut got: Vec<u64> = s.draw(140, &mut rng).iter().map(|i| i.id).collect();
        for item in &items[280..] {
            idx.insert(*item);
        }
        while let Some(item) = s.next_sample(&mut rng) {
            got.push(item.id);
        }
        got.sort_unstable();
        let want: Vec<u64> = (0..300).collect();
        assert_eq!(got, want, "WOR must drain the live union exactly once");
        assert_eq!(s.result_size(), Some(300));
    }

    #[test]
    fn wr_draws_cover_delta_and_runs_proportionally() {
        let idx = IngestIndex::<2>::new(IngestConfig {
            fanout: 8,
            delta_limit: 200,
            max_runs: 4,
        });
        let items = grid_items(400);
        // 200 frozen into a run, 100 left in delta.
        for item in &items[..300] {
            idx.insert(*item);
        }
        assert_eq!((idx.run_count(), idx.delta_len()), (1, 100));
        let mut s = idx.sampler(&everything(), SampleMode::WithReplacement);
        let mut rng = StdRng::seed_from_u64(11);
        let mut delta_hits = 0usize;
        let draws = 30_000;
        for _ in 0..draws {
            let item = s.next_sample(&mut rng).unwrap();
            if item.id >= 200 {
                delta_hits += 1;
            }
        }
        // Delta is 1/3 of the union; allow generous slack (±5 σ ≈ ±0.014).
        let frac = delta_hits as f64 / draws as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.02, "delta fraction {frac}");
    }

    #[test]
    fn sampler_query_filters_all_tiers() {
        let idx = IngestIndex::<2>::new(IngestConfig {
            fanout: 8,
            delta_limit: 128,
            max_runs: 4,
        });
        for item in grid_items(256) {
            idx.insert(item);
        }
        // Quarter-plane query over the 16×16 grid: x,y ∈ [0,7].
        let q = Rect2::from_corners(Point2::xy(-0.5, -0.5), Point2::xy(7.5, 7.5));
        let expect = idx.exact_count(&q);
        assert!(expect > 0 && expect < 256);
        let mut s = idx.sampler(&q, SampleMode::WithoutReplacement);
        let mut rng = StdRng::seed_from_u64(3);
        let drained = s.draw(1000, &mut rng);
        assert_eq!(drained.len(), expect);
        assert!(drained.iter().all(|i| q.contains_point(&i.point)));
    }

    #[test]
    fn pinned_epoch_survives_freeze() {
        let idx = IngestIndex::<2>::new(IngestConfig {
            fanout: 8,
            delta_limit: 1000,
            max_runs: 4,
        });
        for item in grid_items(100) {
            idx.insert(item);
        }
        let mut s = idx.sampler(&everything(), SampleMode::WithoutReplacement);
        // Freeze after the stream opened: the stream's pinned delta stops
        // growing (inserts go to the new epoch) but stays fully drainable.
        idx.minor_freeze().expect("delta had items");
        for item in grid_items(150).into_iter().skip(100) {
            idx.insert(item);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let mut ids: Vec<u64> = s.draw(1000, &mut rng).iter().map(|i| i.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
        // A fresh stream sees the post-freeze world.
        let mut s2 = idx.sampler(&everything(), SampleMode::WithoutReplacement);
        assert_eq!(s2.draw(1000, &mut rng).len(), 150);
    }

    #[test]
    fn mid_stream_inserts_are_uniformly_represented() {
        // Chi-square over the union while half the items arrive mid-draw:
        // tallies of WR draws after all inserts landed must be uniform.
        // The delta limit stays above the insert volume so the stream's
        // pinned epoch is the one the writer lands in (a stream never
        // follows a freeze — that is the epoch-pinning contract).
        for seed in [1u64, 2, 3] {
            let idx = IngestIndex::<2>::new(IngestConfig {
                fanout: 8,
                delta_limit: 10_000,
                max_runs: 3,
            });
            let n = 200usize;
            let items = grid_items(n);
            for item in &items[..n / 2] {
                idx.insert(*item);
            }
            // Roll the first half into a frozen run; the second half will
            // land in the (pinned) delta while the stream is open.
            idx.minor_freeze().expect("non-empty delta");
            let mut s = idx.sampler(&everything(), SampleMode::WithReplacement);
            let mut rng = StdRng::seed_from_u64(seed);
            // Interleave: draw a bit (warms caches), insert the rest.
            let _ = s.draw(500, &mut rng);
            for item in &items[n / 2..] {
                idx.insert(*item);
            }
            let mut tallies = vec![0u64; n];
            for _ in 0..n * 200 {
                let item = s.next_sample(&mut rng).unwrap();
                tallies[item.id as usize] += 1;
            }
            storm_testkit::assert_uniform(&tallies, &format!("mid-ingest WR seed {seed}"));
        }
    }

    #[test]
    fn compaction_panic_leaves_old_epoch_intact() {
        use storm_faultkit::StepFault;
        for step in 0..8 {
            let idx = IngestIndex::<2>::new(IngestConfig {
                fanout: 8,
                delta_limit: 10_000,
                max_runs: 8,
            })
            .with_fault_hook(Arc::new(StepFault::at_compaction_step(
                step,
                FaultKind::WorkerPanic,
            )));
            for item in grid_items(120) {
                idx.insert(item);
            }
            let before = (idx.epoch(), idx.len(), idx.run_count(), idx.delta_len());
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| idx.minor_freeze()));
            match r {
                Ok(Some(_)) => {
                    // Steps past the build's length never fired: published.
                    assert_eq!(idx.run_count(), 1);
                    assert_eq!(idx.delta_len(), 0);
                }
                Ok(None) => panic!("delta was non-empty"),
                Err(_) => {
                    // Crashed mid-build: nothing torn, nothing lost.
                    let after = (idx.epoch(), idx.len(), idx.run_count(), idx.delta_len());
                    assert_eq!(before, after, "torn state after crash at step {step}");
                    // And the index still works.
                    assert_eq!(idx.exact_count(&everything()), 120);
                }
            }
        }
    }
}
