//! The `QueryFirst` baseline.

use rand::{Rng, RngExt};
use storm_geo::Rect;
use storm_rtree::{Item, RTree};

use crate::{SampleMode, SamplerKind, SpatialSampler};

/// Calculate `P ∩ Q` first, then repeatedly extract a sample from the
/// pre-calculated set upon request (paper §3.1).
///
/// Pays the full range-reporting cost `O(r(N) + q)` before the first sample
/// is available — the antithesis of *online* — but each subsequent draw is
/// `O(1)` with no further I/O. This is also the `RangeReport` line of
/// Figure 3(a).
#[derive(Debug)]
pub struct QueryFirst<const D: usize> {
    buffer: Vec<Item<D>>,
    mode: SampleMode,
    /// For without-replacement: entries `< next` have been emitted; the
    /// remainder is shuffled lazily (partial Fisher–Yates).
    next: usize,
}

impl<const D: usize> QueryFirst<D> {
    /// Runs the range query eagerly and prepares the sample buffer.
    pub fn new(tree: &RTree<D>, query: &Rect<D>, mode: SampleMode) -> Self {
        QueryFirst {
            buffer: tree.query(query),
            mode,
            next: 0,
        }
    }

    /// Builds directly from a pre-materialised result set (used by the
    /// executor when a previous operator already reported the range).
    pub fn from_results(results: Vec<Item<D>>, mode: SampleMode) -> Self {
        QueryFirst {
            buffer: results,
            mode,
            next: 0,
        }
    }
}

impl<const D: usize> SpatialSampler<D> for QueryFirst<D> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        let rng = &mut *rng;
        if self.buffer.is_empty() {
            return None;
        }
        match self.mode {
            SampleMode::WithReplacement => {
                let i = rng.random_range(0..self.buffer.len());
                Some(self.buffer[i])
            }
            SampleMode::WithoutReplacement => {
                if self.next >= self.buffer.len() {
                    return None;
                }
                let j = rng.random_range(self.next..self.buffer.len());
                self.buffer.swap(self.next, j);
                let item = self.buffer[self.next];
                self.next += 1;
                Some(item)
            }
        }
    }

    /// Batched draw over the materialised buffer: hoists the mode dispatch
    /// and bounds bookkeeping out of the per-sample loop. Without
    /// replacement this is a straight run of the lazy Fisher–Yates shuffle,
    /// so the output sequence is identical to `k × next_sample`.
    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<D>>, k: usize) -> usize {
        let rng = &mut *rng;
        if self.buffer.is_empty() {
            return 0;
        }
        let before = buf.len();
        match self.mode {
            SampleMode::WithReplacement => {
                buf.reserve(k);
                let n = self.buffer.len();
                for _ in 0..k {
                    buf.push(self.buffer[rng.random_range(0..n)]);
                }
            }
            SampleMode::WithoutReplacement => {
                let take = k.min(self.buffer.len() - self.next);
                buf.reserve(take);
                for _ in 0..take {
                    let j = rng.random_range(self.next..self.buffer.len());
                    self.buffer.swap(self.next, j);
                    buf.push(self.buffer[self.next]);
                    self.next += 1;
                }
            }
        }
        buf.len() - before
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::QueryFirst
    }

    fn result_size(&self) -> Option<usize> {
        Some(self.buffer.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashSet;
    use storm_geo::{Point2, Rect2};
    use storm_rtree::{BulkMethod, RTreeConfig};

    fn tree_grid(n: usize) -> RTree<2> {
        let items: Vec<Item<2>> = (0..n)
            .map(|i| Item::new(Point2::xy((i % 50) as f64, (i / 50) as f64), i as u64))
            .collect();
        RTree::bulk_load(items, RTreeConfig::with_fanout(8), BulkMethod::Str)
    }

    #[test]
    fn without_replacement_is_a_permutation_of_the_result() {
        let tree = tree_grid(500);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(10.0, 5.0));
        let expected: HashSet<u64> = tree.query(&q).iter().map(|i| i.id).collect();
        let mut s = QueryFirst::new(&tree, &q, SampleMode::WithoutReplacement);
        assert_eq!(s.result_size(), Some(expected.len()));
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        while let Some(item) = s.next_sample(&mut rng) {
            assert!(q.contains_point(&item.point));
            assert!(seen.insert(item.id), "duplicate {}", item.id);
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn with_replacement_streams_forever() {
        let tree = tree_grid(100);
        let q = Rect2::everything();
        let mut s = QueryFirst::new(&tree, &q, SampleMode::WithReplacement);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(s.next_sample(&mut rng).is_some());
        }
    }

    #[test]
    fn empty_query_yields_nothing() {
        let tree = tree_grid(100);
        let q = Rect2::from_corners(Point2::xy(999.0, 999.0), Point2::xy(1000.0, 1000.0));
        for mode in [SampleMode::WithReplacement, SampleMode::WithoutReplacement] {
            let mut s = QueryFirst::new(&tree, &q, mode);
            let mut rng = StdRng::seed_from_u64(3);
            assert!(s.next_sample(&mut rng).is_none());
            assert_eq!(s.result_size(), Some(0));
        }
    }

    #[test]
    fn first_sample_is_uniform() {
        // Draw the FIRST sample from many independent samplers and check the
        // empirical distribution: every result element equally likely.
        let tree = tree_grid(100);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(9.0, 1.0));
        let q_size = tree.query(&q).len();
        assert_eq!(q_size, 20);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = std::collections::HashMap::new();
        let trials = 20_000;
        for _ in 0..trials {
            let mut s = QueryFirst::new(&tree, &q, SampleMode::WithoutReplacement);
            let item = s.next_sample(&mut rng).unwrap();
            *counts.entry(item.id).or_insert(0usize) += 1;
        }
        // chi² with 19 dof, p=0.001 critical value 43.82.
        let expected = trials as f64 / q_size as f64;
        let chi: f64 = counts
            .values()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(counts.len() == q_size && chi < 43.82, "chi² = {chi}");
    }
}
