//! The sampler cost model.
//!
//! STORM's query optimizer "implements a set of basic query optimization
//! rules for deciding which method the sampler should use when generating
//! spatial online samples for a given query" (paper §3.2). The rules here
//! score each method in estimated simulated block I/Os — the same unit the
//! paper's §3.1 analysis uses — from three statistics that are cheap to
//! obtain before running the query: `N`, an estimate of `q = |P ∩ Q|`
//! (from aggregate counts), and a hint of how many samples `k` the caller
//! expects to need (from the accuracy target; unbounded if unknown).

use crate::{SampleMode, SamplerKind};

/// Inputs to the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostInputs {
    /// Data set size `N`.
    pub n: usize,
    /// Estimated result size `q` (exact when derived from counts).
    pub q_est: usize,
    /// Expected number of samples the consumer will pull.
    pub k_est: usize,
    /// Block size `B` (tree fanout).
    pub block: usize,
    /// Height of the base R-tree.
    pub height: u32,
}

impl CostInputs {
    fn b(&self) -> f64 {
        self.block.max(2) as f64
    }

    /// Estimated node visits of a full range report: root path + boundary
    /// perimeter + output, the standard 2-D R-tree bound
    /// `O(sqrt(N/B) + q/B)`.
    fn report_cost(&self, q: f64) -> f64 {
        self.height as f64 + (self.n as f64 / self.b()).sqrt() + q / self.b()
    }
}

/// Estimated simulated-I/O cost of serving `k_est` samples with `kind`.
///
/// Infinite for method/query combinations that diverge (SampleFirst with
/// `q = 0`).
pub fn io_cost(kind: SamplerKind, inp: &CostInputs) -> f64 {
    let n = inp.n as f64;
    let q = inp.q_est as f64;
    let k = inp.k_est as f64;
    let b = inp.b();
    let h = inp.height as f64;
    match kind {
        SamplerKind::QueryFirst => inp.report_cost(q),
        SamplerKind::SampleFirst => {
            if inp.q_est == 0 {
                f64::INFINITY
            } else {
                k * n / q
            }
        }
        SamplerKind::RandomPath => k * h.max(1.0),
        SamplerKind::LsTree => {
            // Levels touched: from the top (~log2(N/B) levels) down to the
            // level where the coin-flip sample exceeds k, i.e. 2^-j q ≈ k.
            let levels = (n / b).log2().max(1.0);
            let stop = (q / k.max(1.0)).log2().clamp(0.0, levels);
            let touched = (levels - stop).max(1.0);
            // Each touched level pays a (progressively smaller) report; the
            // geometric series is dominated by a couple of terms.
            // storm-lint: allow(R5): stop is clamped into [0, log2(n/b)] <= 63 above
            touched * (h + (n / b).sqrt() / (1u64 << stop as u32) as f64) + k / b
        }
        SamplerKind::RsTree => {
            // Canonical set + one buffer read per sample block + descent
            // refills amortised over the buffer size.
            let canonical = h + (n / b).sqrt();
            canonical + k / b + (k / b) * h
        }
    }
}

/// Picks the cheapest applicable method for the query.
///
/// Rules beyond raw cost, mirroring STORM's optimizer:
/// * the LS-tree only produces without-replacement streams;
/// * when the consumer will read (nearly) the whole result anyway
///   (`k_est >= q_est`), QueryFirst is never worse — the exact answer costs
///   the same as the samples;
/// * SampleFirst is excluded for empty-estimate queries (divergence).
pub fn recommend(inp: &CostInputs, mode: SampleMode) -> SamplerKind {
    if inp.k_est >= inp.q_est {
        return SamplerKind::QueryFirst;
    }
    let mut candidates = vec![
        SamplerKind::QueryFirst,
        SamplerKind::SampleFirst,
        SamplerKind::RandomPath,
        SamplerKind::RsTree,
    ];
    if mode == SampleMode::WithoutReplacement {
        candidates.push(SamplerKind::LsTree);
    }
    candidates
        .into_iter()
        .map(|kind| (kind, io_cost(kind, inp)))
        .filter(|(_, c)| c.is_finite())
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map_or(SamplerKind::QueryFirst, |(kind, _)| kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize, q: usize, k: usize) -> CostInputs {
        CostInputs {
            n,
            q_est: q,
            k_est: k,
            block: 64,
            height: (n as f64).log(64.0).ceil().max(1.0) as u32,
        }
    }

    #[test]
    fn selective_small_k_prefers_an_index_sampler() {
        // 10M points, q = 1M, k = 100: RS or LS should win by a mile.
        let inp = inputs(10_000_000, 1_000_000, 100);
        let pick = recommend(&inp, SampleMode::WithoutReplacement);
        assert!(
            matches!(pick, SamplerKind::RsTree | SamplerKind::LsTree),
            "picked {pick}"
        );
        assert!(io_cost(pick, &inp) * 10.0 < io_cost(SamplerKind::QueryFirst, &inp));
    }

    #[test]
    fn reading_everything_prefers_query_first() {
        let inp = inputs(1_000_000, 5_000, 5_000);
        assert_eq!(
            recommend(&inp, SampleMode::WithoutReplacement),
            SamplerKind::QueryFirst
        );
        // k > q as well.
        let inp = inputs(1_000_000, 5_000, 50_000);
        assert_eq!(
            recommend(&inp, SampleMode::WithReplacement),
            SamplerKind::QueryFirst
        );
    }

    #[test]
    fn whole_space_queries_make_sample_first_viable() {
        // q ≈ N and few samples: N/q ≈ 1 probe per sample beats walking the
        // tree (h I/Os per sample).
        let inp = inputs(10_000_000, 9_900_000, 50);
        let cost_sf = io_cost(SamplerKind::SampleFirst, &inp);
        assert!(cost_sf < io_cost(SamplerKind::RandomPath, &inp));
        assert!(cost_sf < io_cost(SamplerKind::QueryFirst, &inp));
        let pick = recommend(&inp, SampleMode::WithReplacement);
        assert_eq!(pick, SamplerKind::SampleFirst);
    }

    #[test]
    fn empty_estimate_never_picks_sample_first() {
        let inp = inputs(1_000_000, 0, 100);
        let pick = recommend(&inp, SampleMode::WithReplacement);
        assert_ne!(pick, SamplerKind::SampleFirst);
    }

    #[test]
    fn with_replacement_never_recommends_ls() {
        for (q, k) in [(1_000_000, 10), (100_000, 1000), (10_000, 10)] {
            let inp = inputs(10_000_000, q, k);
            assert_ne!(
                recommend(&inp, SampleMode::WithReplacement),
                SamplerKind::LsTree
            );
        }
    }

    #[test]
    fn costs_grow_with_k_for_per_sample_methods() {
        let a = inputs(1_000_000, 100_000, 10);
        let b = inputs(1_000_000, 100_000, 10_000);
        for kind in [
            SamplerKind::SampleFirst,
            SamplerKind::RandomPath,
            SamplerKind::RsTree,
        ] {
            assert!(io_cost(kind, &b) > io_cost(kind, &a), "{kind}");
        }
        // QueryFirst is flat in k.
        assert_eq!(
            io_cost(SamplerKind::QueryFirst, &a),
            io_cost(SamplerKind::QueryFirst, &b)
        );
    }
}
