//! STORM's primary contribution: **spatial online sampling**.
//!
//! Paper Definition 1: *given a set of `N` points `P` in a d-dimensional
//! space, store them in an index such that, for a given range query `Q`,
//! return sampled points from `Q ∩ P` (with or without replacement) until
//! the user terminates the query.* Crucially, the sample size `k` is never
//! given up front — the evaluator keeps pulling samples until an accuracy or
//! time requirement is met, so every method here exposes a pull-based
//! [`SpatialSampler::next_sample`].
//!
//! Five methods are implemented, exactly the ones the paper discusses in
//! §3.1:
//!
//! | method | type | cost (paper) |
//! |---|---|---|
//! | [`QueryFirst`] | baseline | `O(r(N) + q)` up-front |
//! | [`SampleFirst`] | baseline | `O(k·N/q)` expected; diverges at `q = 0` |
//! | [`RandomPath`] | Olken's walk | `O(k log N)` time, `Ω(k)` I/Os |
//! | [`LsTree`] / [`LsSampler`] | level sampling | `O(k/B)` I/Os + level overhead |
//! | [`RsTree`] / [`RsSampler`] | sample-buffered Hilbert R-tree | `O(k/B)` I/Os amortised |
//!
//! The [`cost`] module contains the cost model the STORM query optimizer
//! uses to pick among them per query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod distributed;
mod frozen;
pub mod ingest;
mod ls_tree;
pub mod parallel;
mod query_first;
mod random_path;
mod rs_tree;
mod sample_first;
pub mod validate;
mod weighted;

pub use distributed::{DistributedRsTree, DistributedSampler};
pub use frozen::{
    frozen_query_first, FrozenLsForest, FrozenLsSampler, FrozenRsTree, FrozenSampleFirst,
    FrozenSampler,
};
pub use ingest::{CompositeSampler, DeltaBuffer, EpochState, IngestConfig, IngestIndex};
pub use ls_tree::{LsSampler, LsTree};
pub use parallel::{
    CloseError, FillReq, JoinOutcome, OpenReq, ParallelRsCluster, ParallelSampler, SessionBatch,
    SessionOpen, ShardReply, StreamCore,
};
pub use query_first::QueryFirst;
pub use random_path::RandomPath;
pub use rs_tree::{RsSampler, RsTree, RsTreeConfig};
pub use sample_first::SampleFirst;
pub use weighted::{SelectorKind, WeightedSelector};

use rand::Rng;
use storm_rtree::Item;

/// Whether repeated samples may return the same point twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleMode {
    /// Every draw is independent; duplicates possible.
    WithReplacement,
    /// Each point of `P ∩ Q` is returned at most once; the stream ends when
    /// the query result is exhausted. This is the default STORM mode (the
    /// LS-tree's permutation stream is inherently without replacement).
    #[default]
    WithoutReplacement,
}

/// Identifies a sampling method (used by the optimizer and in reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerKind {
    /// Materialise `P ∩ Q`, then sample from the buffer.
    QueryFirst,
    /// Rejection-sample uniformly from all of `P`.
    SampleFirst,
    /// Olken's count-weighted random root-to-leaf walk.
    RandomPath,
    /// Level-sampling forest of R-trees.
    LsTree,
    /// Sample-buffered Hilbert R-tree.
    RsTree,
}

impl std::fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SamplerKind::QueryFirst => "QueryFirst",
            SamplerKind::SampleFirst => "SampleFirst",
            SamplerKind::RandomPath => "RandomPath",
            SamplerKind::LsTree => "LS-tree",
            SamplerKind::RsTree => "RS-tree",
        };
        f.write_str(s)
    }
}

/// A spatial online sampler bound to one range query.
///
/// Implementations return one sample per call, indefinitely (with
/// replacement) or until exhaustion (without replacement). `None` means the
/// stream has ended: the result set is exhausted, the query is empty, or a
/// per-call effort budget was hit (SampleFirst on tiny queries).
pub trait SpatialSampler<const D: usize> {
    /// Draws the next online sample.
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>>;

    /// Draws up to `k` samples into `buf`, returning how many were
    /// appended. Fewer than `k` (including 0) means the stream ended.
    ///
    /// This is the batched sampling kernel: implementations amortise
    /// per-draw work — tree descents, buffer-block reads, selector walks —
    /// across the whole block, which is what makes sample generation keep
    /// up with the estimator loop. The emitted *sequence* must follow the
    /// same distribution as `k` successive [`Self::next_sample`] calls, so
    /// callers may mix the two freely. The default implementation is the
    /// unamortised `k × next_sample` loop, keeping external samplers
    /// source-compatible.
    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<D>>, k: usize) -> usize {
        let before = buf.len();
        for _ in 0..k {
            match self.next_sample(rng) {
                Some(item) => buf.push(item),
                None => break,
            }
        }
        buf.len() - before
    }

    /// Which method this is.
    fn kind(&self) -> SamplerKind;

    /// Exact `q = |P ∩ Q|` when the method learns it as a side effect
    /// (QueryFirst materialises it; RS computes it from the canonical set).
    fn result_size(&self) -> Option<usize> {
        None
    }

    /// Degraded-execution report: which shards (if any) this stream wrote
    /// off and how much declared result mass went with them. `None` means
    /// the sampler cannot degrade (single-node samplers); `Some` with an
    /// empty failure list means a distributed stream that is still whole.
    /// See [`storm_faultkit::DegradedInfo`] for the missing-mass bound the
    /// estimator layer applies.
    fn degraded(&self) -> Option<storm_faultkit::DegradedInfo> {
        None
    }

    /// Convenience: draws up to `k` samples into a vector (one batch).
    fn draw(&mut self, k: usize, rng: &mut dyn Rng) -> Vec<Item<D>> {
        let mut out = Vec::with_capacity(k);
        self.next_batch(rng, &mut out, k);
        out
    }
}

/// 64-bit mix (SplitMix64 finaliser) used wherever the samplers need a
/// deterministic hash of a record id (LS-tree level assignment).
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
