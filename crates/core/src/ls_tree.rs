//! The LS-tree: spatial online sampling by **level sampling**.

use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::Rng;
use storm_geo::Rect;
use storm_rtree::{BulkMethod, IoStats, Item, RTree, RTreeConfig};

use crate::{mix64, SamplerKind, SpatialSampler};

/// The LS-tree of paper §3.1: independently sample elements from `P_i` with
/// probability ½ to create `P_{i+1}`, stop when the last `P_ℓ` is small
/// enough (`ℓ = O(log N)` in expectation), and build an R-tree `T_i` for
/// each `P_i` (`P_0 = P`). The sizes form a geometric series, so the total
/// index size is still `O(N)`.
///
/// A query runs ordinary range reports on `T_ℓ, T_{ℓ−1}, …`: each tree's
/// result is a probability-`(1/2^i)` coin-flip sample of `P ∩ Q`, which is
/// randomly permuted and streamed; when a level is exhausted the sampler
/// moves down one tree. Because `P_j ⊆ P_i` for `j > i`, points seen at
/// higher levels are skipped (membership is decided by a deterministic hash
/// of the record id, so no bookkeeping set is needed).
///
/// Level membership by hash also makes ad-hoc updates cheap: an insert or
/// delete touches exactly the trees `T_0 ..= T_{ℓ(e)}`.
#[derive(Debug)]
pub struct LsTree<const D: usize> {
    /// `levels[i]` indexes `P_i`.
    pub(crate) levels: Vec<RTree<D>>,
    cfg: RTreeConfig,
    io: Arc<IoStats>,
    pub(crate) salt: u64,
    /// Mutation counter driving the sampled debug audit cadence.
    audit_ops: u64,
}

/// Hard cap on the number of levels (a 2^48-point data set is beyond us).
const MAX_LEVELS: usize = 48;

/// Converts a level index into the `u32` domain of [`level_of`]. Level
/// indices never exceed [`MAX_LEVELS`], so the conversion saturates rather
/// than truncates on (impossible) overflow.
pub(crate) fn level_u32(level: usize) -> u32 {
    u32::try_from(level).unwrap_or(u32::MAX)
}

impl<const D: usize> LsTree<D> {
    /// Bulk loads the level forest from `items`.
    ///
    /// `salt` seeds the hash that assigns levels; two LS-trees built with
    /// the same salt sample identically (useful for reproducible tests).
    pub fn bulk_load(items: Vec<Item<D>>, cfg: RTreeConfig, salt: u64) -> Self {
        let io = IoStats::shared();
        let n = items.len();
        let num_levels = Self::desired_levels(n, &cfg);
        let mut levels = Vec::with_capacity(num_levels);
        for i in 1..num_levels {
            let subset: Vec<Item<D>> = items
                .iter()
                .filter(|it| level_of(it.id, salt) >= level_u32(i))
                .copied()
                // storm-analyzer: allow(A4): bulk-load construction — one level subset per build, never per draw
                .collect();
            levels.push(RTree::bulk_load_with_io(
                subset,
                cfg,
                BulkMethod::Str,
                Arc::clone(&io),
            ));
        }
        // Level 0 holds all of `items`; building it last lets the vector
        // move in without a clone.
        levels.insert(
            0,
            RTree::bulk_load_with_io(items, cfg, BulkMethod::Str, Arc::clone(&io)),
        );
        LsTree {
            levels,
            cfg,
            io,
            salt,
            audit_ops: 0,
        }
    }

    /// Debug-build audit: re-validates the whole forest after a mutation
    /// (every mutation while small, sampled once the forest grows — see
    /// [`crate::validate`]). Release builds compile this to nothing.
    #[inline]
    fn debug_audit(&mut self) {
        #[cfg(debug_assertions)]
        {
            self.audit_ops = self.audit_ops.wrapping_add(1);
            if self.len() <= crate::validate::AUDIT_EVERY_OP_LIMIT
                || self
                    .audit_ops
                    .is_multiple_of(crate::validate::AUDIT_SAMPLE_PERIOD)
            {
                debug_assert_eq!(
                    crate::validate::check_ls_tree(self),
                    Ok(()),
                    "LS-tree invariant audit failed after mutation {}",
                    self.audit_ops
                );
            }
        }
    }

    /// `1 + log2(N/B)` levels, so the top tree holds about one block.
    fn desired_levels(n: usize, cfg: &RTreeConfig) -> usize {
        let mut levels = 1usize;
        let mut size = n;
        while size > cfg.max_entries && levels < MAX_LEVELS {
            size /= 2;
            levels += 1;
        }
        levels
    }

    /// Number of data points (in `P_0`).
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True when the base set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of level trees currently maintained.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total entries across all level trees (`O(N)` by the geometric-series
    /// argument; in expectation `< 2N`).
    pub fn total_entries(&self) -> usize {
        self.levels.iter().map(RTree::len).sum()
    }

    /// The forest-wide simulated-I/O counter.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// A shared handle to the I/O counter.
    pub fn io_handle(&self) -> Arc<IoStats> {
        Arc::clone(&self.io)
    }

    /// The level tree at `i` (level 0 indexes everything).
    pub fn level(&self, i: usize) -> &RTree<D> {
        &self.levels[i]
    }

    /// Exact `|P ∩ Q|`, from the base tree's aggregate counts.
    pub fn exact_count(&self, query: &Rect<D>) -> usize {
        self.levels[0].count_in(query)
    }

    /// Inserts an item into every tree whose level it belongs to, growing
    /// the forest when the data has doubled enough to warrant a new top.
    pub fn insert(&mut self, item: Item<D>) {
        let lvl = level_of(item.id, self.salt);
        for i in 0..self.levels.len().min(lvl as usize + 1) {
            self.levels[i].insert(item);
        }
        self.maybe_resize();
        self.debug_audit();
    }

    /// Removes an item from every tree containing it. Returns `false` when
    /// the item was absent from the base tree.
    pub fn remove(&mut self, point: &storm_geo::Point<D>, id: u64) -> bool {
        let lvl = level_of(id, self.salt);
        let mut found = false;
        for i in 0..self.levels.len().min(lvl as usize + 1) {
            let removed = self.levels[i].remove(point, id);
            if i == 0 {
                found = removed;
                if !found {
                    return false;
                }
            }
        }
        self.maybe_resize();
        self.debug_audit();
        found
    }

    /// Grows or shrinks the forest to track `desired_levels(len)`.
    fn maybe_resize(&mut self) {
        let desired = Self::desired_levels(self.len(), &self.cfg);
        while self.levels.len() < desired {
            let next = self.levels.len();
            let Some(top) = self.levels.last() else {
                break;
            };
            let subset: Vec<Item<D>> = top
                .items()
                .into_iter()
                .filter(|it| level_of(it.id, self.salt) >= level_u32(next))
                // storm-analyzer: allow(A4): insert-time structural resize, amortized O(1) per insert — not the draw path
                .collect();
            self.levels.push(RTree::bulk_load_with_io(
                subset,
                self.cfg,
                BulkMethod::Str,
                Arc::clone(&self.io),
            ));
        }
        // Hysteresis: only drop a top tree once it is two levels too many,
        // so alternating insert/delete at a boundary does not thrash.
        while self.levels.len() > desired + 1 && self.levels.len() > 1 {
            self.levels.pop();
        }
    }

    /// Opens a sampling stream for `query` (without replacement — the level
    /// permutation stream is inherently WOR, per the paper).
    pub fn sampler(&self, query: Rect<D>) -> LsSampler<'_, D> {
        LsSampler {
            ls: self,
            query,
            next_level: self.levels.len() as isize - 1,
            started: false,
            buffer: Vec::new(),
            pos: 0,
        }
    }
}

/// Level assignment: the number of levels an element survives, i.e. a
/// geometric(½) variable derived deterministically from the record id.
pub(crate) fn level_of(id: u64, salt: u64) -> u32 {
    mix64(id ^ salt).trailing_zeros()
}

/// The LS-tree's online sample stream for one query.
#[derive(Debug)]
pub struct LsSampler<'a, const D: usize> {
    ls: &'a LsTree<D>,
    query: Rect<D>,
    /// The level to scan when the current buffer runs dry.
    next_level: isize,
    started: bool,
    buffer: Vec<Item<D>>,
    pos: usize,
}

impl<const D: usize> LsSampler<'_, D> {
    /// Range-reports the next level down and permutes the fresh points.
    /// The spent buffer's allocation is reused for the new level's report.
    fn descend(&mut self, rng: &mut dyn Rng) -> bool {
        let rng = &mut *rng;
        let ls = self.ls;
        let salt = ls.salt;
        loop {
            if self.next_level < 0 {
                return false;
            }
            let level = self.next_level as usize;
            self.next_level -= 1;
            let top = level + 1 == ls.levels.len();
            self.buffer.clear();
            self.pos = 0;
            let buffer = &mut self.buffer;
            let query = &self.query;
            ls.levels[level].for_each_in(query, |item| {
                // Points that also live in a higher tree were already
                // reported there; membership is recomputable from the id.
                if top || level_of(item.id, salt) == level_u32(level) {
                    buffer.push(*item);
                }
            });
            if self.buffer.is_empty() {
                continue;
            }
            self.buffer.shuffle(rng);
            return true;
        }
    }
}

impl<const D: usize> SpatialSampler<D> for LsSampler<'_, D> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        if !self.started {
            self.started = true;
            if !self.descend(rng) {
                return None;
            }
        }
        loop {
            if self.pos < self.buffer.len() {
                let item = self.buffer[self.pos];
                self.pos += 1;
                return Some(item);
            }
            if !self.descend(rng) {
                return None;
            }
        }
    }

    /// Batched draw: copies whole runs of the current level's permutation
    /// with `extend_from_slice` instead of one bounds-checked element per
    /// call, descending between runs. Identical output sequence to
    /// `k × next_sample` (the permutation is fixed once shuffled).
    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<D>>, k: usize) -> usize {
        let before = buf.len();
        if !self.started {
            self.started = true;
            if !self.descend(rng) {
                return 0;
            }
        }
        while buf.len() - before < k {
            let want = k - (buf.len() - before);
            let avail = self.buffer.len() - self.pos;
            if avail == 0 {
                if !self.descend(rng) {
                    break;
                }
                continue;
            }
            let take = want.min(avail);
            buf.extend_from_slice(&self.buffer[self.pos..self.pos + take]);
            self.pos += take;
        }
        buf.len() - before
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::LsTree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashSet;
    use storm_geo::{Point2, Rect2};

    fn grid_items(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect()
    }

    fn ls(n: usize) -> LsTree<2> {
        LsTree::bulk_load(grid_items(n), RTreeConfig::with_fanout(16), 0xC0FFEE)
    }

    #[test]
    fn forest_size_is_linear() {
        let t = ls(20_000);
        assert!(t.num_levels() > 5);
        let total = t.total_entries();
        assert!(
            total < 20_000 * 5 / 2,
            "forest should be < 2.5N, got {total}"
        );
    }

    #[test]
    fn stream_is_a_permutation_of_the_query_result() {
        let t = ls(5000);
        let q = Rect2::from_corners(Point2::xy(10.0, 5.0), Point2::xy(60.0, 30.0));
        let expected: HashSet<u64> = t.level(0).query(&q).iter().map(|it| it.id).collect();
        let mut s = t.sampler(q);
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = HashSet::new();
        while let Some(item) = s.next_sample(&mut rng) {
            assert!(q.contains_point(&item.point));
            assert!(got.insert(item.id), "duplicate {}", item.id);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_query_returns_none_immediately() {
        let t = ls(1000);
        let q = Rect2::from_corners(Point2::xy(1e5, 1e5), Point2::xy(1e5 + 1.0, 1e5 + 1.0));
        let mut s = t.sampler(q);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(s.next_sample(&mut rng).is_none());
        assert!(s.next_sample(&mut rng).is_none());
    }

    #[test]
    fn small_k_costs_far_less_io_than_full_report() {
        let t = ls(50_000);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 400.0));
        // Full report cost on the base tree:
        t.io().reset();
        let q_size = t.level(0).query(&q).len();
        let full_io = t.io().reads();
        assert!(q_size > 10_000);
        // 50 online samples:
        t.io().reset();
        let mut s = t.sampler(q);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            s.next_sample(&mut rng).unwrap();
        }
        let sample_io = t.io().reads();
        assert!(
            sample_io * 4 < full_io,
            "sampling ({sample_io}) should be ≪ full report ({full_io})"
        );
    }

    #[test]
    fn first_samples_come_from_sparse_levels() {
        // The very first sample must not require touching T_0: the top
        // trees are tiny. Indirectly verified through I/O counts.
        let t = ls(50_000);
        let q = Rect2::everything();
        t.io().reset();
        let mut s = t.sampler(q);
        let mut rng = StdRng::seed_from_u64(4);
        s.next_sample(&mut rng).unwrap();
        let io = t.io().reads();
        assert!(io < 50, "first sample cost {io} reads");
    }

    #[test]
    fn updates_are_reflected_in_the_stream() {
        let mut t = ls(2000);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(20.0, 20.0));
        // Remove everything currently in Q.
        let current = t.level(0).query(&q);
        for it in &current {
            assert!(t.remove(&it.point, it.id));
        }
        // Insert 5 fresh points inside Q.
        for j in 0..5u64 {
            t.insert(Item::new(Point2::xy(1.0 + j as f64, 1.0), 1_000_000 + j));
        }
        let mut s = t.sampler(q);
        let mut rng = StdRng::seed_from_u64(5);
        let mut got = HashSet::new();
        while let Some(item) = s.next_sample(&mut rng) {
            got.insert(item.id);
        }
        let expected: HashSet<u64> = (0..5).map(|j| 1_000_000 + j).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn forest_grows_and_shrinks_with_data() {
        let mut t = LsTree::bulk_load(grid_items(64), RTreeConfig::with_fanout(8), 7);
        let initial = t.num_levels();
        for i in 0..4096u64 {
            t.insert(Item::new(
                Point2::xy((i % 64) as f64, (i / 64) as f64),
                100_000 + i,
            ));
        }
        assert!(t.num_levels() > initial, "forest should grow");
        // Level containment: every tree's size is about half its parent's.
        for i in 1..t.num_levels() {
            assert!(t.level(i).len() <= t.level(i - 1).len());
        }
        assert_eq!(t.len(), 64 + 4096);
    }

    #[test]
    fn first_sample_distribution_is_close_to_uniform() {
        // LS returns a coin-flip sample permutation; the FIRST emitted
        // element is uniform over P∩Q by symmetry within the highest
        // non-empty level, and across many rebuilt salts over everything.
        let items = grid_items(64);
        let q = Rect2::everything();
        let mut counts = vec![0usize; 64];
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 8000;
        for salt in 0..trials {
            let t = LsTree::bulk_load(items.clone(), RTreeConfig::with_fanout(8), salt);
            let mut s = t.sampler(q);
            let item = s.next_sample(&mut rng).unwrap();
            counts[item.id as usize] += 1;
        }
        // chi² with 63 dof, p=0.001 critical value ≈ 103.4.
        let expected = trials as f64 / 64.0;
        let chi: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi < 103.4, "chi² = {chi}");
    }
}
